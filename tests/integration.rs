//! Cross-crate integration tests: the full stack (engine → caches →
//! network → protocol → driver → applications) exercised through the
//! public `ssm` API.

use ssm::apps::catalog::{suite, Scale};
use ssm::core::{sequential_baseline, CommPreset, LayerConfig, ProtoPreset, Protocol, SimBuilder};
use ssm::proto::HomePolicy;
use ssm::stats::Bucket;

/// Every application in the catalog runs and self-verifies under every
/// protocol at the base configuration.
#[test]
fn whole_suite_verifies_under_all_protocols() {
    for spec in suite() {
        for proto in [
            Protocol::Ideal,
            Protocol::Hlrc,
            Protocol::Aurc,
            Protocol::Sc,
            Protocol::Rdma,
        ] {
            let w = spec.build(Scale::Test);
            let r = SimBuilder::new(proto)
                .procs(4)
                .sc_block(spec.sc_block)
                .run(w.as_ref());
            assert!(
                r.verify_error.is_none(),
                "{} under {proto:?}: {:?}",
                spec.name,
                r.verify_error
            );
            assert!(r.total_cycles > 0);
        }
    }
}

/// Simulated time is bit-for-bit reproducible: the baton makes thread
/// interleaving deterministic, so two identical runs agree exactly.
#[test]
fn runs_are_deterministic() {
    for proto in [Protocol::Hlrc, Protocol::Sc] {
        let one = {
            let spec = ssm::apps::catalog::by_name("Barnes-original").expect("barnes");
            let w = spec.build(Scale::Test);
            SimBuilder::new(proto).procs(4).run(w.as_ref())
        };
        let two = {
            let spec = ssm::apps::catalog::by_name("Barnes-original").expect("barnes");
            let w = spec.build(Scale::Test);
            SimBuilder::new(proto).procs(4).run(w.as_ref())
        };
        assert_eq!(
            one.total_cycles, two.total_cycles,
            "{proto:?} not deterministic"
        );
        assert_eq!(one.counters, two.counters);
        assert_eq!(one.per_proc, two.per_proc);
    }
}

/// The IDEAL machine bounds both real protocols from below (in time).
#[test]
fn ideal_is_fastest() {
    for spec in suite().into_iter().take(4) {
        let w = spec.build(Scale::Test);
        let ideal = SimBuilder::new(Protocol::Ideal).procs(4).run(w.as_ref());
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            let w = spec.build(Scale::Test);
            let r = SimBuilder::new(proto)
                .procs(4)
                .sc_block(spec.sc_block)
                .run(w.as_ref());
            assert!(
                ideal.total_cycles <= r.total_cycles,
                "{}: IDEAL {} slower than {proto:?} {}",
                spec.name,
                ideal.total_cycles,
                r.total_cycles
            );
        }
    }
}

/// Idealizing both system layers never hurts (monotonicity of the cost
/// model along the main diagonal of the configuration grid).
#[test]
fn better_layers_never_slow_hlrc_down() {
    let spec = ssm::apps::catalog::by_name("Water-Nsquared").expect("water");
    let run = |cfg: LayerConfig| {
        let w = spec.build(Scale::Test);
        SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .layers(cfg)
            .run(w.as_ref())
            .total_cycles
    };
    let wo = run(LayerConfig::of(CommPreset::Worse, ProtoPreset::Original));
    let ao = run(LayerConfig::base());
    let bb = run(LayerConfig::of(CommPreset::Best, ProtoPreset::Best));
    assert!(bb <= ao, "BB {bb} should not exceed AO {ao}");
    assert!(ao <= wo, "AO {ao} should not exceed WO {wo}");
}

/// Sequential baselines are protocol-free: no messages, no protocol time.
#[test]
fn baseline_is_communication_free() {
    let spec = ssm::apps::catalog::by_name("LU-Contiguous").expect("LU");
    let w = spec.build(Scale::Test);
    let r = sequential_baseline(w.as_ref());
    assert_eq!(r.counters.messages, 0);
    assert_eq!(r.counters.fetches, 0);
    assert_eq!(r.per_proc[0].get(Bucket::Protocol), 0);
    assert_eq!(r.per_proc[0].get(Bucket::DataWait), 0);
}

/// The restructured variants keep their headline properties at small
/// scale: Barnes-Spatial eliminates tree-build locking; Radix-Local cuts
/// messages.
#[test]
fn restructuring_effects_hold_end_to_end() {
    let orig = ssm::apps::catalog::by_name("Barnes-original").expect("app");
    let rest = ssm::apps::catalog::by_name("Barnes-Spatial").expect("app");
    let wo = orig.build(Scale::Test);
    let wr = rest.build(Scale::Test);
    let ro = SimBuilder::new(Protocol::Hlrc).procs(4).run(wo.as_ref());
    let rr = SimBuilder::new(Protocol::Hlrc).procs(4).run(wr.as_ref());
    assert!(ro.counters.lock_acquires > 0);
    assert_eq!(
        rr.counters.lock_acquires, 0,
        "spatial build must be lock-free"
    );
}

/// Worse communication hurts more under SC (which pays per block) than a
/// purely compute-bound run would notice.
#[test]
fn comm_sensitivity_is_visible() {
    let spec = ssm::apps::catalog::by_name("Ocean-Contiguous").expect("ocean");
    let run = |comm: CommPreset| {
        let w = spec.build(Scale::Test);
        SimBuilder::new(Protocol::Sc)
            .procs(4)
            .sc_block(spec.sc_block)
            .comm(comm.params())
            .run(w.as_ref())
            .total_cycles
    };
    let best = run(CommPreset::Best);
    let worse = run(CommPreset::Worse);
    assert!(
        worse > best * 2,
        "2x-worse comm should at least double SC Ocean time: {best} -> {worse}"
    );
}

/// Processor scaling: more processors never increase total simulated time
/// for an embarrassingly-regular app on the ideal machine.
#[test]
fn ideal_scales_with_processors() {
    let mut last = u64::MAX;
    for procs in [1usize, 2, 4, 8] {
        let w = ssm::apps::fft::Fft::new(1024);
        let r = SimBuilder::new(Protocol::Ideal).procs(procs).run(&w);
        assert!(r.verify_error.is_none());
        assert!(
            r.total_cycles < last,
            "{procs} procs should beat fewer: {} !< {last}",
            r.total_cycles
        );
        last = r.total_cycles;
    }
}

/// First-touch placement puts each processor's partition at its own node,
/// eliminating most remote write traffic for block-partitioned apps.
#[test]
fn first_touch_reduces_ocean_traffic() {
    // Needs a grid whose per-processor blocks span whole pages (the test-
    // scale grid fits in one page, where placement cannot matter).
    let run = |policy: HomePolicy| {
        let w = ssm::apps::ocean::Ocean::contiguous(64, 2);
        SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .home_policy(policy)
            .run(&w)
            .expect_verified()
    };
    let rr = run(HomePolicy::RoundRobin);
    let ft = run(HomePolicy::FirstTouch);
    assert!(
        ft.counters.twins < rr.counters.twins,
        "first-touch should twin fewer pages: {} vs {}",
        ft.counters.twins,
        rr.counters.twins
    );
    assert!(
        ft.total_cycles < rr.total_cycles,
        "first-touch ({}) should beat round-robin ({}) for Ocean",
        ft.total_cycles,
        rr.total_cycles
    );
}

/// AURC removes all diff traffic while still verifying, and runs the whole
/// suite deterministically.
#[test]
fn aurc_eliminates_diffs_across_the_suite() {
    for spec in suite().into_iter().take(6) {
        let w = spec.build(Scale::Test);
        let r = SimBuilder::new(Protocol::Aurc).procs(4).run(w.as_ref());
        assert!(
            r.verify_error.is_none(),
            "{}: {:?}",
            spec.name,
            r.verify_error
        );
        assert_eq!(r.counters.diffs, 0, "{}: AURC must not diff", spec.name);
        assert_eq!(r.counters.twins, 0, "{}: AURC must not twin", spec.name);
    }
}

/// Model-composition validation (the `validation` binary's checks, kept
/// honest in the test suite): zero-load latencies and a full HLRC fetch
/// decompose exactly into their documented parts.
#[test]
fn model_composes_exactly() {
    use ssm::net::{CommParams, Network};
    let p = CommParams::achievable();
    let mut net = Network::new(2, p.clone());
    assert_eq!(
        net.deliver(0, 0, 1, 64),
        64 * 2 + p.ni_occupancy + p.link_latency + 64 * 2
    );
    let wire = |bytes: u64| {
        let mut n = Network::new(2, p.clone());
        n.deliver(0, 0, 1, bytes)
    };
    let costs = ssm::proto::ProtoCosts::original();
    let m = ssm::proto::Machine::new(
        2,
        p.clone(),
        costs.clone(),
        ssm::mem::MemConfig::pentium_pro_like(),
    );
    let mut m = m;
    let mut hlrc = ssm::hlrc::Hlrc::new();
    use ssm::proto::Protocol as _;
    hlrc.init(
        &m,
        &ssm::proto::WorldShape {
            heap_bytes: 1 << 16,
            nlocks: 1,
            nbarriers: 1,
        },
    );
    let analytic = costs.handler_base
        + p.host_overhead
        + wire(64)
        + p.msg_handling
        + costs.handler_base
        + p.host_overhead
        + wire(4096 + 16)
        + costs.mprotect(1)
        + (8 + 60 + 16);
    assert_eq!(hlrc.read(&mut m, 1, 0, 8), analytic);
}

/// Regular applications compute bit-identical results regardless of the
/// processor count (their parallelizations are exact, not approximate).
#[test]
fn results_independent_of_processor_count() {
    // FFT: the spectrum spike magnitudes must match between runs.
    let probe_fft = |procs: usize| -> Vec<u64> {
        let w = ssm::apps::fft::Fft::new(256);
        let r = SimBuilder::new(Protocol::Hlrc).procs(procs).run(&w);
        assert!(r.verify_error.is_none());
        // verify() already checks the spectrum; return counters as a
        // determinism fingerprint of the run itself.
        vec![r.counters.barriers]
    };
    assert_eq!(probe_fft(1)[0], probe_fft(4)[0]);

    // Ocean: exact equality with the sequential reference is asserted by
    // verify() itself at every processor count.
    for procs in [1usize, 2, 5] {
        let w = ssm::apps::ocean::Ocean::contiguous(12, 2);
        let r = SimBuilder::new(Protocol::Sc).procs(procs).run(&w);
        assert!(
            r.verify_error.is_none(),
            "{procs} procs: {:?}",
            r.verify_error
        );
    }

    // Radix sorts correctly at awkward processor counts (non-dividing).
    for procs in [3usize, 7] {
        let w = ssm::apps::radix::Radix::local(1000);
        let r = SimBuilder::new(Protocol::Hlrc).procs(procs).run(&w);
        assert!(
            r.verify_error.is_none(),
            "{procs} procs: {:?}",
            r.verify_error
        );
    }
}

/// The harness utilities hold together: every figure3 configuration is
/// runnable for one app and produces internally consistent results.
#[test]
fn figure3_configurations_all_run() {
    let spec = ssm::apps::catalog::by_name("Water-Spatial").expect("app");
    for cfg in LayerConfig::figure3() {
        let w = spec.build(Scale::Test);
        let r = SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .layers(cfg)
            .run(w.as_ref());
        assert!(
            r.verify_error.is_none(),
            "{}: {:?}",
            cfg.label(),
            r.verify_error
        );
        assert!(r.total_cycles > 0);
    }
}

/// Tracing captures the protocol conversation and is off by default.
#[test]
fn tracing_captures_protocol_events() {
    let w = ssm::apps::fft::Fft::new(256);
    let silent = SimBuilder::new(Protocol::Hlrc).procs(4).run(&w);
    assert!(silent.trace.is_empty(), "tracing must be opt-in");
    let w = ssm::apps::fft::Fft::new(256);
    let traced = SimBuilder::new(Protocol::Hlrc).procs(4).trace(true).run(&w);
    assert!(!traced.trace.is_empty());
    // Every send has a matching wire direction and times are sane.
    assert!(traced.trace.iter().any(|e| e.label == "send"));
    assert!(traced.trace.iter().any(|e| e.label == "handle"));
    for e in &traced.trace {
        assert!(e.node < 4);
        assert!(e.time <= traced.total_cycles);
    }
    // Sends recorded equal messages counted.
    let sends = traced.trace.iter().filter(|e| e.label == "send").count() as u64;
    assert_eq!(sends, traced.counters.messages);
}
