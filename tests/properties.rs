//! Randomized-property tests over the core data structures and invariants
//! of the simulator.
//!
//! These used to be `proptest` properties; they are now driven by the
//! repo's own seeded [`Rng`](ssm::apps::common::Rng) so the tier-1 suite
//! builds and runs with no registry access. Each property samples many
//! deterministic random cases (seeded per case index), so failures
//! reproduce exactly.

use ssm::apps::common::{block_range, Rng};
use ssm::engine::{EventQueue, Pipe, Resource};
use ssm::hlrc::{DirtyBits, NoticeBoard};
use ssm::mem::{Cache, CacheConfig};
use ssm::proto::{BarrierId, BarrierTable, LockId, LockTable, PerWord};

/// Number of random cases sampled per property.
const CASES: u64 = 64;

/// Events always pop in non-decreasing time order, FIFO within a time.
#[test]
fn event_queue_orders() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0E0E + case);
        let n = 1 + rng.gen_range(199) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(rng.gen_range(1000), i);
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                assert!(
                    t > pt || (t == pt && i > pi),
                    "case {case}: order violated: ({pt},{pi}) then ({t},{i})"
                );
            }
            prev = Some((t, i));
        }
    }
}

/// A resource never serves two reservations at once and never goes
/// backwards.
#[test]
fn resource_reservations_disjoint() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4E50 + case);
        let n = 1 + rng.gen_range(99);
        let mut r = Resource::new();
        let mut last_end = 0u64;
        let mut total = 0u64;
        for _ in 0..n {
            let now = rng.gen_range(10_000);
            let dur = rng.gen_range(500);
            let (start, end) = r.acquire_span(now, dur);
            assert!(start >= last_end, "case {case}");
            assert!(start >= now, "case {case}");
            assert_eq!(end - start, dur, "case {case}");
            last_end = end;
            total += dur;
        }
        assert_eq!(r.busy_cycles(), total, "case {case}");
    }
}

/// Pipe transfer times are monotone in sim order and each transfer takes
/// at least its own latency.
#[test]
fn pipe_transfers_serialize() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9199 + case);
        let n = 1 + rng.gen_range(99);
        let mut p = Pipe::new(2, 1);
        let mut last = 0u64;
        for _ in 0..n {
            let now = rng.gen_range(10_000);
            let bytes = 1 + rng.gen_range(9_999);
            let done = p.transfer(now, bytes);
            assert!(done >= last, "case {case}");
            assert!(done >= now + p.latency_of(bytes), "case {case}");
            last = done;
        }
    }
}

/// block_range always partitions [0, n) exactly, in order.
#[test]
fn block_range_partitions() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xB10C + case);
        let n = rng.gen_range(10_000) as usize;
        let np = 1 + rng.gen_range(63) as usize;
        let mut next = 0usize;
        for pid in 0..np {
            let (s, e) = block_range(n, np, pid);
            assert_eq!(s, next, "case {case}");
            assert!(e >= s, "case {case}");
            assert!(e - s <= n / np + 1, "case {case}");
            next = e;
        }
        assert_eq!(next, n, "case {case}");
    }
}

/// Lock handover is FIFO and every acquirer is granted exactly once.
#[test]
fn lock_table_fifo() {
    for nprocs in 2usize..10 {
        let mut t = LockTable::new(1);
        let l = LockId(0);
        assert!(t.acquire(l, 0));
        for p in 1..nprocs {
            assert!(!t.acquire(l, p));
        }
        // Releases hand the lock over in request order.
        for p in 0..nprocs {
            let next = t.release(l, p);
            if p + 1 < nprocs {
                assert_eq!(next, Some(p + 1));
            } else {
                assert_eq!(next, None);
            }
        }
    }
}

/// A barrier completes exactly when all processors arrive, for any
/// arrival order, and is reusable.
#[test]
fn barrier_completes_once() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xBA44 + case);
        let mut order: Vec<usize> = (0..8).collect();
        rng.shuffle(&mut order);
        let episodes = 1 + rng.gen_range(3) as usize;
        let mut t = BarrierTable::new(1, 8);
        for _ in 0..episodes {
            for (k, &p) in order.iter().enumerate() {
                let done = t.arrive(BarrierId(0), p);
                if k + 1 < order.len() {
                    assert!(done.is_none(), "case {case}");
                } else {
                    let arrivals = done.expect("last arrival completes");
                    assert_eq!(arrivals.len(), 8, "case {case}");
                }
            }
        }
        assert_eq!(t.episodes(BarrierId(0)), episodes as u64, "case {case}");
    }
}

/// Dirty-bit counts equal the size of the union of marked ranges.
#[test]
fn dirty_bits_count_union() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xD147 + case);
        let nranges = rng.gen_range(20);
        let mut d = DirtyBits::new();
        let mut model = std::collections::HashSet::new();
        for _ in 0..nranges {
            let start = rng.gen_range(1024);
            let len = (1 + rng.gen_range(63)).min(1024 - start);
            if len == 0 {
                continue;
            }
            d.mark(start, len);
            for w in start..start + len {
                model.insert(w);
            }
        }
        assert_eq!(d.count(), model.len() as u64, "case {case}");
    }
}

/// Write notices are delivered to a node at most once, regardless of
/// how collects interleave.
#[test]
fn notices_delivered_once() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4075 + case);
        let nsteps = 1 + rng.gen_range(19) as usize;
        let mut collect_points: Vec<usize> = (0..1 + rng.gen_range(9))
            .map(|_| rng.gen_range(20) as usize)
            .collect();
        collect_points.sort_unstable();
        let mut b = NoticeBoard::new(5);
        let mut raw_total = 0u64;
        let mut collected_raw = 0u64;
        for step in 0..nsteps {
            let node = rng.gen_range(4) as usize;
            let pages: Vec<u64> = (0..1 + rng.gen_range(4))
                .map(|_| rng.gen_range(50))
                .collect();
            b.record_interval(node, pages.clone());
            raw_total += pages.len() as u64;
            while collect_points.first() == Some(&step) {
                collect_points.remove(0);
                let target = b.global_vt();
                let (_, raw) = b.collect(4, &target);
                collected_raw += raw;
            }
        }
        let target = b.global_vt();
        let (_, raw) = b.collect(4, &target);
        collected_raw += raw;
        // Node 4 recorded nothing itself, so it must see each notice
        // exactly once in total.
        assert_eq!(collected_raw, raw_total, "case {case}");
        // And nothing more on a second pass.
        let (pages, raw) = b.collect(4, &b.global_vt());
        assert!(pages.is_empty(), "case {case}");
        assert_eq!(raw, 0, "case {case}");
    }
}

/// Cache: after filling any sequence of addresses, probing the most
/// recently filled address always hits (it is MRU in its set).
#[test]
fn cache_mru_always_present() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xCACE + case);
        let n = 1 + rng.gen_range(199);
        let mut c = Cache::new(CacheConfig {
            size: 1024,
            line: 32,
            assoc: 2,
        });
        for _ in 0..n {
            let a = rng.gen_range(100_000);
            c.fill(a, false);
            assert!(c.probe(a, false), "case {case}: just-filled {a} missing");
        }
    }
}

/// PerWord costs are linear and halving halves (within rounding).
#[test]
fn per_word_linear() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9E42 + case);
        let words = rng.gen_range(100_000);
        let num = rng.gen_range(10);
        let den = 1 + rng.gen_range(9);
        let c = PerWord::new(num, den);
        let whole = c.cost(words);
        let half = c.halved().cost(words);
        assert!(half <= whole.div_ceil(2), "case {case}");
        assert_eq!(c.cost(0), 0, "case {case}");
        // Linearity within integer truncation.
        let double = c.cost(words * 2);
        assert!(
            double >= (whole * 2).saturating_sub(1) && double <= whole * 2 + 1,
            "case {case}"
        );
    }
}
