//! Property-based tests (proptest) over the core data structures and
//! invariants of the simulator.

use proptest::collection::vec;
use proptest::prelude::*;

use ssm::apps::common::block_range;
use ssm::engine::{EventQueue, Pipe, Resource};
use ssm::hlrc::{DirtyBits, NoticeBoard};
use ssm::mem::{Cache, CacheConfig};
use ssm::proto::{BarrierId, BarrierTable, LockId, LockTable, PerWord};

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within a time.
    #[test]
    fn event_queue_orders(times in vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(t > pt || (t == pt && i > pi),
                    "order violated: ({pt},{pi}) then ({t},{i})");
            }
            prev = Some((t, i));
        }
    }

    /// A resource never serves two reservations at once and never goes
    /// backwards.
    #[test]
    fn resource_reservations_disjoint(reqs in vec((0u64..10_000, 0u64..500), 1..100)) {
        let mut r = Resource::new();
        let mut last_end = 0u64;
        let mut total = 0u64;
        for (now, dur) in reqs {
            let (start, end) = r.acquire_span(now, dur);
            prop_assert!(start >= last_end);
            prop_assert!(start >= now);
            prop_assert_eq!(end - start, dur);
            last_end = end;
            total += dur;
        }
        prop_assert_eq!(r.busy_cycles(), total);
    }

    /// Pipe transfer times are monotone in sim order and total occupancy
    /// equals the sum of per-transfer latencies.
    #[test]
    fn pipe_transfers_serialize(xs in vec((0u64..10_000, 1u64..10_000), 1..100)) {
        let mut p = Pipe::new(2, 1);
        let mut last = 0u64;
        for (now, bytes) in xs {
            let done = p.transfer(now, bytes);
            prop_assert!(done >= last);
            prop_assert!(done >= now + p.latency_of(bytes));
            last = done;
        }
    }

    /// block_range always partitions [0, n) exactly, in order.
    #[test]
    fn block_range_partitions(n in 0usize..10_000, np in 1usize..64) {
        let mut next = 0usize;
        for pid in 0..np {
            let (s, e) = block_range(n, np, pid);
            prop_assert_eq!(s, next);
            prop_assert!(e >= s);
            prop_assert!(e - s <= n / np + 1);
            next = e;
        }
        prop_assert_eq!(next, n);
    }

    /// Lock handover is FIFO and every acquirer is granted exactly once.
    #[test]
    fn lock_table_fifo(nprocs in 2usize..10) {
        let mut t = LockTable::new(1);
        let l = LockId(0);
        prop_assert!(t.acquire(l, 0));
        for p in 1..nprocs {
            prop_assert!(!t.acquire(l, p));
        }
        // Releases hand the lock over in request order.
        for p in 0..nprocs {
            let next = t.release(l, p);
            if p + 1 < nprocs {
                prop_assert_eq!(next, Some(p + 1));
            } else {
                prop_assert_eq!(next, None);
            }
        }
    }

    /// A barrier completes exactly when all processors arrive, for any
    /// arrival order, and is reusable.
    #[test]
    fn barrier_completes_once(perm in vec(0usize..8, 8..9), episodes in 1usize..4) {
        // Build a permutation of 0..8 from the random vector.
        let mut order: Vec<usize> = (0..8).collect();
        for (i, &x) in perm.iter().enumerate() {
            order.swap(i, x % 8);
        }
        let mut t = BarrierTable::new(1, 8);
        for _ in 0..episodes {
            for (k, &p) in order.iter().enumerate() {
                let done = t.arrive(BarrierId(0), p);
                if k + 1 < order.len() {
                    prop_assert!(done.is_none());
                } else {
                    let arrivals = done.expect("last arrival completes");
                    prop_assert_eq!(arrivals.len(), 8);
                }
            }
        }
        prop_assert_eq!(t.episodes(BarrierId(0)), episodes as u64);
    }

    /// Dirty-bit counts equal the size of the union of marked ranges.
    #[test]
    fn dirty_bits_count_union(ranges in vec((0u64..1024, 1u64..64), 0..20)) {
        let mut d = DirtyBits::new();
        let mut model = std::collections::HashSet::new();
        for (start, len) in ranges {
            let len = len.min(1024 - start);
            if len == 0 { continue; }
            d.mark(start, len);
            for w in start..start + len {
                model.insert(w);
            }
        }
        prop_assert_eq!(d.count(), model.len() as u64);
    }

    /// Write notices are delivered to a node at most once, regardless of
    /// how collects interleave.
    #[test]
    fn notices_delivered_once(
        intervals in vec((0usize..4, vec(0u64..50, 1..5)), 1..20),
        collect_points in vec(0usize..20, 1..10),
    ) {
        let mut b = NoticeBoard::new(5);
        let mut raw_total = 0u64;
        let mut collected_raw = 0u64;
        let mut cp: Vec<usize> = collect_points;
        cp.sort_unstable();
        for (step, (node, pages)) in intervals.iter().enumerate() {
            b.record_interval(*node, pages.clone());
            raw_total += pages.len() as u64;
            while cp.first() == Some(&step) {
                cp.remove(0);
                let target = b.global_vt();
                let (_, raw) = b.collect(4, &target);
                collected_raw += raw;
            }
        }
        let target = b.global_vt();
        let (_, raw) = b.collect(4, &target);
        collected_raw += raw;
        // Node 4 recorded nothing itself, so it must see each notice
        // exactly once in total.
        prop_assert_eq!(collected_raw, raw_total);
        // And nothing more on a second pass.
        let (pages, raw) = b.collect(4, &b.global_vt());
        prop_assert!(pages.is_empty());
        prop_assert_eq!(raw, 0);
    }

    /// Cache: after filling any sequence of addresses, probing the most
    /// recently filled address always hits (it is MRU in its set).
    #[test]
    fn cache_mru_always_present(addrs in vec(0u64..100_000, 1..200)) {
        let mut c = Cache::new(CacheConfig { size: 1024, line: 32, assoc: 2 });
        for &a in &addrs {
            c.fill(a, false);
            prop_assert!(c.probe(a, false), "just-filled {a} missing");
        }
    }

    /// PerWord costs are linear and halving halves (within rounding).
    #[test]
    fn per_word_linear(words in 0u64..100_000, num in 0u64..10, den in 1u64..10) {
        let c = PerWord::new(num, den);
        let whole = c.cost(words);
        let half = c.halved().cost(words);
        prop_assert!(half <= whole.div_ceil(2));
        prop_assert_eq!(c.cost(0), 0);
        // Linearity within integer truncation.
        let double = c.cost(words * 2);
        prop_assert!(double >= (whole * 2).saturating_sub(1) && double <= whole * 2 + 1);
    }
}
