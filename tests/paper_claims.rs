//! Qualitative regression tests for the paper's headline conclusions,
//! encoded at small (fast) scale. These guard the *shape* of the
//! reproduction: if a refactor flips who wins or kills a sensitivity, a
//! test here fails.

use ssm::apps::catalog::by_name;
use ssm::apps::ocean::Ocean;
use ssm::apps::radix::Radix;
use ssm::apps::water_nsq::WaterNsq;
use ssm::core::{Protocol, SimBuilder};
use ssm::net::CommParams;
use ssm::proto::Workload;

fn run_hlrc(w: &dyn Workload, comm: CommParams, procs: usize) -> u64 {
    SimBuilder::new(Protocol::Hlrc)
        .procs(procs)
        .comm(comm)
        .run(w)
        .expect_verified()
        .total_cycles
}

fn run_sc(w: &dyn Workload, comm: CommParams, procs: usize, block: u64) -> u64 {
    SimBuilder::new(Protocol::Sc)
        .procs(procs)
        .comm(comm)
        .sc_block(block)
        .run(w)
        .expect_verified()
        .total_cycles
}

/// §5 conclusion (iv): among communication parameters, HLRC's greatest
/// dependence is on bandwidth — doubling bandwidth helps it more than
/// removing the host overhead entirely.
#[test]
fn hlrc_depends_mostly_on_bandwidth() {
    let mk = || Ocean::contiguous(32, 2);
    let base = run_hlrc(&mk(), CommParams::achievable(), 4);
    let mut more_bw = CommParams::achievable();
    more_bw.io_bus_rate = Some((2, 1)); // 4x bandwidth
    let bw = run_hlrc(&mk(), more_bw, 4);
    let mut no_overhead = CommParams::achievable();
    no_overhead.host_overhead = 0;
    let oh = run_hlrc(&mk(), no_overhead, 4);
    assert!(bw < base, "bandwidth must help HLRC");
    assert!(
        bw < oh,
        "bandwidth (t={bw}) should help HLRC more than host overhead (t={oh})"
    );
}

/// §5 conclusion: fine-grained SC depends mostly on overhead and
/// occupancy — removing them helps more than quadrupling bandwidth.
#[test]
fn sc_depends_mostly_on_overhead_and_occupancy() {
    let mk = || Ocean::contiguous(32, 2);
    let mut no_cost = CommParams::achievable();
    no_cost.host_overhead = 0;
    no_cost.ni_occupancy = 0;
    let oh = run_sc(&mk(), no_cost, 4, 64);
    let mut more_bw = CommParams::achievable();
    more_bw.io_bus_rate = Some((2, 1));
    let bw = run_sc(&mk(), more_bw, 4, 64);
    assert!(
        oh < bw,
        "overhead+occupancy (t={oh}) should dominate bandwidth (t={bw}) for fine-grained SC"
    );
}

/// §4.3/Table: SC must run regular applications at coarse granularity —
/// FFT at 64 B is substantially worse than at 4 KB (the paper: "we have
/// found using a finer granularity to perform substantially worse").
#[test]
fn sc_fft_needs_coarse_granularity() {
    // At this reduced size the matrix rows are 1 KB, so 1 KB is the
    // "coarse" point (the full 4 KB claim holds at paper scale; see the
    // `ablation` harness binary).
    let coarse = run_sc(
        &ssm::apps::fft::Fft::new(4096),
        CommParams::achievable(),
        4,
        1024,
    );
    let fine = run_sc(
        &ssm::apps::fft::Fft::new(4096),
        CommParams::achievable(),
        4,
        64,
    );
    assert!(
        fine > coarse * 2,
        "fine-grain FFT (t={fine}) should be at least 2x slower than coarse (t={coarse})"
    );
}

/// §4.3: Radix is catastrophic under page-based SVM at the base system —
/// slowdown, not speedup — and the restructured Radix-Local recovers a
/// large factor.
#[test]
fn radix_collapses_and_restructuring_recovers() {
    let n = 1 << 16; // large enough for the permutation traffic to dominate
    let seq = ssm::core::sequential_baseline(&Radix::original(n)).total_cycles;
    let orig = run_hlrc(&Radix::original(n), CommParams::achievable(), 16);
    let local = run_hlrc(&Radix::local(n), CommParams::achievable(), 16);
    assert!(orig > seq, "Radix under HLRC should be a slowdown at base");
    assert!(
        local * 2 < orig,
        "Radix-Local (t={local}) should be at least 2x faster than Radix (t={orig})"
    );
}

/// §4.4: Radix's problem is bandwidth/contention — the better-than-best
/// network (B+) helps it far more than zero protocol costs do. (The
/// paper's absolute rescue factor is larger — its Radix uses radix 1024
/// on 1M keys — but the direction and ordering are the claim here; see
/// EXPERIMENTS.md.)
#[test]
fn radix_needs_the_better_than_best_network() {
    let mk = || Radix::original(1 << 16);
    let ao = run_hlrc(&mk(), CommParams::achievable(), 16);
    let bplus = run_hlrc(&mk(), CommParams::better_than_best(), 16);
    let ab = SimBuilder::new(Protocol::Hlrc)
        .procs(16)
        .proto(ssm::proto::ProtoCosts::best())
        .run(&mk())
        .expect_verified()
        .total_cycles;
    assert!(
        (bplus as f64) * 1.3 < ao as f64,
        "B+ should substantially help Radix: {bplus} vs {ao}"
    );
    assert!(
        bplus < ab,
        "network (t={bplus}) matters more than protocol costs (t={ab}) for Radix"
    );
}

/// §4.2: restructuring Barnes away from locks dramatically cuts lock
/// traffic and improves HLRC time at the base system.
#[test]
fn barnes_restructuring_wins_under_hlrc() {
    let orig = by_name("Barnes-original").expect("app");
    let rest = by_name("Barnes-Spatial").expect("app");
    let wo = orig.build(ssm::apps::catalog::Scale::Test);
    let wr = rest.build(ssm::apps::catalog::Scale::Test);
    let ro = SimBuilder::new(Protocol::Hlrc)
        .procs(4)
        .run(wo.as_ref())
        .expect_verified();
    let rr = SimBuilder::new(Protocol::Hlrc)
        .procs(4)
        .run(wr.as_ref())
        .expect_verified();
    assert!(
        rr.total_cycles < ro.total_cycles,
        "Barnes-Spatial (t={}) should beat Barnes-original (t={}) under HLRC",
        rr.total_cycles,
        ro.total_cycles
    );
}

/// §4.5 synergy: once communication is idealized, protocol-cost
/// improvements buy a larger *percentage* gain than they did at the base
/// system (Water-Nsquared is one of the paper's examples).
#[test]
fn protocol_gains_grow_after_communication_improves() {
    let mk = || WaterNsq::new(32, 2);
    let t = |comm: CommParams, proto: ssm::proto::ProtoCosts| {
        SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .comm(comm)
            .proto(proto)
            .run(&mk())
            .expect_verified()
            .total_cycles as f64
    };
    let ao = t(CommParams::achievable(), ssm::proto::ProtoCosts::original());
    let ab = t(CommParams::achievable(), ssm::proto::ProtoCosts::best());
    let bo = t(CommParams::best(), ssm::proto::ProtoCosts::original());
    let bb = t(CommParams::best(), ssm::proto::ProtoCosts::best());
    let gain_before = (ao - ab) / ao;
    let gain_after = (bo - bb) / bo;
    assert!(
        gain_after > gain_before,
        "protocol idealization should gain more after comm idealization: \
         {:.1}% -> {:.1}%",
        100.0 * gain_before,
        100.0 * gain_after
    );
}

/// The worse (W) communication set mirrors improvements downward for both
/// protocols — "not improving communication performance as processor speed
/// increases will indeed have a substantial impact".
#[test]
fn degraded_communication_degrades_both_protocols() {
    let mk = || Ocean::contiguous(24, 2);
    let hlrc_a = run_hlrc(&mk(), CommParams::achievable(), 4);
    let hlrc_w = run_hlrc(&mk(), CommParams::worse(), 4);
    let sc_a = run_sc(&mk(), CommParams::achievable(), 4, 1024);
    let sc_w = run_sc(&mk(), CommParams::worse(), 4, 1024);
    assert!(hlrc_w as f64 > hlrc_a as f64 * 1.3);
    assert!(sc_w as f64 > sc_a as f64 * 1.3);
}
