//! AURC-mode tests: automatic update replaces twins/diffs while the lazy
//! write-notice machinery behaves exactly as in HLRC.

use ssm_hlrc::{Hlrc, PageState, WriteMode};
use ssm_mem::MemConfig;
use ssm_net::CommParams;
use ssm_proto::{LockId, Machine, ProtoCosts, Protocol, WorldShape, PAGE_SIZE};

fn setup(nprocs: usize) -> (Machine, Hlrc) {
    let m = Machine::new(
        nprocs,
        CommParams::achievable(),
        ProtoCosts::original(),
        MemConfig::pentium_pro_like(),
    );
    let mut h = Hlrc::aurc();
    h.init(
        &m,
        &WorldShape {
            heap_bytes: 1 << 20,
            nlocks: 4,
            nbarriers: 2,
        },
    );
    (m, h)
}

#[test]
fn aurc_mode_and_name() {
    let (_, h) = setup(2);
    assert_eq!(h.mode(), WriteMode::AutoUpdate);
    assert_eq!(h.name(), "AURC");
    assert_eq!(Hlrc::new().name(), "HLRC");
}

#[test]
fn writes_stream_updates_not_twins() {
    let (mut m, mut h) = setup(2);
    // Node 0 writes 3 times into page 1 (home: node 1).
    let mut t = 0;
    for i in 0..3u64 {
        m.clock[0] = t;
        t = h.write(&mut m, 0, PAGE_SIZE + i * 64, 8);
    }
    assert_eq!(m.counters()[0].twins, 0, "AURC never twins");
    assert_eq!(m.counters()[0].auto_updates, 3);
    assert_eq!(h.page_state(0, 1), PageState::ReadWrite);
    // The page was fetched once (write fault on Invalid), then streamed.
    assert_eq!(m.counters()[0].fetches, 1);
}

#[test]
fn release_creates_no_diffs_and_page_stays_writable() {
    let (mut m, mut h) = setup(2);
    let t = h.write(&mut m, 0, PAGE_SIZE, 16);
    m.clock[0] = t;
    assert!(h.lock_table_mut().acquire(LockId(0), 0));
    let t2 = h.unlock(&mut m, 0, LockId(0));
    assert!(t2 >= t);
    assert_eq!(m.counters()[0].diffs, 0);
    assert_eq!(m.activities()[0].diff_create, 0);
    assert_eq!(m.activities()[1].diff_apply, 0);
    // Unlike HLRC, the page is NOT downgraded at release.
    assert_eq!(h.page_state(0, 1), PageState::ReadWrite);
}

#[test]
fn notices_still_invalidate_at_acquire() {
    let (mut m, mut h) = setup(3);
    // P2 caches page 0 (home 0) read-only.
    let t = h.read(&mut m, 2, 0, 8);
    m.clock[2] = t;
    // P1 locks, writes page 0 (auto-updates flow to home 0), unlocks.
    let t = h.lock(&mut m, 1, LockId(1)).expect("free");
    m.clock[1] = t;
    let t = h.write(&mut m, 1, 0, 8);
    m.clock[1] = t;
    let _ = h.unlock(&mut m, 1, LockId(1));
    // P2 acquires: the notice invalidates its copy, exactly as in HLRC.
    let _ = h.lock(&mut m, 2, LockId(1)).expect("free after release");
    assert_eq!(h.page_state(2, 0), PageState::Invalid);
    assert_eq!(m.counters()[2].write_notices, 1);
}

#[test]
fn release_waits_for_update_drain() {
    // With a pathologically slow network, the release time must track the
    // last update's arrival.
    let mut slow = CommParams::achievable();
    slow.io_bus_rate = Some((1, 256)); // 1 byte per 256 cycles
    let m = Machine::new(
        2,
        slow,
        ProtoCosts::best(), // isolate the network effect
        MemConfig::pentium_pro_like(),
    );
    let mut h = Hlrc::aurc();
    h.init(
        &m,
        &WorldShape {
            heap_bytes: 1 << 20,
            nlocks: 1,
            nbarriers: 1,
        },
    );
    let mut m = m;
    let t = h.write(&mut m, 0, PAGE_SIZE, 64);
    m.clock[0] = t;
    assert!(h.lock_table_mut().acquire(LockId(0), 0));
    let release_done = h.unlock(&mut m, 0, LockId(0));
    // The 80-byte update alone needs > 80 * 256 cycles of bus time; the
    // release cannot complete before it drains.
    assert!(
        release_done > 20_000,
        "release at {release_done} did not wait for the update drain"
    );
}

#[test]
fn aurc_beats_hlrc_on_migratory_lock_data() {
    // The paper's motivation for automatic update: diff costs dominate for
    // migratory data updated under locks. A tight lock-update loop across
    // two nodes is cheaper under AURC.
    let run = |mut h: Hlrc| {
        let m = Machine::new(
            2,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        h.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 1,
                nbarriers: 1,
            },
        );
        let mut m = m;
        let mut t = [0u64; 2];
        for round in 0..6 {
            let p = round % 2;
            m.clock[p] = t[0].max(t[1]);
            let g = h.lock(&mut m, p, LockId(0)).expect("handoff is sequential");
            m.clock[p] = g;
            let w = h.write(&mut m, p, PAGE_SIZE, 64);
            m.clock[p] = w;
            t[p] = h.unlock(&mut m, p, LockId(0));
        }
        t[0].max(t[1])
    };
    let hlrc = run(Hlrc::new());
    let aurc = run(Hlrc::aurc());
    assert!(
        aurc < hlrc,
        "AURC ({aurc}) should beat HLRC ({hlrc}) on migratory lock data"
    );
}

#[test]
fn end_to_end_suite_runs_under_aurc() {
    use ssm_core::{Protocol as P, SimBuilder};
    // A couple of full applications under AURC, verified.
    let w = ssm_apps::fft::Fft::new(256);
    let r = SimBuilder::new(P::Aurc).procs(4).run(&w);
    assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    assert_eq!(r.protocol, "AURC");
    assert_eq!(r.counters.diffs, 0);
    assert!(r.counters.auto_updates > 0);

    let w = ssm_apps::water_nsq::WaterNsq::new(16, 2);
    let r = SimBuilder::new(P::Aurc).procs(4).run(&w);
    assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
}
