//! Per-node page tables and per-word dirty tracking for HLRC.

use std::collections::{BTreeMap, BTreeSet};

use ssm_proto::{home_of_page, PAGE_WORDS};

/// Number of `u64` limbs in a per-page dirty-word bitset.
const LIMBS: usize = (PAGE_WORDS as usize).div_ceil(64);

/// A per-word dirty bitset for one twinned page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBits {
    limbs: [u64; LIMBS],
}

impl DirtyBits {
    /// An all-clean bitset.
    pub fn new() -> Self {
        DirtyBits { limbs: [0; LIMBS] }
    }

    /// Marks words `[first, first + n)` dirty.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn mark(&mut self, first: u64, n: u64) {
        assert!(first + n <= PAGE_WORDS, "dirty range exceeds page");
        for w in first..first + n {
            self.limbs[(w / 64) as usize] |= 1u64 << (w % 64);
        }
    }

    /// Number of dirty words.
    pub fn count(&self) -> u64 {
        self.limbs.iter().map(|l| l.count_ones() as u64).sum()
    }

    /// Whether no word is dirty.
    pub fn is_clean(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }
}

impl Default for DirtyBits {
    fn default() -> Self {
        DirtyBits::new()
    }
}

/// State of a page at a *non-home* node. (The home's copy is always valid
/// and writable: diffs are applied to it eagerly.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// No valid copy; any access faults and fetches from the home.
    Invalid,
    /// Valid read-only copy; a write faults and creates a twin.
    ReadOnly,
    /// Writable copy with a twin recording modifications.
    ReadWrite,
}

/// One node's view of the shared pages.
#[derive(Debug)]
pub struct NodePages {
    node: usize,
    nodes: usize,
    state: Vec<PageState>,
    /// Dirty-word bitsets for pages in `ReadWrite` (twinned) state.
    twins: BTreeMap<u64, DirtyBits>,
    /// Pages homed here and written since the last release (they produce
    /// write notices but need no twin/diff).
    home_written: BTreeSet<u64>,
}

impl NodePages {
    /// Creates the page table of `node` in a `nodes`-node cluster over
    /// `npages` pages. Non-home pages start `Invalid` (cold).
    pub fn new(node: usize, nodes: usize, npages: u64) -> Self {
        NodePages {
            node,
            nodes,
            state: vec![PageState::Invalid; npages as usize],
            twins: BTreeMap::new(),
            home_written: BTreeSet::new(),
        }
    }

    /// Whether this node is `page`'s home.
    pub fn is_home(&self, page: u64) -> bool {
        home_of_page(page, self.nodes) == self.node
    }

    /// Current state of `page` (meaningful for non-home pages).
    pub fn state(&self, page: u64) -> PageState {
        self.state[page as usize]
    }

    /// Sets `page` to `ReadOnly` after a fetch.
    pub fn set_read_only(&mut self, page: u64) {
        self.state[page as usize] = PageState::ReadOnly;
    }

    /// Creates a twin for `page` (transition `ReadOnly -> ReadWrite`).
    pub fn make_writable(&mut self, page: u64) {
        self.state[page as usize] = PageState::ReadWrite;
        self.twins.insert(page, DirtyBits::new());
    }

    /// Makes `page` writable *without* a twin — AURC mode, where hardware
    /// write propagation replaces twinning/diffing entirely.
    pub fn make_writable_untwinned(&mut self, page: u64) {
        self.state[page as usize] = PageState::ReadWrite;
    }

    /// Records a write to words `[first, first+n)` of a twinned page.
    ///
    /// # Panics
    ///
    /// Panics if the page has no twin.
    pub fn mark_dirty(&mut self, page: u64, first_word: u64, nwords: u64) {
        self.twins
            .get_mut(&page)
            .expect("write to page without a twin")
            .mark(first_word, nwords);
    }

    /// Records that this node wrote one of its own home pages (for write
    /// notices). No twin is needed: the home copy is the master.
    pub fn mark_home_written(&mut self, page: u64) {
        self.home_written.insert(page);
    }

    /// Takes all twinned pages and their dirty sets (release flush), and
    /// downgrades those pages to `ReadOnly`.
    pub fn take_twins(&mut self) -> Vec<(u64, DirtyBits)> {
        let twins = std::mem::take(&mut self.twins);
        let out: Vec<(u64, DirtyBits)> = twins.into_iter().collect();
        for (pg, _) in &out {
            self.state[*pg as usize] = PageState::ReadOnly;
        }
        out
    }

    /// Takes one page's twin (used when a write notice invalidates a page
    /// that is concurrently being written here).
    pub fn take_twin(&mut self, page: u64) -> Option<DirtyBits> {
        let b = self.twins.remove(&page);
        if b.is_some() {
            self.state[page as usize] = PageState::ReadOnly;
        }
        b
    }

    /// Takes the set of home pages written since the last release.
    pub fn take_home_written(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.home_written).into_iter().collect()
    }

    /// Invalidates `page` (write-notice application).
    pub fn invalidate(&mut self, page: u64) {
        debug_assert!(!self.twins.contains_key(&page), "invalidate with live twin");
        self.state[page as usize] = PageState::Invalid;
    }

    /// Number of pages currently twinned.
    pub fn twin_count(&self) -> usize {
        self.twins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_bits_mark_and_count() {
        let mut d = DirtyBits::new();
        assert!(d.is_clean());
        d.mark(0, 2);
        d.mark(100, 1);
        d.mark(1023, 1);
        assert_eq!(d.count(), 4);
        d.mark(0, 2); // idempotent
        assert_eq!(d.count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds page")]
    fn dirty_bits_bounds() {
        let mut d = DirtyBits::new();
        d.mark(1020, 8);
    }

    #[test]
    fn page_lifecycle() {
        let mut np = NodePages::new(1, 4, 16);
        // Page 5 is homed at node 1 (5 % 4 == 1).
        assert!(np.is_home(5));
        assert!(!np.is_home(6));
        assert_eq!(np.state(6), PageState::Invalid);
        np.set_read_only(6);
        assert_eq!(np.state(6), PageState::ReadOnly);
        np.make_writable(6);
        assert_eq!(np.state(6), PageState::ReadWrite);
        np.mark_dirty(6, 10, 4);
        let twins = np.take_twins();
        assert_eq!(twins.len(), 1);
        assert_eq!(twins[0].0, 6);
        assert_eq!(twins[0].1.count(), 4);
        // Flushing downgrades to read-only.
        assert_eq!(np.state(6), PageState::ReadOnly);
        np.invalidate(6);
        assert_eq!(np.state(6), PageState::Invalid);
    }

    #[test]
    fn home_written_tracked_separately() {
        let mut np = NodePages::new(0, 2, 8);
        np.mark_home_written(0);
        np.mark_home_written(2);
        np.mark_home_written(0);
        assert_eq!(np.take_home_written(), vec![0, 2]);
        assert!(np.take_home_written().is_empty());
    }

    #[test]
    fn take_single_twin() {
        let mut np = NodePages::new(0, 2, 8);
        np.set_read_only(1);
        np.make_writable(1);
        np.mark_dirty(1, 0, 1);
        let t = np.take_twin(1).expect("twin exists");
        assert_eq!(t.count(), 1);
        assert_eq!(np.state(1), PageState::ReadOnly);
        assert!(np.take_twin(1).is_none());
    }
}
