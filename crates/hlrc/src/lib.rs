//! Home-based Lazy Release Consistency (HLRC) — the paper's page-based
//! shared virtual memory protocol.
//!
//! Protocol summary (paper §2; Zhou, Iftode & Li, OSDI'96):
//!
//! * Every page has a **home**; the home's copy is kept up to date.
//! * A read fault fetches the **whole page** from the home.
//! * The first write to a non-home page creates a **twin**; modified words
//!   are tracked per word.
//! * At a **release** (lock release or barrier arrival), the writer
//!   computes a **diff** against the twin for each dirty page and sends it
//!   eagerly to the page's home, which applies it. The page downgrades to
//!   read-only at the writer.
//! * **Write notices** (page identities, grouped into per-release
//!   *intervals* with vector timestamps) travel lazily: a lock grant
//!   carries exactly the notices the acquirer has not seen; it invalidates
//!   those pages. Barriers deliver all outstanding notices to everyone.
//! * Home nodes write their own pages directly (no twin/diff) and their
//!   copies are never invalidated.
//!
//! Cost model hooks (all charged through [`ssm_proto::Machine`]): fault
//! handlers, mprotect, twin creation, diff creation/application (with cache
//! pollution), message handling, and the host/NI/bus costs of every
//! message.
//!
//! # AURC mode
//!
//! The same engine also implements **AURC** (automatic-update release
//! consistency — Iftode et al.), the hardware-assisted variant the paper
//! points to when diff cost dominates ("hardware support for automatic
//! write propagation can eliminate diffs", §4.3): writes to non-home pages
//! are snooped off the memory bus and propagated to the home by the NI as
//! they happen — no twins, no diffs, no host CPU involvement — and a
//! release only waits until the outstanding updates have drained into the
//! homes. The LRC machinery (intervals, vector timestamps, write notices)
//! is identical. Construct with [`Hlrc::aurc`].

mod notices;
mod pages;

pub use notices::{NoticeBoard, VectorTime};
pub use pages::{DirtyBits, NodePages, PageState};

use ssm_engine::Cycles;
use ssm_proto::machine::Activity;
use ssm_proto::{
    page_of, BarrierId, BarrierTable, HomeMap, HomePolicy, LockId, LockTable, Machine, Protocol,
    WorldShape, PAGE_SIZE, PAGE_WORDS, WORD_BYTES,
};

/// Bytes of a small control message (requests, acks; includes a vector
/// timestamp when needed).
const CTRL_BYTES: u64 = 64;

/// Header bytes on data-bearing messages.
const HDR_BYTES: u64 = 16;

/// Bytes per encoded diff word (offset + value).
const DIFF_WORD_BYTES: u64 = 8;

/// Bytes per write notice in a grant/release message.
const NOTICE_BYTES: u64 = 8;

/// How writes propagate to the home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Software twins + diffs at release (classic HLRC).
    TwinDiff,
    /// Hardware automatic update: writes stream to the home as they occur
    /// (AURC); a release waits for the updates to drain.
    AutoUpdate,
}

/// The HLRC protocol engine.
///
/// # Example
///
/// ```rust
/// use ssm_hlrc::Hlrc;
/// use ssm_proto::{Machine, Protocol, ProtoCosts, WorldShape};
/// use ssm_mem::MemConfig;
/// use ssm_net::CommParams;
///
/// let mut m = Machine::new(2, CommParams::achievable(),
///                          ProtoCosts::original(), MemConfig::pentium_pro_like());
/// let mut hlrc = Hlrc::new();
/// hlrc.init(&m, &WorldShape { heap_bytes: 1 << 16, nlocks: 1, nbarriers: 1 });
/// // A read by P1 of page 0 (homed at node 0) is a remote page fetch.
/// let t = hlrc.read(&mut m, 1, 0, 8);
/// assert!(t > 1000);
/// ```
#[derive(Debug)]
pub struct Hlrc {
    nprocs: usize,
    pages: Vec<NodePages>,
    board: NoticeBoard,
    locks: LockTable,
    /// Vector timestamp of each lock's last release.
    lock_vt: Vec<VectorTime>,
    barriers: BarrierTable,
    /// Per barrier: `(proc, arrive-handler completion at the manager)` for
    /// the current episode.
    arrivals: Vec<Vec<(usize, Cycles)>>,
    npages: u64,
    mode: WriteMode,
    home_policy: HomePolicy,
    homes: HomeMap,
    /// AURC: per-processor arrival time of the latest outstanding
    /// automatic update (releases wait for this).
    inflight: Vec<Cycles>,
    /// AURC: pages written by each processor in its current interval.
    auto_written: Vec<std::collections::BTreeSet<u64>>,
}

impl Hlrc {
    /// Creates an uninitialized protocol instance ([`Protocol::init`] must
    /// run before use).
    pub fn new() -> Self {
        Hlrc {
            nprocs: 0,
            pages: Vec::new(),
            board: NoticeBoard::new(1),
            locks: LockTable::new(0),
            lock_vt: Vec::new(),
            barriers: BarrierTable::new(0, 1),
            arrivals: Vec::new(),
            npages: 0,
            mode: WriteMode::TwinDiff,
            home_policy: HomePolicy::RoundRobin,
            homes: HomeMap::new(HomePolicy::RoundRobin, 1, 0),
            inflight: Vec::new(),
            auto_written: Vec::new(),
        }
    }

    /// Selects the page-to-home placement policy (before `init`).
    pub fn with_homes(mut self, policy: HomePolicy) -> Self {
        self.home_policy = policy;
        self
    }

    /// Creates the AURC variant (automatic update instead of twins/diffs).
    pub fn aurc() -> Self {
        let mut h = Hlrc::new();
        h.mode = WriteMode::AutoUpdate;
        h
    }

    /// The configured write-propagation mode.
    pub fn mode(&self) -> WriteMode {
        self.mode
    }

    /// The page state of `page` as seen by `node` (inspection hook for
    /// tests and tools).
    pub fn page_state(&self, node: usize, page: u64) -> PageState {
        self.pages[node].state(page)
    }

    /// Direct access to the lock table (test setup hook).
    pub fn lock_table_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Synthetic address of the twin buffer for `page` at any node, used
    /// for cache-pollution modelling (twins live outside the shared heap).
    fn twin_addr(&self, page: u64) -> u64 {
        (self.npages + page) * PAGE_SIZE
    }

    /// Manager node of `lock`.
    fn lock_home(&self, lock: LockId) -> usize {
        lock.0 as usize % self.nprocs
    }

    /// Manager node of `barrier`.
    fn barrier_home(&self, barrier: BarrierId) -> usize {
        barrier.0 as usize % self.nprocs
    }

    /// Fetches `page` into `p` (read fault path). Returns completion time.
    fn fetch_page(&mut self, m: &mut Machine, p: usize, page: u64, t: Cycles) -> Cycles {
        let h = self.homes.home(page, p);
        debug_assert_ne!(h, p, "home pages never fault at home");
        // Access fault: the SIGSEGV handler runs on p.
        let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
        // Request to the home.
        let (_, req) = m.send_from_app(p, t, h, CTRL_BYTES);
        let th = m.handle_request(h, req, 0);
        // VMMC-style send: the NI DMAs the page straight out of home
        // memory — the home CPU only posts the send (host overhead); the
        // data movement cost is the I/O-bus transfer inside `deliver`.
        let (_, data) = m.send_from_handler(h, th, p, PAGE_SIZE + HDR_BYTES);
        // Fresh contents: locally cached lines of this page are stale.
        m.cache_invalidate(p, page * PAGE_SIZE, PAGE_SIZE);
        // Map it read-only.
        let done = m.proto_work(p, data, m.costs().mprotect(1), Activity::Mprotect);
        self.pages[p].set_read_only(page);
        let c = m.counters_mut(p);
        c.fetches += 1;
        c.remote_reads += 1;
        done
    }

    /// Ensures `p` can read `page`; returns the (possibly unchanged) time.
    fn ensure_readable(&mut self, m: &mut Machine, p: usize, page: u64, t: Cycles) -> Cycles {
        if self.homes.home(page, p) == p {
            return t;
        }
        match self.pages[p].state(page) {
            PageState::ReadOnly | PageState::ReadWrite => t,
            PageState::Invalid => self.fetch_page(m, p, page, t),
        }
    }

    /// Ensures `p` can write `page` (fetch + twin as needed).
    fn ensure_writable(&mut self, m: &mut Machine, p: usize, page: u64, t: Cycles) -> Cycles {
        if self.homes.home(page, p) == p {
            self.pages[p].mark_home_written(page);
            return t;
        }
        let t = match self.pages[p].state(page) {
            PageState::ReadWrite => return t,
            PageState::ReadOnly => t,
            PageState::Invalid => self.fetch_page(m, p, page, t),
        };
        match self.mode {
            WriteMode::TwinDiff => {
                // Write fault on a read-only page: create the twin.
                let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
                let t = m.proto_work(p, t, m.costs().twin.cost(PAGE_WORDS), Activity::Twin);
                // Twin copy pollutes the cache: read the page, write the twin.
                let t = m.proto_touch(p, t, page * PAGE_SIZE, PAGE_SIZE, false, Activity::Twin);
                let t = m.proto_touch(p, t, self.twin_addr(page), PAGE_SIZE, true, Activity::Twin);
                let t = m.proto_work(p, t, m.costs().mprotect(1), Activity::Mprotect);
                self.pages[p].make_writable(page);
                let c = m.counters_mut(p);
                c.twins += 1;
                c.remote_writes += 1;
                t
            }
            WriteMode::AutoUpdate => {
                // First write still faults once, to switch the mapping to
                // write-through-with-update; no twin is made.
                let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
                let t = m.proto_work(p, t, m.costs().mprotect(1), Activity::Mprotect);
                self.pages[p].make_writable_untwinned(page);
                m.counters_mut(p).remote_writes += 1;
                t
            }
        }
    }

    /// Computes and ships the diff of one page to its home; returns
    /// `(local_done, applied_at_home)`.
    fn flush_one(
        &mut self,
        m: &mut Machine,
        p: usize,
        page: u64,
        dirty: u64,
        t: Cycles,
    ) -> (Cycles, Cycles) {
        let h = self.homes.home(page, p);
        debug_assert_ne!(h, p);
        // Diff creation: compare every word, encode the dirty ones.
        let create = m.costs().diff_compare.cost(PAGE_WORDS) + m.costs().diff_encode.cost(dirty);
        let t = m.proto_work(p, t, create, Activity::DiffCreate);
        let t = m.proto_touch(
            p,
            t,
            page * PAGE_SIZE,
            PAGE_SIZE,
            false,
            Activity::DiffCreate,
        );
        let t = m.proto_touch(
            p,
            t,
            self.twin_addr(page),
            PAGE_SIZE,
            false,
            Activity::DiffCreate,
        );
        // Ship it.
        let bytes = HDR_BYTES + DIFF_WORD_BYTES * dirty;
        let (local, arr) = m.send_from_handler(p, t, h, bytes);
        // Apply at the home.
        let th = m.handle_request(h, arr, 0);
        let apply = m.costs().diff_apply.cost(dirty);
        let th = m.proto_work(h, th, apply, Activity::DiffApply);
        let th = m.proto_touch(
            h,
            th,
            page * PAGE_SIZE,
            PAGE_SIZE,
            true,
            Activity::DiffApply,
        );
        let c = m.counters_mut(p);
        c.diffs += 1;
        c.diff_words += dirty;
        (local, th)
    }

    /// Release-time flush: diffs every twinned page to its home, records
    /// the interval's write notices, downgrades pages. Returns the time at
    /// which the release may proceed (all diffs applied).
    fn release_flush(&mut self, m: &mut Machine, p: usize, t: Cycles) -> Cycles {
        if self.mode == WriteMode::AutoUpdate {
            // AURC: nothing to compute — wait for outstanding updates to
            // drain into the homes, then publish the interval's notices.
            // Pages stay writable (no downgrade: future writes keep
            // streaming updates).
            let done = t.max(self.inflight[p]);
            let mut notice_pages: Vec<u64> = std::mem::take(&mut self.auto_written[p])
                .into_iter()
                .collect();
            notice_pages.extend(self.pages[p].take_home_written());
            self.board.record_interval(p, notice_pages);
            return done;
        }
        let twins = self.pages[p].take_twins();
        let mut local = t;
        let mut done = t;
        let flushed = twins.len() as u64;
        let mut notice_pages: Vec<u64> = Vec::with_capacity(twins.len());
        for (page, bits) in twins {
            let dirty = bits.count();
            notice_pages.push(page);
            if dirty == 0 {
                continue; // twinned but never actually written
            }
            let (l, applied) = self.flush_one(m, p, page, dirty, local);
            local = l;
            done = done.max(applied);
        }
        if flushed > 0 {
            // One batched mprotect downgrades the flushed pages.
            let cost = m.costs().mprotect(flushed);
            local = m.proto_work(p, local, cost, Activity::Mprotect);
        }
        notice_pages.extend(self.pages[p].take_home_written());
        self.board.record_interval(p, notice_pages);
        local.max(done)
    }

    /// Applies write notices at `w`: invalidates the named pages (flushing
    /// any concurrently-twinned page first), charging mprotect once.
    fn apply_notices(
        &mut self,
        m: &mut Machine,
        w: usize,
        t: Cycles,
        pages: &[u64],
        raw: u64,
    ) -> Cycles {
        let mut t = t;
        let mut invalidated = 0u64;
        for &page in pages {
            if self.homes.peek(page) == Some(w) {
                continue; // the home copy is always current
            }
            match self.pages[w].state(page) {
                PageState::Invalid => {}
                PageState::ReadOnly => {
                    self.pages[w].invalidate(page);
                    m.cache_invalidate(w, page * PAGE_SIZE, PAGE_SIZE);
                    invalidated += 1;
                }
                PageState::ReadWrite => {
                    if self.mode == WriteMode::AutoUpdate {
                        // AURC: our writes already streamed to the home;
                        // record the page in our interval (if written) and
                        // drop the copy.
                        if self.auto_written[w].remove(&page) {
                            self.board.record_interval(w, vec![page]);
                        }
                        self.pages[w].invalidate(page);
                        m.cache_invalidate(w, page * PAGE_SIZE, PAGE_SIZE);
                        invalidated += 1;
                        continue;
                    }
                    // Concurrent writer: flush our modifications, then drop
                    // the page (multiple-writer resolution through the home).
                    if let Some(bits) = self.pages[w].take_twin(page) {
                        let dirty = bits.count();
                        if dirty > 0 {
                            let (l, applied) = self.flush_one(m, w, page, dirty, t);
                            t = l.max(applied);
                        }
                        self.board.record_interval(w, vec![page]);
                    }
                    self.pages[w].invalidate(page);
                    m.cache_invalidate(w, page * PAGE_SIZE, PAGE_SIZE);
                    invalidated += 1;
                }
            }
        }
        if invalidated > 0 {
            let cost = m.costs().mprotect(invalidated);
            t = m.proto_work(w, t, cost, Activity::Mprotect);
        }
        let c = m.counters_mut(w);
        c.write_notices += raw;
        c.invalidations += invalidated;
        t
    }

    /// Grants `lock` to `w` from its manager at time `t_mgr`: builds the
    /// notice list, ships it, applies invalidations at `w`. Returns when
    /// `w` holds the lock and is consistent.
    fn grant(&mut self, m: &mut Machine, lock: LockId, w: usize, t_mgr: Cycles) -> Cycles {
        let mgr = self.lock_home(lock);
        let target = self.lock_vt[lock.0 as usize].clone();
        let (pages, raw) = self.board.collect(w, &target);
        // The manager walks the notice list while building the grant.
        let walk = m.costs().per_list_element * raw;
        let t = m.proto_work(mgr, t_mgr, walk, Activity::Handler);
        let t_w = if mgr == w {
            t
        } else {
            let bytes = HDR_BYTES + NOTICE_BYTES * raw;
            let (_, arr) = m.send_from_handler(mgr, t, w, bytes);
            m.handle_request(w, arr, raw)
        };
        self.apply_notices(m, w, t_w, &pages, raw)
    }
}

impl Default for Hlrc {
    fn default() -> Self {
        Hlrc::new()
    }
}

impl Protocol for Hlrc {
    fn name(&self) -> &'static str {
        match self.mode {
            WriteMode::TwinDiff => "HLRC",
            WriteMode::AutoUpdate => "AURC",
        }
    }

    fn init(&mut self, m: &Machine, shape: &WorldShape) {
        let nprocs = m.nprocs();
        let npages = shape.heap_bytes.div_ceil(PAGE_SIZE).max(1);
        self.nprocs = nprocs;
        self.npages = npages;
        self.pages = (0..nprocs)
            .map(|n| NodePages::new(n, nprocs, npages))
            .collect();
        self.board = NoticeBoard::new(nprocs);
        self.locks = LockTable::new(shape.nlocks);
        self.lock_vt = vec![vec![0; nprocs]; shape.nlocks];
        self.barriers = BarrierTable::new(shape.nbarriers, nprocs);
        self.arrivals = vec![Vec::new(); shape.nbarriers];
        self.inflight = vec![0; nprocs];
        self.auto_written = vec![std::collections::BTreeSet::new(); nprocs];
        self.homes = HomeMap::new(self.home_policy, nprocs, npages);
    }

    fn read(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = page_of(addr);
        let last = page_of(addr + bytes - 1);
        let mut all_local = true;
        for page in first..=last {
            if self.homes.home(page, p) != p && self.pages[p].state(page) == PageState::Invalid {
                all_local = false;
            }
            t = self.ensure_readable(m, p, page, t);
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, false)
    }

    fn write(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = page_of(addr);
        let last = page_of(addr + bytes - 1);
        let mut all_local = true;
        for page in first..=last {
            let was_writable =
                self.homes.home(page, p) == p || self.pages[p].state(page) == PageState::ReadWrite;
            if !was_writable {
                all_local = false;
            }
            t = self.ensure_writable(m, p, page, t);
            if self.homes.home(page, p) != p {
                let pstart = page * PAGE_SIZE;
                let lo = addr.max(pstart);
                let hi = (addr + bytes).min(pstart + PAGE_SIZE);
                match self.mode {
                    WriteMode::TwinDiff => {
                        // Record the dirty words of this page's slice.
                        let first_word = (lo - pstart) / WORD_BYTES;
                        let last_word = (hi - 1 - pstart) / WORD_BYTES;
                        self.pages[p].mark_dirty(page, first_word, last_word - first_word + 1);
                    }
                    WriteMode::AutoUpdate => {
                        // Hardware propagates the written words to the home
                        // as one coalesced update (no CPU at either end).
                        let h = self.homes.home(page, p);
                        let arrival = m.send_hardware(p, t, h, HDR_BYTES + (hi - lo));
                        m.cache_invalidate(h, lo, hi - lo);
                        self.inflight[p] = self.inflight[p].max(arrival);
                        self.auto_written[p].insert(page);
                        m.counters_mut(p).auto_updates += 1;
                    }
                }
            }
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, true)
    }

    fn lock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Option<Cycles> {
        m.counters_mut(p).lock_acquires += 1;
        let now = m.clock[p];
        let mgr = self.lock_home(lock);
        // The request (with p's vector timestamp) reaches the manager.
        let t_mgr = if mgr == p {
            m.proto_work(p, now, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        if self.locks.acquire(lock, p) {
            Some(self.grant(m, lock, p, t_mgr))
        } else {
            None // queued at the manager; granted on release
        }
    }

    fn unlock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Cycles {
        let now = m.clock[p];
        // Release: flush diffs so the home copies are current.
        let t = self.release_flush(m, p, now);
        let mgr = self.lock_home(lock);
        // Tell the manager (carrying p's new vector timestamp).
        let (t_local, t_mgr) = if mgr == p {
            let t2 = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
            (t2, t2)
        } else {
            let (local, arr) = m.send_from_handler(p, t, mgr, CTRL_BYTES);
            (local, m.handle_request(mgr, arr, 0))
        };
        self.lock_vt[lock.0 as usize] = self.board.vt(p);
        if let Some(next) = self.locks.release(lock, p) {
            let granted = self.grant(m, lock, next, t_mgr);
            m.wake(next, granted);
        }
        t_local
    }

    fn barrier(&mut self, m: &mut Machine, p: usize, barrier: BarrierId) -> Option<Cycles> {
        let now = m.clock[p];
        let mgr = self.barrier_home(barrier);
        // Arrival release: flush diffs, then notify the manager.
        let t = self.release_flush(m, p, now);
        let t_arr = if mgr == p {
            m.proto_work(p, t, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, t, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        self.arrivals[barrier.0 as usize].push((p, t_arr));
        self.barriers.arrive(barrier, p)?;
        // Last arrival: the manager releases everyone, delivering all
        // outstanding write notices. Sends serialize on the manager's CPU.
        let episode = std::mem::take(&mut self.arrivals[barrier.0 as usize]);
        let mut t_mgr = episode.iter().map(|&(_, t)| t).max().unwrap_or(t_arr);
        let target = self.board.global_vt();
        let mut my_completion = t_mgr;
        for &(q, _) in &episode {
            let (pages, raw) = self.board.collect(q, &target);
            let walk = m.costs().per_list_element * raw;
            t_mgr = m.proto_work(mgr, t_mgr, walk, Activity::Handler);
            let t_q = if q == mgr {
                t_mgr
            } else {
                let bytes = HDR_BYTES + NOTICE_BYTES * raw;
                let (_, arr) = m.send_from_handler(mgr, t_mgr, q, bytes);
                m.handle_request(q, arr, raw)
            };
            let t_q = self.apply_notices(m, q, t_q, &pages, raw);
            if q == p {
                my_completion = t_q;
            } else {
                m.wake(q, t_q);
            }
        }
        m.counters_mut(p).barriers += 1;
        Some(my_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_mem::MemConfig;
    use ssm_net::CommParams;
    use ssm_proto::ProtoCosts;
    use ssm_stats::Bucket;

    fn setup(nprocs: usize) -> (Machine, Hlrc) {
        let m = Machine::new(
            nprocs,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        let mut h = Hlrc::new();
        h.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 4,
                nbarriers: 2,
            },
        );
        (m, h)
    }

    #[test]
    fn home_access_is_local() {
        let (mut m, mut h) = setup(4);
        // Page 0 is homed at node 0: reads and writes there never fault.
        let t = h.read(&mut m, 0, 0, 8);
        let cache_only = m.breakdowns()[0].get(Bucket::CacheStall);
        assert_eq!(t, cache_only);
        let _ = h.write(&mut m, 0, 16, 8);
        assert_eq!(m.counters()[0].fetches, 0);
        assert_eq!(m.counters()[0].twins, 0);
        assert_eq!(m.counters()[0].local_accesses, 2);
    }

    #[test]
    fn remote_read_fetches_page_once() {
        let (mut m, mut h) = setup(4);
        let t1 = h.read(&mut m, 1, 0, 8); // page 0 homed at 0
        assert!(
            t1 > 2000,
            "page fetch should cost thousands of cycles, got {t1}"
        );
        assert_eq!(m.counters()[1].fetches, 1);
        assert_eq!(h.page_state(1, 0), PageState::ReadOnly);
        // Second read is local.
        m.clock[1] = t1;
        let t2 = h.read(&mut m, 1, 8, 8);
        assert_eq!(m.counters()[1].fetches, 1);
        assert!(
            t2 - t1 < 200,
            "warm read should be near-free, got {}",
            t2 - t1
        );
    }

    #[test]
    fn remote_write_creates_twin_and_release_flushes_diff() {
        let (mut m, mut h) = setup(2);
        // Node 0 writes 4 words of page 1 (home: node 1).
        let t = h.write(&mut m, 0, PAGE_SIZE, 16);
        assert_eq!(m.counters()[0].twins, 1);
        assert_eq!(h.page_state(0, 1), PageState::ReadWrite);
        m.clock[0] = t;
        // Lock release flushes the diff.
        assert!(h.lock_table_mut().acquire(LockId(0), 0));
        let t2 = h.unlock(&mut m, 0, LockId(0));
        assert!(t2 > t);
        assert_eq!(m.counters()[0].diffs, 1);
        assert_eq!(m.counters()[0].diff_words, 4);
        assert_eq!(h.page_state(0, 1), PageState::ReadOnly);
        assert!(m.activities()[0].diff_create > 0);
        assert!(m.activities()[1].diff_apply > 0);
    }

    #[test]
    fn notices_invalidate_at_next_acquire() {
        let (mut m3, mut h3) = setup(3);
        // P2 reads page 0 (home 0) so it holds a read-only copy.
        let t = h3.read(&mut m3, 2, 0, 8);
        m3.clock[2] = t;
        assert_eq!(h3.page_state(2, 0), PageState::ReadOnly);
        // P1 locks, writes page 0, unlocks.
        let t = h3.lock(&mut m3, 1, LockId(1)).expect("free");
        m3.clock[1] = t;
        let t = h3.write(&mut m3, 1, 0, 8);
        m3.clock[1] = t;
        let _ = h3.unlock(&mut m3, 1, LockId(1));
        // P2 acquires the same lock: the grant carries the notice and
        // invalidates its copy.
        let t = h3.lock(&mut m3, 2, LockId(1)).expect("free after release");
        assert_eq!(h3.page_state(2, 0), PageState::Invalid);
        assert_eq!(m3.counters()[2].write_notices, 1);
        assert_eq!(m3.counters()[2].invalidations, 1);
        assert!(t > 0);
    }

    #[test]
    fn contended_lock_blocks_and_wakes() {
        let (mut m, mut h) = setup(2);
        let t = h.lock(&mut m, 0, LockId(0)).expect("free");
        m.clock[0] = t;
        assert_eq!(h.lock(&mut m, 1, LockId(0)), None);
        m.clock[0] = t + 10_000;
        let _ = h.unlock(&mut m, 0, LockId(0));
        let w = m.take_wakeups();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 1);
        assert!(w[0].1 > t + 10_000);
    }

    #[test]
    fn barrier_delivers_all_notices() {
        let (mut m, mut h) = setup(2);
        // P0 reads page 1 (home: node 1) to cache it.
        let t = h.read(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        assert_eq!(h.page_state(0, 1), PageState::ReadOnly);
        // P1 writes page 1 at home (no twin) then both hit the barrier.
        let t1 = h.write(&mut m, 1, PAGE_SIZE + 8, 8);
        m.clock[1] = t1;
        assert_eq!(h.barrier(&mut m, 1, BarrierId(0)), None);
        let done = h.barrier(&mut m, 0, BarrierId(0));
        assert!(done.is_some());
        // P0's stale copy of page 1 was invalidated by the barrier.
        assert_eq!(h.page_state(0, 1), PageState::Invalid);
        let w = m.take_wakeups();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let (mut m, mut h) = setup(2);
        for _ in 0..3 {
            assert_eq!(h.barrier(&mut m, 1, BarrierId(0)), None);
            assert!(h.barrier(&mut m, 0, BarrierId(0)).is_some());
            let _ = m.take_wakeups();
        }
    }

    #[test]
    fn diff_words_match_written_words() {
        let (mut m, mut h) = setup(2);
        // Write 3 separate words on page 1 (home: node 1) from node 0.
        for i in 0..3u64 {
            let t = h.write(&mut m, 0, PAGE_SIZE + i * 128, 4);
            m.clock[0] = t;
        }
        assert!(h.lock_table_mut().acquire(LockId(0), 0));
        let _ = h.unlock(&mut m, 0, LockId(0));
        assert_eq!(m.counters()[0].diff_words, 3);
    }

    #[test]
    fn multi_page_write_twins_each_page() {
        let (mut m, mut h) = setup(2);
        // A 2-page write from node 0 covering pages 1 and 3 (homes at 1).
        let t = h.write(&mut m, 0, PAGE_SIZE, PAGE_SIZE + 8);
        assert!(t > 0);
        assert_eq!(m.counters()[0].twins, 1); // page 1 twinned; page 2 is home
        assert_eq!(h.page_state(0, 1), PageState::ReadWrite);
    }

    #[test]
    fn protocol_costs_zero_reduce_time() {
        let shape = WorldShape {
            heap_bytes: 1 << 20,
            nlocks: 1,
            nbarriers: 1,
        };
        let run = |costs: ProtoCosts| {
            let mut m = Machine::new(
                2,
                CommParams::achievable(),
                costs,
                MemConfig::pentium_pro_like(),
            );
            let mut h = Hlrc::new();
            h.init(&m, &shape);
            let t = h.write(&mut m, 0, PAGE_SIZE, 64);
            m.clock[0] = t;
            assert!(h.lock_table_mut().acquire(LockId(0), 0));
            h.unlock(&mut m, 0, LockId(0))
        };
        assert!(run(ProtoCosts::best()) < run(ProtoCosts::original()));
    }

    #[test]
    fn concurrent_writer_flushes_on_notice() {
        let (mut m, mut h) = setup(3);
        // P2 writes page 0 under no lock (racy app, multiple-writer case).
        let t = h.write(&mut m, 2, 0, 8);
        m.clock[2] = t;
        assert_eq!(h.page_state(2, 0), PageState::ReadWrite);
        // P1 locks, writes the same page, unlocks.
        let t = h.lock(&mut m, 1, LockId(1)).expect("free");
        m.clock[1] = t;
        let t = h.write(&mut m, 1, 64, 8);
        m.clock[1] = t;
        let _ = h.unlock(&mut m, 1, LockId(1));
        // P2 acquires: its concurrent twin must be flushed, then dropped.
        let diffs_before = m.counters()[2].diffs;
        let _ = h.lock(&mut m, 2, LockId(1)).expect("free");
        assert_eq!(m.counters()[2].diffs, diffs_before + 1);
        assert_eq!(h.page_state(2, 0), PageState::Invalid);
    }
}
