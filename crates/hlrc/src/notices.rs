//! Vector timestamps, intervals and write notices — the lazy-release-
//! consistency machinery of HLRC.
//!
//! Each node's execution is divided into *intervals*, delimited by its
//! releases. An interval carries the set of pages the node wrote during it
//! (its *write notices*). A vector timestamp counts, per node, how many of
//! that node's intervals have been *seen*. On an acquire, the acquirer
//! receives exactly the write notices of the intervals it has not yet seen
//! (up to the grantor's timestamp) and invalidates those pages.

use std::collections::BTreeSet;

/// A vector timestamp: `vt[i]` = number of node `i`'s intervals covered.
pub type VectorTime = Vec<u64>;

/// The global interval/notice store.
///
/// Physically this state is distributed in a real HLRC system; modelling it
/// centrally is exact because the simulator charges the *messages* that
/// carry it (lock grants, barrier releases) explicitly.
#[derive(Debug)]
pub struct NoticeBoard {
    /// `intervals[i][k]` = pages written by node `i` in its interval `k`.
    intervals: Vec<Vec<Vec<u64>>>,
    /// `seen[p]` = vector timestamp of node `p`.
    seen: Vec<VectorTime>,
}

impl NoticeBoard {
    /// Creates the board for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        NoticeBoard {
            intervals: vec![Vec::new(); nodes],
            seen: vec![vec![0; nodes]; nodes],
        }
    }

    /// Records that `node` completed an interval having written `pages`.
    /// Empty intervals are not recorded (no release activity to convey).
    pub fn record_interval(&mut self, node: usize, pages: Vec<u64>) {
        if pages.is_empty() {
            return;
        }
        self.intervals[node].push(pages);
        self.seen[node][node] = self.intervals[node].len() as u64;
    }

    /// `node`'s current vector timestamp.
    pub fn vt(&self, node: usize) -> VectorTime {
        self.seen[node].clone()
    }

    /// The "everything so far" timestamp (used by barriers).
    pub fn global_vt(&self) -> VectorTime {
        self.intervals.iter().map(|iv| iv.len() as u64).collect()
    }

    /// Delivers to `node` the write notices of every interval between its
    /// own timestamp and `target`, advancing its timestamp.
    ///
    /// Returns `(pages, raw_count)`: the deduplicated page set to
    /// invalidate, and the raw number of notices (which is what handler
    /// list-traversal costs scale with).
    pub fn collect(&mut self, node: usize, target: &[u64]) -> (Vec<u64>, u64) {
        let mut pages = BTreeSet::new();
        let mut raw = 0u64;
        for (i, ivs) in self.intervals.iter().enumerate() {
            if i == node {
                continue; // own writes are never invalidated
            }
            let from = self.seen[node][i];
            let to = target[i].min(ivs.len() as u64);
            for k in from..to {
                let notice_pages = &ivs[k as usize];
                raw += notice_pages.len() as u64;
                pages.extend(notice_pages.iter().copied());
            }
            if to > from {
                self.seen[node][i] = to;
            }
        }
        (pages.into_iter().collect(), raw)
    }

    /// Number of intervals recorded by `node`.
    pub fn interval_count(&self, node: usize) -> usize {
        self.intervals[node].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_intervals_are_skipped() {
        let mut b = NoticeBoard::new(2);
        b.record_interval(0, vec![]);
        assert_eq!(b.interval_count(0), 0);
        assert_eq!(b.vt(0), vec![0, 0]);
    }

    #[test]
    fn own_intervals_advance_own_vt() {
        let mut b = NoticeBoard::new(3);
        b.record_interval(1, vec![4, 5]);
        b.record_interval(1, vec![6]);
        assert_eq!(b.vt(1), vec![0, 2, 0]);
        assert_eq!(b.global_vt(), vec![0, 2, 0]);
    }

    #[test]
    fn collect_delivers_unseen_only() {
        let mut b = NoticeBoard::new(2);
        b.record_interval(0, vec![1, 2]);
        b.record_interval(0, vec![2, 3]);
        let target = b.global_vt();
        let (pages, raw) = b.collect(1, &target);
        assert_eq!(pages, vec![1, 2, 3]); // deduplicated
        assert_eq!(raw, 4); // but the raw notice count is 4
                            // A second collect delivers nothing new.
        let (pages, raw) = b.collect(1, &target);
        assert!(pages.is_empty());
        assert_eq!(raw, 0);
    }

    #[test]
    fn collect_respects_partial_target() {
        let mut b = NoticeBoard::new(2);
        b.record_interval(0, vec![1]);
        b.record_interval(0, vec![2]);
        // Lock released after the first interval only.
        let (pages, _) = b.collect(1, &[1, 0]);
        assert_eq!(pages, vec![1]);
        // The second interval arrives with a later target.
        let (pages, _) = b.collect(1, &[2, 0]);
        assert_eq!(pages, vec![2]);
    }

    #[test]
    fn own_notices_never_returned() {
        let mut b = NoticeBoard::new(2);
        b.record_interval(1, vec![7]);
        let target = b.global_vt();
        let (pages, raw) = b.collect(1, &target);
        assert!(pages.is_empty());
        assert_eq!(raw, 0);
    }
}
