//! One-sided RDMA / disaggregated-memory DSM protocol — the "what if the
//! communication layer offers cheap one-sided remote reads/writes"
//! scenario layered over the paper's machine model.
//!
//! Three ideas distinguish this protocol from HLRC and SC:
//!
//! * **Home memory is served by the NI, not the host.** A remote read or
//!   write is a one-sided operation: the initiator posts a descriptor
//!   ([`ssm_net::CommParams::rdma_issue`] cycles of CPU), a small command
//!   crosses the network with *hardware* send semantics (no host overhead
//!   at either end), and the target's NI DMAs against host memory for
//!   [`ssm_net::CommParams::rdma_occupancy`] cycles. No handler runs; the
//!   home processor never notices. The protocol-layer bucket stays near
//!   zero on the data path by construction — exactly the property the
//!   layered decomposition is probing.
//! * **Remote lines are cached with explicit invalidation.** Fetched lines
//!   are held `Clean`; in the default write-back mode a write dirties the
//!   local copy and the flush (at release/barrier, per release
//!   consistency) pushes the line home one-sidedly and invalidates stale
//!   sharers NI-to-NI. [`Rdma::write_through`] builds the variant that
//!   pushes every remote write home immediately instead.
//! * **Synchronization-aware coherence (GCS-style).** Blocks written
//!   under a lock are associated with that lock. On a later acquire by
//!   another node, ownership of those blocks is handed off *with the lock
//!   grant*: the manager's grant triggers the previous owner's NI to push
//!   the protected lines (plus their write notices) straight to the new
//!   holder. The common "acquire → touch protected data → release"
//!   pattern therefore costs one round trip instead of per-line
//!   fault-driven traffic.
//!
//! Like the other protocols, this engine is a *cost model*: workload data
//! lives in host memory and is computed directly, so result verification
//! is independent of protocol bookkeeping. Under release consistency a
//! home read never blocks on a remote dirty copy — properly synchronized
//! programs order such reads after the writer's release (which flushes).

use std::collections::BTreeSet;

use ssm_engine::Cycles;
use ssm_proto::machine::Activity;
use ssm_proto::{
    BarrierId, BarrierTable, HomeMap, HomePolicy, LockId, LockTable, Machine, Protocol, WorldShape,
    PAGE_SIZE,
};

/// Bytes of a one-sided command descriptor (remote address + length +
/// doorbell) and of NI-to-NI invalidation / ack messages.
const CMD_BYTES: u64 = 16;

/// Bytes of a small control message on the (host-mediated) lock/barrier
/// paths — same framing as the other protocols.
const CTRL_BYTES: u64 = 32;

/// Header bytes on data-bearing messages.
const HDR_BYTES: u64 = 16;

/// Largest per-lock protected set carried through a deferred ownership
/// handoff. A write burst past this cap stops being associated with the
/// lock and flushes at release like any other dirty line.
const MAX_PROTECTED: usize = 64;

/// Write policy for remote lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaMode {
    /// Writes dirty the local copy; flushes happen at release points
    /// (release consistency). The default.
    WriteBack,
    /// Every remote write is pushed home one-sidedly as it happens, with
    /// eager NI-to-NI invalidation of the other sharers.
    WriteThrough,
}

/// Local state of a block at a non-home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// No valid copy.
    Invalid,
    /// Valid copy matching the home (registered in the home's sharer set).
    Clean,
    /// Locally modified copy; the home is stale until the next flush
    /// (write-back mode only).
    Dirty,
}

/// The one-sided RDMA protocol engine.
///
/// # Example
///
/// ```rust
/// use ssm_rdma::Rdma;
/// use ssm_proto::{Machine, Protocol, ProtoCosts, WorldShape};
/// use ssm_mem::MemConfig;
/// use ssm_net::CommParams;
///
/// let mut m = Machine::new(2, CommParams::achievable(),
///                          ProtoCosts::original(), MemConfig::pentium_pro_like());
/// let mut rdma = Rdma::new(64);
/// rdma.init(&m, &WorldShape { heap_bytes: 1 << 16, nlocks: 0, nbarriers: 0 });
/// // P1 reads a block homed at node 0: one one-sided fetch, no handler.
/// let t = rdma.read(&mut m, 1, 0, 8);
/// assert!(t > 0);
/// ```
#[derive(Debug)]
pub struct Rdma {
    block: u64,
    nprocs: usize,
    mode: RdmaMode,
    home_policy: HomePolicy,
    homes: HomeMap,
    /// Per-block sharer bitmask kept at the home (NI-maintained; the home
    /// processor never runs a handler for it). The home itself is not in
    /// the mask.
    sharers: Vec<u64>,
    /// `local[node][block]` — this node's copy state (a block's home node
    /// always reads its own memory directly).
    local: Vec<Vec<BlockState>>,
    /// Dirty blocks each node must eventually flush. For a home node this
    /// holds blocks whose *remote sharers* are stale and await
    /// invalidation at the next release.
    write_set: Vec<BTreeSet<u64>>,
    /// Stack of locks each node currently holds, innermost last, with the
    /// blocks written under each (the lock's *protected set*).
    held: Vec<Vec<(LockId, BTreeSet<u64>)>>,
    /// Per-lock deferred ownership: the last releaser and the blocks it
    /// associated with the lock. Advisory — intersected with the owner's
    /// live write set at grant time, so early flushes simply shrink the
    /// transfer.
    deferred: Vec<Option<(usize, BTreeSet<u64>)>>,
    locks: LockTable,
    barriers: BarrierTable,
    arrivals: Vec<Vec<(usize, Cycles)>>,
}

impl Rdma {
    /// Creates a write-back RDMA protocol with the given line (block) size
    /// in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `block` is a power of two in `[4, PAGE_SIZE]`.
    pub fn new(block: u64) -> Self {
        assert!(
            block.is_power_of_two() && (4..=PAGE_SIZE).contains(&block),
            "block must be a power of two between 4 B and the page size"
        );
        Rdma {
            block,
            nprocs: 0,
            mode: RdmaMode::WriteBack,
            home_policy: HomePolicy::RoundRobin,
            homes: HomeMap::new(HomePolicy::RoundRobin, 1, 0),
            sharers: Vec::new(),
            local: Vec::new(),
            write_set: Vec::new(),
            held: Vec::new(),
            deferred: Vec::new(),
            locks: LockTable::new(0),
            barriers: BarrierTable::new(0, 1),
            arrivals: Vec::new(),
        }
    }

    /// Creates the write-through variant at the given granularity.
    pub fn write_through(block: u64) -> Self {
        let mut r = Rdma::new(block);
        r.mode = RdmaMode::WriteThrough;
        r
    }

    /// The configured line size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block
    }

    /// The write policy in force.
    pub fn mode(&self) -> RdmaMode {
        self.mode
    }

    /// Selects the page-to-home placement policy (before `init`).
    pub fn with_homes(mut self, policy: HomePolicy) -> Self {
        self.home_policy = policy;
        self
    }

    /// Direct access to the lock table (test setup hook).
    pub fn lock_table_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Local state of `block` at `node` (inspection hook).
    pub fn block_state(&self, node: usize, block: u64) -> BlockState {
        self.local[node][block as usize]
    }

    /// Number of dirty blocks `node` has yet to flush (inspection hook).
    pub fn dirty_blocks(&self, node: usize) -> usize {
        self.write_set[node].len()
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.block
    }

    fn baddr(&self, b: u64) -> u64 {
        b * self.block
    }

    fn home_of_block(&mut self, b: u64, toucher: usize) -> usize {
        // A block's home is the home of its page, so data placement matches
        // HLRC/SC exactly and protocol comparisons see the same distribution.
        self.homes.home(b * self.block / PAGE_SIZE, toucher)
    }

    fn lock_home(&self, lock: LockId) -> usize {
        lock.0 as usize % self.nprocs
    }

    fn barrier_home(&self, barrier: BarrierId) -> usize {
        barrier.0 as usize % self.nprocs
    }

    /// One-sided fetch of block `b` into `p` (read miss / write-allocate):
    /// post a descriptor, command to the home's NI, NI serves from host
    /// memory, data returns. No handler runs anywhere. Returns the cycle
    /// the line sits in `p`'s memory.
    fn fetch(&mut self, m: &mut Machine, p: usize, h: usize, b: u64, t: Cycles) -> Cycles {
        let t_issue = m.occupy_cpu(p, t, m.comm().rdma_issue).1;
        let cmd = m.send_hardware(p, t_issue, h, CMD_BYTES);
        let served = m.rdma_serve(h, cmd);
        let data = m.send_hardware(h, served, p, self.block + HDR_BYTES);
        m.cache_invalidate(p, self.baddr(b), self.block);
        self.local[p][b as usize] = BlockState::Clean;
        self.sharers[b as usize] |= 1u64 << p;
        let c = m.counters_mut(p);
        c.remote_reads += 1;
        c.fetches += 1;
        data
    }

    /// NI-to-NI invalidation of every sharer of `b` except `except`,
    /// initiated from node `from`'s NI at `t`; hardware acks collected.
    /// No host CPU is involved at any end. Returns the all-acked time.
    fn hw_invalidate(
        &mut self,
        m: &mut Machine,
        from: usize,
        b: u64,
        t: Cycles,
        except: usize,
    ) -> Cycles {
        let sharers = self.sharers[b as usize];
        let mut all_acked = t;
        for q in 0..self.nprocs {
            if q == except || q == from || sharers & (1u64 << q) == 0 {
                continue;
            }
            let arr = m.send_hardware(from, t, q, CMD_BYTES);
            let tq = m.rdma_serve(q, arr);
            self.local[q][b as usize] = BlockState::Invalid;
            m.cache_invalidate(q, self.baddr(b), self.block);
            m.counters_mut(q).invalidations += 1;
            // An invalidated dirty copy is dead; q no longer owes a flush.
            self.write_set[q].remove(&b);
            let ack = m.send_hardware(q, tq, from, CMD_BYTES);
            all_acked = all_acked.max(m.rdma_serve(from, ack));
        }
        self.sharers[b as usize] &= 1u64 << except;
        all_acked
    }

    /// Flushes one dirty block: home writers invalidate their stale
    /// remote sharers NI-to-NI; remote writers push the line home
    /// one-sidedly, then the home's NI invalidates the other sharers.
    /// Returns `(local_done, all_done)`.
    fn flush_block(&mut self, m: &mut Machine, p: usize, b: u64, t: Cycles) -> (Cycles, Cycles) {
        let h = self.home_of_block(b, p);
        if p == h {
            let done = self.hw_invalidate(m, p, b, t, p);
            return (t, done);
        }
        let t_issue = m.occupy_cpu(p, t, m.comm().rdma_issue).1;
        let arr = m.send_hardware(p, t_issue, h, self.block + HDR_BYTES);
        let served = m.rdma_serve(h, arr);
        let done = self.hw_invalidate(m, h, b, served, p);
        self.local[p][b as usize] = BlockState::Clean;
        self.sharers[b as usize] |= 1u64 << p;
        m.counters_mut(p).remote_writes += 1;
        (t_issue, done)
    }

    /// Flushes every dirty block of `p` (release-consistency release /
    /// barrier). Returns when all flushes are applied and acknowledged.
    fn flush_all(&mut self, m: &mut Machine, p: usize, t: Cycles) -> Cycles {
        let dirty: Vec<u64> = std::mem::take(&mut self.write_set[p]).into_iter().collect();
        let mut local = t;
        let mut done = t;
        for b in dirty {
            let (l, d) = self.flush_block(m, p, b, local);
            local = l;
            done = done.max(d);
        }
        local.max(done)
    }

    /// Records a write by `p` to block `b`: remembers the flush
    /// obligation and associates the block with the innermost lock `p`
    /// holds (the GCS protected set), unless that set is already at the
    /// [`MAX_PROTECTED`] cap.
    fn note_write(&mut self, p: usize, b: u64) {
        self.write_set[p].insert(b);
        if let Some((_, protected)) = self.held[p].last_mut() {
            if protected.len() < MAX_PROTECTED {
                protected.insert(b);
            }
        }
    }

    /// A lock grant from the manager to `w`, with GCS ownership handoff:
    /// if the previous releaser still holds lines it wrote under this
    /// lock, the manager's grant triggers the releaser's NI to push them
    /// (plus write notices) straight to `w`. Returns `w`'s completion.
    fn grant(&mut self, m: &mut Machine, lock: LockId, w: usize, t_mgr: Cycles) -> Cycles {
        let mgr = self.lock_home(lock);
        let t_ctrl = if mgr == w {
            t_mgr
        } else {
            let (_, arr) = m.send_from_handler(mgr, t_mgr, w, CTRL_BYTES);
            m.handle_request(w, arr, 0)
        };
        let Some((owner, blocks)) = self.deferred[lock.0 as usize].clone() else {
            return t_ctrl;
        };
        if owner == w {
            return t_ctrl; // reacquire: the data is already local
        }
        // Only lines the owner still holds dirty transfer; anything
        // flushed (or invalidated) since the release dropped out.
        let transfer: Vec<u64> = blocks
            .iter()
            .copied()
            .filter(|&b| {
                self.write_set[owner].contains(&b)
                    && self.local[owner][b as usize] == BlockState::Dirty
            })
            .collect();
        if transfer.is_empty() {
            self.deferred[lock.0 as usize] = None;
            return t_ctrl;
        }
        // Manager → owner: one command wakes the owner's NI...
        let t_o = if mgr == owner {
            // The manager IS the previous owner: no wire hop, the local NI
            // just picks up the push.
            m.rdma_serve(owner, t_mgr)
        } else {
            let cmd = m.send_hardware(mgr, t_mgr, owner, CMD_BYTES);
            m.rdma_serve(owner, cmd)
        };
        // ...which pushes the whole protected set to `w` in one message.
        let n = transfer.len() as u64;
        let data = m.send_hardware(owner, t_o, w, n * (self.block + HDR_BYTES));
        // `w` installs the lines and their write notices (per-list-element
        // handler cost — the piggybacked coherence information).
        let mut installed = m.handle_request(w, data, n);
        let mut moved = BTreeSet::new();
        for b in transfer {
            self.write_set[owner].remove(&b);
            self.local[owner][b as usize] = BlockState::Invalid;
            m.cache_invalidate(owner, self.baddr(b), self.block);
            self.sharers[b as usize] &= !(1u64 << owner);
            let h = self.home_of_block(b, w);
            if h == w {
                // The new holder is the line's home: installing the data
                // *is* the flush. Stale remote sharers get invalidated now.
                installed = installed.max(self.hw_invalidate(m, w, b, installed, w));
                if self.sharers[b as usize] != 0 {
                    self.write_set[w].insert(b);
                }
            } else {
                self.local[w][b as usize] = BlockState::Dirty;
                self.sharers[b as usize] |= 1u64 << w;
                self.write_set[w].insert(b);
                moved.insert(b);
            }
        }
        m.counters_mut(w).write_notices += n;
        // The transferred lines ride with the lock for the next handoff.
        self.deferred[lock.0 as usize] = if moved.is_empty() {
            None
        } else {
            Some((w, moved))
        };
        t_ctrl.max(installed)
    }
}

impl Protocol for Rdma {
    fn name(&self) -> &'static str {
        match self.mode {
            RdmaMode::WriteBack => "RDMA",
            RdmaMode::WriteThrough => "RDMA-WT",
        }
    }

    fn init(&mut self, m: &Machine, shape: &WorldShape) {
        self.nprocs = m.nprocs();
        assert!(self.nprocs <= 64, "sharer bitmask holds at most 64 nodes");
        let nblocks = shape.heap_bytes.div_ceil(self.block).max(1) as usize;
        self.homes = HomeMap::new(
            self.home_policy,
            self.nprocs,
            shape.heap_bytes.div_ceil(PAGE_SIZE).max(1),
        );
        self.sharers = vec![0; nblocks];
        self.local = vec![vec![BlockState::Invalid; nblocks]; self.nprocs];
        self.write_set = vec![BTreeSet::new(); self.nprocs];
        self.held = vec![Vec::new(); self.nprocs];
        self.deferred = vec![None; shape.nlocks];
        self.locks = LockTable::new(shape.nlocks);
        self.barriers = BarrierTable::new(shape.nbarriers, self.nprocs);
        self.arrivals = vec![Vec::new(); shape.nbarriers];
    }

    fn read(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        let mut all_local = true;
        for b in first..=last {
            let h = self.home_of_block(b, p);
            // Home reads are always local: under release consistency a
            // correctly synchronized program orders them after the remote
            // writer's release, which flushed the line home.
            if p == h || self.local[p][b as usize] != BlockState::Invalid {
                continue;
            }
            all_local = false;
            t = self.fetch(m, p, h, b, t);
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, false)
    }

    fn write(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        let mut all_local = true;
        for b in first..=last {
            let h = self.home_of_block(b, p);
            match self.mode {
                RdmaMode::WriteBack => {
                    if p == h {
                        // Home memory is written in place; remote sharers
                        // go stale and are invalidated at the release.
                        if self.sharers[b as usize] != 0 {
                            self.note_write(p, b);
                        }
                        continue;
                    }
                    if self.local[p][b as usize] == BlockState::Invalid {
                        all_local = false;
                        t = self.fetch(m, p, h, b, t); // write-allocate
                    }
                    self.local[p][b as usize] = BlockState::Dirty;
                    self.note_write(p, b);
                }
                RdmaMode::WriteThrough => {
                    if p == h {
                        if self.sharers[b as usize] != 0 {
                            all_local = false;
                            t = self.hw_invalidate(m, p, b, t, p);
                        }
                        continue;
                    }
                    // Push the written bytes home one-sidedly (no
                    // allocate); the home's NI invalidates other sharers.
                    all_local = false;
                    let t_issue = m.occupy_cpu(p, t, m.comm().rdma_issue).1;
                    let len = bytes.min(self.block);
                    let arr = m.send_hardware(p, t_issue, h, len + HDR_BYTES);
                    let served = m.rdma_serve(h, arr);
                    t = self.hw_invalidate(m, h, b, served, p);
                    m.counters_mut(p).remote_writes += 1;
                }
            }
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, true)
    }

    fn lock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Option<Cycles> {
        m.counters_mut(p).lock_acquires += 1;
        let now = m.clock[p];
        let mgr = self.lock_home(lock);
        let t_mgr = if mgr == p {
            m.proto_work(p, now, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        if self.locks.acquire(lock, p) {
            self.held[p].push((lock, BTreeSet::new()));
            Some(self.grant(m, lock, p, t_mgr))
        } else {
            None
        }
    }

    fn unlock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Cycles {
        let now = m.clock[p];
        // Pop this lock's protected set off p's held stack.
        let protected = match self.held[p].iter().rposition(|(l, _)| *l == lock) {
            Some(i) => self.held[p].remove(i).1,
            None => BTreeSet::new(),
        };
        let now = if self.mode == RdmaMode::WriteBack {
            // Lines written under this lock defer their flush: ownership
            // rides with the lock to the next acquirer instead (unless
            // the set overflowed the handoff cap).
            let deferrable: BTreeSet<u64> = if protected.len() <= MAX_PROTECTED {
                protected
                    .iter()
                    .copied()
                    .filter(|b| self.write_set[p].contains(b))
                    .collect()
            } else {
                BTreeSet::new()
            };
            // Lines protected by locks p still holds defer to *their*
            // releases; everything else dirty flushes now.
            let still_protected: BTreeSet<u64> = self.held[p]
                .iter()
                .flat_map(|(_, s)| s.iter().copied())
                .collect();
            let flush_now: Vec<u64> = self.write_set[p]
                .iter()
                .copied()
                .filter(|b| !deferrable.contains(b) && !still_protected.contains(b))
                .collect();
            let mut local = now;
            let mut done = now;
            for b in flush_now {
                self.write_set[p].remove(&b);
                let (l, d) = self.flush_block(m, p, b, local);
                local = l;
                done = done.max(d);
            }
            if !deferrable.is_empty() {
                // Merge with an earlier deferral of ours that was never
                // claimed (reacquire-and-release of our own lock).
                let mut blocks = deferrable;
                if let Some((o, prior)) = self.deferred[lock.0 as usize].take() {
                    if o == p {
                        blocks.extend(prior);
                    }
                }
                self.deferred[lock.0 as usize] = Some((p, blocks));
            }
            local.max(done)
        } else {
            now
        };
        let mgr = self.lock_home(lock);
        let (t_local, t_mgr) = if mgr == p {
            let t = m.proto_work(p, now, m.costs().handler_base, Activity::Handler);
            (t, t)
        } else {
            let (local, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            (local, m.handle_request(mgr, arr, 0))
        };
        if let Some(next) = self.locks.release(lock, p) {
            self.held[next].push((lock, BTreeSet::new()));
            let granted = self.grant(m, lock, next, t_mgr);
            m.wake(next, granted);
        }
        t_local
    }

    fn barrier(&mut self, m: &mut Machine, p: usize, barrier: BarrierId) -> Option<Cycles> {
        let now = m.clock[p];
        // A barrier is a release of everything: protected sets included.
        let now = if self.mode == RdmaMode::WriteBack {
            for (_, s) in self.held[p].iter_mut() {
                s.clear();
            }
            self.flush_all(m, p, now)
        } else {
            now
        };
        let mgr = self.barrier_home(barrier);
        let t_arr = if mgr == p {
            m.proto_work(p, now, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        self.arrivals[barrier.0 as usize].push((p, t_arr));
        self.barriers.arrive(barrier, p)?;
        let episode = std::mem::take(&mut self.arrivals[barrier.0 as usize]);
        let mut t_mgr = episode.iter().map(|&(_, t)| t).max().unwrap_or(t_arr);
        let mut my_completion = t_mgr;
        for &(q, _) in &episode {
            let t_q = if q == mgr {
                t_mgr
            } else {
                let (local, arr) = m.send_from_handler(mgr, t_mgr, q, CTRL_BYTES);
                t_mgr = local;
                m.handle_request(q, arr, 0)
            };
            if q == p {
                my_completion = t_q;
            } else {
                m.wake(q, t_q);
            }
        }
        m.counters_mut(p).barriers += 1;
        Some(my_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_mem::MemConfig;
    use ssm_net::CommParams;
    use ssm_proto::ProtoCosts;

    fn setup(nprocs: usize, block: u64) -> (Machine, Rdma) {
        let m = Machine::new(
            nprocs,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        let mut r = Rdma::new(block);
        r.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 2,
                nbarriers: 1,
            },
        );
        (m, r)
    }

    #[test]
    fn home_access_is_local_and_free_of_messages() {
        let (mut m, mut r) = setup(4, 64);
        let t = r.read(&mut m, 0, 0, 8);
        m.clock[0] = t;
        let t2 = r.write(&mut m, 0, 0, 8);
        assert_eq!(m.counters()[0].messages, 0);
        assert_eq!(m.counters()[0].local_accesses, 2);
        assert!(t2 >= t);
    }

    #[test]
    fn remote_read_is_one_sided() {
        let (mut m, mut r) = setup(2, 64);
        let b = PAGE_SIZE / 64; // first block of page 1, home = node 1
        let t = r.read(&mut m, 0, PAGE_SIZE, 8);
        assert!(t > 0);
        assert_eq!(r.block_state(0, b), BlockState::Clean);
        assert_eq!(m.counters()[0].fetches, 1);
        // The home processor never ran: no protocol time on node 1.
        assert_eq!(m.breakdowns()[1].get(ssm_stats::Bucket::Protocol), 0);
        // And the initiator spent no *protocol-bucket* time either — the
        // issue cost occupies the CPU without handler work.
        assert_eq!(m.breakdowns()[0].get(ssm_stats::Bucket::Protocol), 0);
        // One command out, one line back.
        assert_eq!(m.counters()[0].messages, 1);
        assert_eq!(m.counters()[1].messages, 1);
        // Warm read: free.
        m.clock[0] = t;
        let t2 = r.read(&mut m, 0, PAGE_SIZE + 8, 8);
        assert_eq!(m.counters()[0].fetches, 1);
        assert!(t2 - t < 100);
    }

    #[test]
    fn one_sided_fetch_is_cheaper_than_a_handler_round_trip() {
        // The whole point of the protocol: compare against SC-style
        // host-mediated service costs. achievable: host_overhead 600 +
        // msg_handling 200 + handler costs vs rdma_issue 150 +
        // rdma_occupancy 250.
        let (mut m, mut r) = setup(2, 64);
        let t = r.read(&mut m, 0, PAGE_SIZE, 8);
        // Issue(150) + cmd(16B: 32+1000+20+32) + serve(250) + data(80B:
        // 160+1000+20+160) is well under 4000 even with the double NI
        // crossing; an SC read miss on the same machine exceeds it.
        assert!(t < 4000, "one-sided fetch took {t}");
    }

    #[test]
    fn write_back_dirties_locally_and_flushes_at_barrier() {
        let (mut m, mut r) = setup(2, 64);
        let b = PAGE_SIZE / 64;
        let t = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        assert_eq!(r.block_state(0, b), BlockState::Dirty);
        assert_eq!(r.dirty_blocks(0), 1);
        let writes_before_flush = m.counters()[0].remote_writes;
        assert_eq!(writes_before_flush, 0, "write-back defers the push");
        // Warm rewrite: entirely local.
        let t2 = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t2;
        assert_eq!(m.counters()[0].local_accesses, 1);
        // Barrier flushes the line home.
        assert_eq!(r.barrier(&mut m, 1, BarrierId(0)), None);
        assert!(r.barrier(&mut m, 0, BarrierId(0)).is_some());
        assert_eq!(r.dirty_blocks(0), 0);
        assert_eq!(r.block_state(0, b), BlockState::Clean);
        assert_eq!(m.counters()[0].remote_writes, 1);
    }

    #[test]
    fn flush_invalidates_stale_sharers() {
        let (mut m, mut r) = setup(3, 64);
        let b = PAGE_SIZE / 64; // home = node 1
        let t0 = r.read(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t0;
        let t2 = r.read(&mut m, 2, PAGE_SIZE, 8);
        m.clock[2] = t2;
        // Node 0 writes (silent local upgrade), then releases via barrier.
        let tw = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = tw;
        assert_eq!(r.block_state(2, b), BlockState::Clean, "lazy: not yet");
        assert_eq!(r.barrier(&mut m, 1, BarrierId(0)), None);
        m.clock[2] = t2 + 1;
        assert_eq!(r.barrier(&mut m, 2, BarrierId(0)), None);
        assert!(r.barrier(&mut m, 0, BarrierId(0)).is_some());
        assert_eq!(r.block_state(2, b), BlockState::Invalid);
        assert_eq!(m.counters()[2].invalidations, 1);
    }

    #[test]
    fn write_through_pushes_immediately() {
        let m = Machine::new(
            2,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        let mut r = Rdma::write_through(64);
        assert_eq!(r.mode(), RdmaMode::WriteThrough);
        assert_eq!(r.name(), "RDMA-WT");
        let mut m = m;
        r.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 0,
                nbarriers: 0,
            },
        );
        let t = r.write(&mut m, 0, PAGE_SIZE, 8);
        assert!(t > 0);
        assert_eq!(m.counters()[0].remote_writes, 1);
        // No flush obligation accrues.
        assert_eq!(r.dirty_blocks(0), 0);
    }

    #[test]
    fn lock_handoff_carries_protected_lines() {
        let (mut m, mut r) = setup(2, 64);
        let b = PAGE_SIZE / 64; // home = node 1
        let l = LockId(0); // manager = node 0
                           // Node 0 acquires, writes a remote line, releases.
        let t = r.lock(&mut m, 0, l).expect("free");
        m.clock[0] = t;
        let t = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        assert_eq!(r.block_state(0, b), BlockState::Dirty);
        let t = r.unlock(&mut m, 0, l);
        m.clock[0] = t;
        // The line did NOT flush at release: ownership rides with the lock.
        assert_eq!(r.block_state(0, b), BlockState::Dirty);
        assert_eq!(m.counters()[0].remote_writes, 0);
        // Node 1 acquires: the grant hands the line over directly.
        let t1 = r.lock(&mut m, 1, l).expect("free after release");
        assert!(t1 > 0);
        assert_eq!(r.block_state(0, b), BlockState::Invalid);
        assert_eq!(m.counters()[1].write_notices, 1);
        // Node 1 is the line's home, so the handoff doubled as the flush.
        assert_eq!(r.dirty_blocks(1), 0);
        // Reading the protected data now costs nothing extra.
        m.clock[1] = t1;
        let t2 = r.read(&mut m, 1, PAGE_SIZE, 8);
        assert_eq!(m.counters()[1].fetches, 0);
        assert!(t2 >= t1);
    }

    #[test]
    fn handoff_to_a_non_home_node_keeps_the_line_dirty() {
        let (mut m, mut r) = setup(4, 64);
        let b = 2 * PAGE_SIZE / 64; // page 2, home = node 2
        let l = LockId(1); // manager = node 1
        let t = r.lock(&mut m, 0, l).expect("free");
        m.clock[0] = t;
        let t = r.write(&mut m, 0, 2 * PAGE_SIZE, 8);
        m.clock[0] = t;
        let _ = r.unlock(&mut m, 0, l);
        // Node 3 (not the home) acquires: it inherits the dirty line and
        // the flush obligation.
        let _ = r.lock(&mut m, 3, l).expect("free after release");
        assert_eq!(r.block_state(3, b), BlockState::Dirty);
        assert_eq!(r.block_state(0, b), BlockState::Invalid);
        assert_eq!(r.dirty_blocks(3), 1);
        assert_eq!(m.counters()[3].write_notices, 1);
    }

    #[test]
    fn unprotected_dirty_lines_flush_at_release() {
        let (mut m, mut r) = setup(2, 64);
        // Write outside any lock, then acquire/release a lock touching
        // nothing: the unprotected line flushes at the release.
        let t = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        assert_eq!(r.dirty_blocks(0), 1);
        let t = r.lock(&mut m, 0, LockId(0)).expect("free");
        m.clock[0] = t;
        let _ = r.unlock(&mut m, 0, LockId(0));
        assert_eq!(r.dirty_blocks(0), 0);
        assert_eq!(m.counters()[0].remote_writes, 1);
    }

    #[test]
    fn reacquire_of_own_lock_transfers_nothing() {
        let (mut m, mut r) = setup(2, 64);
        let l = LockId(0);
        let t = r.lock(&mut m, 0, l).expect("free");
        m.clock[0] = t;
        let t = r.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        let t = r.unlock(&mut m, 0, l);
        m.clock[0] = t;
        let notices = m.counters()[0].write_notices;
        let _ = r.lock(&mut m, 0, l).expect("free");
        assert_eq!(m.counters()[0].write_notices, notices);
        assert_eq!(r.block_state(0, PAGE_SIZE / 64), BlockState::Dirty);
    }

    #[test]
    fn rdma_locks_and_barriers_round_trip() {
        let (mut m, mut r) = setup(2, 64);
        let t = r.lock(&mut m, 0, LockId(0)).expect("free");
        m.clock[0] = t;
        assert_eq!(r.lock(&mut m, 1, LockId(0)), None);
        m.clock[0] = t + 1000;
        let _ = r.unlock(&mut m, 0, LockId(0));
        let w = m.take_wakeups();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 1);
        assert_eq!(r.barrier(&mut m, 1, BarrierId(0)), None);
        assert!(r.barrier(&mut m, 0, BarrierId(0)).is_some());
        assert_eq!(m.take_wakeups().len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        let _ = Rdma::new(48);
    }
}
