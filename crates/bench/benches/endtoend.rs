//! End-to-end benchmarks: full simulated runs of small instances of
//! representative applications under each protocol, so `cargo bench`
//! exercises the whole stack (engine, caches, network, protocol, driver,
//! application threads). Uses the std-only timing loop from
//! `ssm_bench::bench`.
//!
//! Run with `cargo bench -p ssm-bench --bench endtoend`.

use std::hint::black_box;

use ssm_apps::fft::Fft;
use ssm_apps::radix::Radix;
use ssm_apps::water_nsq::WaterNsq;
use ssm_bench::bench;
use ssm_core::{Protocol, SimBuilder};

fn main() {
    for proto in [Protocol::Ideal, Protocol::Hlrc, Protocol::Sc] {
        bench(&format!("endtoend/fft_256_4p/{}", proto.label()), || {
            let w = Fft::new(256);
            let r = SimBuilder::new(proto)
                .procs(4)
                .sc_block(4096)
                .run(&w)
                .expect_verified();
            black_box(r.total_cycles)
        });
        bench(&format!("endtoend/radix_2048_4p/{}", proto.label()), || {
            let w = Radix::original(2048);
            let r = SimBuilder::new(proto).procs(4).run(&w).expect_verified();
            black_box(r.total_cycles)
        });
        bench(&format!("endtoend/water_32_4p/{}", proto.label()), || {
            let w = WaterNsq::new(32, 1);
            let r = SimBuilder::new(proto).procs(4).run(&w).expect_verified();
            black_box(r.total_cycles)
        });
    }
}
