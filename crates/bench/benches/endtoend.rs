//! End-to-end Criterion benchmarks: full simulated runs of small instances
//! of representative applications under each protocol, so `cargo bench`
//! exercises the whole stack (engine, caches, network, protocol, driver,
//! application threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssm_apps::fft::Fft;
use ssm_apps::radix::Radix;
use ssm_apps::water_nsq::WaterNsq;
use ssm_core::{Protocol, SimBuilder};

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    for proto in [Protocol::Ideal, Protocol::Hlrc, Protocol::Sc] {
        g.bench_with_input(
            BenchmarkId::new("fft_256_4p", proto.label()),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let w = Fft::new(256);
                    let r = SimBuilder::new(proto)
                        .procs(4)
                        .sc_block(4096)
                        .run(&w)
                        .expect_verified();
                    black_box(r.total_cycles)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("radix_2048_4p", proto.label()),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let w = Radix::original(2048);
                    let r = SimBuilder::new(proto)
                        .procs(4)
                        .run(&w)
                        .expect_verified();
                    black_box(r.total_cycles)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("water_32_4p", proto.label()),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let w = WaterNsq::new(32, 1);
                    let r = SimBuilder::new(proto)
                        .procs(4)
                        .run(&w)
                        .expect_verified();
                    black_box(r.total_cycles)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
