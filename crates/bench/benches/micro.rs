//! Micro-benchmarks of the simulator's hot paths: the event queue, the
//! cache model, the network model, and the two protocols' fundamental
//! transactions. Uses the std-only timing loop from `ssm_bench::bench`
//! (the hermetic build carries no benchmark-harness dependency).
//!
//! Run with `cargo bench -p ssm-bench --bench micro`.

use std::hint::black_box;

use ssm_bench::bench;
use ssm_engine::EventQueue;
use ssm_hlrc::Hlrc;
use ssm_mem::{Hierarchy, MemConfig};
use ssm_net::{CommParams, Network};
use ssm_proto::{Machine, ProtoCosts, Protocol, WorldShape, PAGE_SIZE};
use ssm_sc::Sc;

fn machine(n: usize) -> Machine {
    Machine::new(
        n,
        CommParams::achievable(),
        ProtoCosts::original(),
        MemConfig::pentium_pro_like(),
    )
}

fn shape() -> WorldShape {
    WorldShape {
        heap_bytes: 1 << 22,
        nlocks: 1,
        nbarriers: 1,
    }
}

fn main() {
    bench("event_queue/push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push((i * 7919) % 1000, i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        black_box(sum)
    });

    bench("cache/stream_64kb", || {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        black_box(h.stream_range(0, 0, 64 * 1024, false))
    });
    bench("cache/touch_4kb", || {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        black_box(h.touch_range(0, 0, 4096, true))
    });

    {
        let mut net = Network::new(16, CommParams::achievable());
        let mut t = 0;
        bench("network/deliver_page", || {
            t += 1;
            black_box(net.deliver(t, 0, 1, PAGE_SIZE))
        });
    }

    bench("hlrc/page_fetch", || {
        let mut m = machine(4);
        let mut p = Hlrc::new();
        p.init(&m, &shape());
        black_box(p.read(&mut m, 1, 0, 8))
    });
    bench("hlrc/twin_diff_cycle", || {
        let mut m = machine(4);
        let mut p = Hlrc::new();
        p.init(&m, &shape());
        // Write a remote page, then flush at a release.
        let t = p.write(&mut m, 1, 0, 256);
        m.clock[1] = t;
        assert!(p.lock_table_mut().acquire(ssm_proto::LockId(0), 1));
        black_box(p.unlock(&mut m, 1, ssm_proto::LockId(0)))
    });

    bench("sc/read_miss_64b", || {
        let mut m = machine(4);
        let mut p = Sc::new(64);
        p.init(&m, &shape());
        black_box(p.read(&mut m, 1, 0, 8))
    });
    bench("sc/write_invalidate_3_sharers", || {
        let mut m = machine(4);
        let mut p = Sc::new(64);
        p.init(&m, &shape());
        for q in 1..4 {
            let t = p.read(&mut m, q, 0, 8);
            m.clock[q] = t;
        }
        black_box(p.write(&mut m, 1, 0, 8))
    });
}
