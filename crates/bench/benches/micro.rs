//! Criterion micro-benchmarks of the simulator's hot paths: the event
//! queue, the cache model, the network model, and the two protocols'
//! fundamental transactions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ssm_engine::EventQueue;
use ssm_hlrc::Hlrc;
use ssm_mem::{Hierarchy, MemConfig};
use ssm_net::{CommParams, Network};
use ssm_proto::{Machine, ProtoCosts, Protocol, WorldShape, PAGE_SIZE};
use ssm_sc::Sc;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push((i * 7919) % 1000, i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/stream_64kb", |b| {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        b.iter(|| black_box(h.stream_range(0, 0, 64 * 1024, false)))
    });
    c.bench_function("cache/touch_4kb", |b| {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        b.iter(|| black_box(h.touch_range(0, 0, 4096, true)))
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/deliver_page", |b| {
        let mut net = Network::new(16, CommParams::achievable());
        let mut t = 0;
        b.iter(|| {
            t += 1;
            black_box(net.deliver(t, 0, 1, PAGE_SIZE))
        })
    });
}

fn machine(n: usize) -> Machine {
    Machine::new(
        n,
        CommParams::achievable(),
        ProtoCosts::original(),
        MemConfig::pentium_pro_like(),
    )
}

fn bench_hlrc(c: &mut Criterion) {
    let shape = WorldShape {
        heap_bytes: 1 << 22,
        nlocks: 1,
        nbarriers: 1,
    };
    c.bench_function("hlrc/page_fetch", |b| {
        b.iter_with_setup(
            || {
                let m = machine(4);
                let mut p = Hlrc::new();
                p.init(&m, &shape);
                (m, p)
            },
            |(mut m, mut p)| black_box(p.read(&mut m, 1, 0, 8)),
        )
    });
    c.bench_function("hlrc/twin_diff_cycle", |b| {
        b.iter_with_setup(
            || {
                let m = machine(4);
                let mut p = Hlrc::new();
                p.init(&m, &shape);
                (m, p)
            },
            |(mut m, mut p)| {
                // Write a remote page, then flush at a release.
                let t = p.write(&mut m, 1, 0, 256);
                m.clock[1] = t;
                assert!(p.lock_table_mut().acquire(ssm_proto::LockId(0), 1));
                black_box(p.unlock(&mut m, 1, ssm_proto::LockId(0)))
            },
        )
    });
}

fn bench_sc(c: &mut Criterion) {
    let shape = WorldShape {
        heap_bytes: 1 << 22,
        nlocks: 1,
        nbarriers: 1,
    };
    c.bench_function("sc/read_miss_64b", |b| {
        b.iter_with_setup(
            || {
                let m = machine(4);
                let mut p = Sc::new(64);
                p.init(&m, &shape);
                (m, p)
            },
            |(mut m, mut p)| black_box(p.read(&mut m, 1, 0, 8)),
        )
    });
    c.bench_function("sc/write_invalidate_3_sharers", |b| {
        b.iter_with_setup(
            || {
                let mut m = machine(4);
                let mut p = Sc::new(64);
                p.init(&m, &shape);
                for q in 1..4 {
                    let t = p.read(&mut m, q, 0, 8);
                    m.clock[q] = t;
                }
                (m, p)
            },
            |(mut m, mut p)| black_box(p.write(&mut m, 1, 0, 8)),
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache,
    bench_network,
    bench_hlrc,
    bench_sc
);
criterion_main!(benches);
