//! Ablations for design choices called out in DESIGN.md:
//!
//! * SC coherence granularity per application (the paper: FFT at fine
//!   grain is substantially worse; irregular apps prefer fine grain);
//! * polling vs interrupt-style message handling (the paper: when
//!   interrupts are used their cost dominates the communication
//!   architecture);
//! * diffs vs AURC automatic update (the paper's §4.3 pointer: "hardware
//!   support for automatic write propagation can eliminate diffs");
//! * round-robin vs first-touch page placement.

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::{LayerConfig, Protocol};
use ssm_net::CommParams;
use ssm_proto::HomePolicy;
use ssm_stats::Table;
use ssm_sweep::prelude::*;

const GRANS: [u64; 4] = [64, 256, 1024, 4096];
const HANDLING: [u64; 2] = [200, 3000];
const PROTOS: [Protocol; 2] = [Protocol::Hlrc, Protocol::Aurc];
const POLICIES: [HomePolicy; 2] = [HomePolicy::RoundRobin, HomePolicy::FirstTouch];

fn handling_comm(cycles: u64) -> CommParams {
    let mut comm = CommParams::achievable();
    comm.msg_handling = cycles;
    comm
}

fn main() {
    let cli = SweepCli::parse();
    let apps: Vec<_> = cli
        .apps()
        .into_iter()
        .filter(|a| {
            ["FFT", "Ocean-Contiguous", "Barnes-original", "Radix"].contains(&a.name)
                || !cli.filter.is_empty()
        })
        .collect();
    let base =
        |app: &str, protocol| Cell::new(app, protocol, LayerConfig::base(), cli.procs, cli.scale);

    let mut cells = Vec::new();
    for spec in &apps {
        cells.push(Cell::baseline(spec.name, cli.scale));
        for g in GRANS {
            cells.push(base(spec.name, Protocol::Sc).with_sc_block(g));
        }
        for handling in HANDLING {
            cells.push(base(spec.name, Protocol::Hlrc).with_comm_params(handling_comm(handling)));
        }
        for proto in PROTOS {
            cells.push(base(spec.name, proto));
        }
        for policy in POLICIES {
            cells.push(base(spec.name, Protocol::Hlrc).with_homes(policy));
        }
    }
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    println!("Ablation 1: SC granularity, {}.\n", cli.describe());
    let mut t = Table::new(vec!["Application", "64B", "256B", "1KB", "4KB"]);
    for spec in &apps {
        let mut row = vec![spec.name.to_string()];
        for g in GRANS {
            row.push(fmt_speedup_opt(
                run.speedup(&base(spec.name, Protocol::Sc).with_sc_block(g)),
            ));
        }
        t.row(row);
    }
    println!("{t}");

    println!("\nAblation 2: polling vs interrupt-cost message handling (HLRC, AO).\n");
    let mut t = Table::new(vec![
        "Application",
        "polling (200cy)",
        "interrupts (~3000cy)",
    ]);
    for spec in &apps {
        let mut row = vec![spec.name.to_string()];
        for handling in HANDLING {
            row.push(fmt_speedup_opt(run.speedup(
                &base(spec.name, Protocol::Hlrc).with_comm_params(handling_comm(handling)),
            )));
        }
        t.row(row);
    }
    println!("{t}");

    println!("\nAblation 3: twins/diffs (HLRC) vs automatic update (AURC), AO.\n");
    let mut t = Table::new(vec!["Application", "HLRC", "AURC"]);
    for spec in &apps {
        let mut row = vec![spec.name.to_string()];
        for proto in PROTOS {
            row.push(fmt_speedup_opt(run.speedup(&base(spec.name, proto))));
        }
        t.row(row);
    }
    println!("{t}");

    println!("\nAblation 4: round-robin vs first-touch page placement (HLRC, AO).\n");
    let mut t = Table::new(vec!["Application", "round-robin", "first-touch"]);
    for spec in &apps {
        let mut row = vec![spec.name.to_string()];
        for policy in POLICIES {
            row.push(fmt_speedup_opt(
                run.speedup(&base(spec.name, Protocol::Hlrc).with_homes(policy)),
            ));
        }
        t.row(row);
    }
    println!("{t}");
}
