//! Ablations for design choices called out in DESIGN.md:
//!
//! * SC coherence granularity per application (the paper: FFT at fine
//!   grain is substantially worse; irregular apps prefer fine grain);
//! * polling vs interrupt-style message handling (the paper: when
//!   interrupts are used their cost dominates the communication
//!   architecture);
//! * diffs vs AURC automatic update (the paper's §4.3 pointer: "hardware
//!   support for automatic write propagation can eliminate diffs");
//! * round-robin vs first-touch page placement.

use ssm_bench::{fmt_speedup, note, Harness};
use ssm_core::{Protocol, SimBuilder};
use ssm_net::CommParams;
use ssm_stats::Table;

use ssm_proto::HomePolicy;

fn main() {
    let mut h = Harness::from_args();
    println!("Ablation 1: SC granularity, {} processors, scale {:?}.\n", h.procs, h.scale);
    let grans = [64u64, 256, 1024, 4096];
    let mut t = Table::new(vec!["Application", "64B", "256B", "1KB", "4KB"]);
    let apps: Vec<_> = h
        .apps()
        .into_iter()
        .filter(|a| ["FFT", "Ocean-Contiguous", "Barnes-original", "Radix"].contains(&a.name) || !h.filter.is_empty())
        .collect();
    for spec in &apps {
        let base = h.baseline(spec);
        let mut cells = vec![spec.name.to_string()];
        for g in grans {
            note(&format!("{} SC @ {g}B", spec.name));
            let w = spec.build(h.scale);
            let r = SimBuilder::new(Protocol::Sc)
                .procs(h.procs)
                .sc_block(g)
                .run(w.as_ref())
                .expect_verified();
            cells.push(fmt_speedup(r.speedup(base)));
        }
        t.row(cells);
    }
    println!("{t}");

    println!("\nAblation 2: polling vs interrupt-cost message handling (HLRC, AO).\n");
    let mut t = Table::new(vec!["Application", "polling (200cy)", "interrupts (~3000cy)"]);
    for spec in &apps {
        let base = h.baseline(spec);
        let mut cells = vec![spec.name.to_string()];
        for handling in [200u64, 3000] {
            note(&format!("{} handling={handling}", spec.name));
            let mut comm = CommParams::achievable();
            comm.msg_handling = handling;
            let w = spec.build(h.scale);
            let r = SimBuilder::new(Protocol::Hlrc)
                .procs(h.procs)
                .comm(comm)
                .run(w.as_ref())
                .expect_verified();
            cells.push(fmt_speedup(r.speedup(base)));
        }
        t.row(cells);
    }
    println!("{t}");

    println!("\nAblation 3: twins/diffs (HLRC) vs automatic update (AURC), AO.\n");
    let mut t = Table::new(vec!["Application", "HLRC", "AURC"]);
    for spec in &apps {
        let base = h.baseline(spec);
        let mut cells = vec![spec.name.to_string()];
        for proto in [Protocol::Hlrc, Protocol::Aurc] {
            note(&format!("{} {}", spec.name, proto.label()));
            let w = spec.build(h.scale);
            let r = SimBuilder::new(proto)
                .procs(h.procs)
                .run(w.as_ref())
                .expect_verified();
            cells.push(fmt_speedup(r.speedup(base)));
        }
        t.row(cells);
    }
    println!("{t}");

    println!("\nAblation 4: round-robin vs first-touch page placement (HLRC, AO).\n");
    let mut t = Table::new(vec!["Application", "round-robin", "first-touch"]);
    for spec in &apps {
        let base = h.baseline(spec);
        let mut cells = vec![spec.name.to_string()];
        for policy in [HomePolicy::RoundRobin, HomePolicy::FirstTouch] {
            note(&format!("{} {policy:?}", spec.name));
            let w = spec.build(h.scale);
            let r = SimBuilder::new(Protocol::Hlrc)
                .procs(h.procs)
                .home_policy(policy)
                .run(w.as_ref())
                .expect_verified();
            cells.push(fmt_speedup(r.speedup(base)));
        }
        t.row(cells);
    }
    println!("{t}");
}
