//! Table 4: percentage of time processors spend in protocol activity
//! under HLRC at the base (AO) configuration, split into protocol-handler
//! execution and diff computation (plus twin/mprotect detail).

use ssm_bench::report_failures;
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

fn main() {
    let cli = SweepCli::parse();
    println!(
        "Table 4: % of processor time in protocol activity (HLRC, AO),\n\
         {}.\n",
        cli.describe()
    );
    let apps = cli.apps();
    let cells: Vec<Cell> = apps
        .iter()
        .map(|spec| {
            Cell::new(
                spec.name,
                Protocol::Hlrc,
                LayerConfig::base(),
                cli.procs,
                cli.scale,
            )
        })
        .collect();
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    let mut t = Table::new(vec![
        "Application",
        "Total%",
        "Handler%",
        "Diff%",
        "Twin%",
        "Mprotect%",
    ]);
    for (spec, cell) in apps.iter().zip(&cells) {
        let Some(rec) = run.record(cell) else {
            t.row(vec![
                spec.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        // Percentages of total (all-processor) execution time, like the
        // paper's Table 4.
        let wall: u64 = (0..rec.per_proc.len())
            .map(|p| rec.breakdown(p).total())
            .sum();
        let wall = wall.max(1) as f64;
        let a = rec.activity;
        t.row(vec![
            spec.name.to_string(),
            format!("{:.1}", 100.0 * a.total() as f64 / wall),
            format!("{:.1}", 100.0 * a.handler as f64 / wall),
            format!("{:.1}", 100.0 * a.diff_total() as f64 / wall),
            format!("{:.1}", 100.0 * a.twin as f64 / wall),
            format!("{:.1}", 100.0 * a.mprotect as f64 / wall),
        ]);
    }
    println!("{t}");
}
