//! Table 4: percentage of time processors spend in protocol activity
//! under HLRC at the base (AO) configuration, split into protocol-handler
//! execution and diff computation (plus twin/mprotect detail).

use ssm_bench::{note, Harness};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::Table;

fn main() {
    let mut h = Harness::from_args();
    let _ = &mut h;
    println!(
        "Table 4: % of processor time in protocol activity (HLRC, AO),\n\
         {} processors, scale {:?}.\n",
        h.procs, h.scale
    );
    let mut t = Table::new(vec![
        "Application",
        "Total%",
        "Handler%",
        "Diff%",
        "Twin%",
        "Mprotect%",
    ]);
    for spec in h.apps() {
        note(&format!("running {}", spec.name));
        let r = h.run(&spec, Protocol::Hlrc, LayerConfig::base());
        // Percentages of total (all-processor) execution time, like the
        // paper's Table 4.
        let wall: u64 = r.per_proc.iter().map(|b| b.total()).sum();
        let wall = wall.max(1) as f64;
        let a = r.activity;
        t.row(vec![
            spec.name.to_string(),
            format!("{:.1}", 100.0 * a.total() as f64 / wall),
            format!("{:.1}", 100.0 * a.handler as f64 / wall),
            format!("{:.1}", 100.0 * a.diff_total() as f64 / wall),
            format!("{:.1}", 100.0 * a.twin as f64 / wall),
            format!("{:.1}", 100.0 * a.mprotect as f64 / wall),
        ]);
    }
    println!("{t}");
}
