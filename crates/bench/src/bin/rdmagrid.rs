//! RDMA grid: the one-sided RDMA / disaggregated-memory protocol swept
//! through the full paper grid, next to the HLRC and SC columns of
//! Figure 3, plus Figure-4-style execution-time breakdowns and a
//! per-application *limiting layer* analysis (which layer bounds RDMA's
//! speedup at the achievable point).
//!
//! ```text
//! cargo run --release -p ssm-bench --bin rdmagrid > results/rdma.txt
//! ```
//!
//! Shares the sweep cache with every other binary: HLRC/SC columns are
//! cache hits after `figure3`, and the RDMA cells this adds are reused by
//! later sweeps. Pre-existing cell hashes are untouched — the RDMA
//! variant only extends the hash space.

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::{Bucket, Table};
use ssm_sweep::prelude::*;

/// The layer grid each protocol sweeps. RDMA is swept over both comm and
/// protocol costs like HLRC (its handoff machinery has a protocol-layer
/// component); SC runs at original protocol costs only, per the paper.
fn grids() -> (Vec<LayerConfig>, Vec<LayerConfig>) {
    let hlrc_like = LayerConfig::figure3(); // B+B BB AB BO AO WO
    let sc: Vec<LayerConfig> = ["B+O", "BO", "HO", "AO", "WO"]
        .into_iter()
        .map(|l| LayerConfig::parse(l).expect("known labels"))
        .collect();
    (hlrc_like, sc)
}

/// The bucket → layer attribution of the paper's layered model: where the
/// time goes decides which layer bounds the achieved speedup.
fn layer_of(b: Bucket) -> &'static str {
    match b {
        Bucket::Busy | Bucket::CacheStall => "application",
        Bucket::DataWait => "communication",
        Bucket::LockWait | Bucket::BarrierWait => "synchronization",
        Bucket::Protocol => "protocol",
    }
}

fn main() {
    let cli = SweepCli::parse();
    println!(
        "RDMA grid: one-sided protocol speedups next to HLRC and SC,\n{} (paper scale: 16 procs).\n",
        cli.describe()
    );

    let (rdma_cfgs, sc_cfgs) = grids();
    let apps = cli.apps();
    let cells_for = |spec_name: &str| {
        let mut cells = vec![
            Cell::baseline(spec_name, cli.scale),
            Cell::ideal(spec_name, cli.procs, cli.scale),
        ];
        for proto in [Protocol::Rdma, Protocol::Hlrc] {
            for cfg in &rdma_cfgs {
                cells.push(Cell::new(spec_name, proto, *cfg, cli.procs, cli.scale));
            }
        }
        for cfg in &sc_cfgs {
            cells.push(Cell::new(
                spec_name,
                Protocol::Sc,
                *cfg,
                cli.procs,
                cli.scale,
            ));
        }
        cells
    };
    let all: Vec<Cell> = apps.iter().flat_map(|a| cells_for(a.name)).collect();
    let run = Sweep::enumerate(&all).configure(&cli).run();
    report_failures(&run);

    // --- Speedup table: RDMA vs HLRC vs SC across the grid. ---
    let mut head = vec!["Application".to_string(), "IDEAL".to_string()];
    head.extend(rdma_cfgs.iter().map(|c| format!("RDMA {}", c.label())));
    head.extend(rdma_cfgs.iter().map(|c| format!("HLRC {}", c.label())));
    head.extend(sc_cfgs.iter().map(|c| format!("SC {}", c.label())));
    let mut t = Table::new(head);
    for spec in &apps {
        let cells = cells_for(spec.name);
        let mut row = vec![spec.name.to_string()];
        row.extend(cells[1..].iter().map(|c| fmt_speedup_opt(run.speedup(c))));
        t.row(row);
    }
    println!("{t}");
    println!("Labels: <comm><proto>; A=achievable, B=best, B+=better-than-best,");
    println!("H=halfway, W=worse / O=original, B=best protocol costs.\n");

    // --- Figure-4-style breakdowns for the RDMA rows. ---
    println!("RDMA execution-time breakdowns (% of average processor time):\n");
    let mut head = vec!["App / Config".to_string()];
    head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
    for spec in &apps {
        let mut t = Table::new(head.clone());
        for cfg in &rdma_cfgs {
            let cell = Cell::new(spec.name, Protocol::Rdma, *cfg, cli.procs, cli.scale);
            let mut row = vec![format!("RDMA {}", cfg.label())];
            match run.record(&cell) {
                Some(rec) => {
                    let b = rec.avg_breakdown();
                    row.extend(
                        Bucket::ALL
                            .iter()
                            .map(|k| format!("{:.1}%", 100.0 * b.fraction(*k))),
                    );
                }
                None => row.extend(Bucket::ALL.iter().map(|_| "-".to_string())),
            }
            t.row(row);
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }

    // --- Per-application limiting layer at the achievable point (AO). ---
    println!("Limiting layer at AO (largest non-application time share):\n");
    let ao = LayerConfig::parse("AO").expect("known label");
    let mut t = Table::new(vec![
        "Application".to_string(),
        "RDMA AO".to_string(),
        "HLRC AO".to_string(),
        "limiting layer (RDMA)".to_string(),
        "share".to_string(),
    ]);
    for spec in &apps {
        let rdma = Cell::new(spec.name, Protocol::Rdma, ao, cli.procs, cli.scale);
        let hlrc = Cell::new(spec.name, Protocol::Hlrc, ao, cli.procs, cli.scale);
        let mut row = vec![
            spec.name.to_string(),
            fmt_speedup_opt(run.speedup(&rdma)),
            fmt_speedup_opt(run.speedup(&hlrc)),
        ];
        match run.record(&rdma) {
            Some(rec) => {
                let b = rec.avg_breakdown();
                // Sum the non-application buckets into layer shares; the
                // layer with the largest share bounds the speedup.
                let mut shares: Vec<(&str, f64)> = Vec::new();
                for k in Bucket::ALL {
                    let layer = layer_of(k);
                    if layer == "application" {
                        continue;
                    }
                    match shares.iter_mut().find(|(l, _)| *l == layer) {
                        Some((_, s)) => *s += b.fraction(k),
                        None => shares.push((layer, b.fraction(k))),
                    }
                }
                let (layer, share) =
                    shares
                        .iter()
                        .cloned()
                        .fold(("application", 0.0), |best, cur| {
                            if cur.1 > best.1 {
                                cur
                            } else {
                                best
                            }
                        });
                row.push(layer.to_string());
                row.push(format!("{:.1}%", 100.0 * share));
            }
            None => {
                row.push("-".to_string());
                row.push("-".to_string());
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!("Layers: communication = data wait; synchronization = lock + barrier wait;");
    println!("protocol = handler/bookkeeping occupancy. One-sided service moves the");
    println!("home-node protocol time into the NI, so RDMA's bound is usually the");
    println!("communication or synchronization layer, not the protocol layer.");
}
