//! Simulator validation — the role of the paper's Appendix ("we performed
//! extensive validation of the simulator against real systems"). Without
//! the authors' hardware, validation is against closed-form expectations
//! of the model itself: zero-load message latencies, bandwidth-bound
//! transfer times, protocol transaction costs, and barrier scaling.
//! Each row prints the analytic value next to the simulated one.

use ssm_mem::MemConfig;
use ssm_net::{CommParams, Network};
use ssm_proto::{LockId, Machine, ProtoCosts, Protocol, WorldShape};
use ssm_stats::Table;

fn main() {
    let p = CommParams::achievable();
    println!("Validation against closed-form model expectations (achievable set).\n");
    let mut t = Table::new(vec!["quantity", "analytic", "simulated", "ok"]);
    let mut row = |name: &str, analytic: u64, simulated: u64| {
        t.row(vec![
            name.to_string(),
            analytic.to_string(),
            simulated.to_string(),
            if analytic == simulated { "yes" } else { "NO" }.to_string(),
        ]);
    };

    // 1. Zero-load 64-byte message: out-bus + NI + link + in-bus.
    let mut net = Network::new(2, p.clone());
    let analytic = 64 * 2 + p.ni_occupancy + p.link_latency + 64 * 2;
    row(
        "64 B message latency (cycles)",
        analytic,
        net.deliver(0, 0, 1, 64),
    );

    // 2. Zero-load 4 KB page: dominated by two bus crossings.
    let mut net = Network::new(2, p.clone());
    let analytic = 4096 * 2 + p.ni_occupancy + p.link_latency + 4096 * 2;
    row(
        "4 KB page latency (cycles)",
        analytic,
        net.deliver(0, 0, 1, 4096),
    );

    // 3. Back-to-back pages saturate the I/O bus: n-th completion ~
    //    first + (n-1) * bus time of one page (out bus is the bottleneck).
    let mut net = Network::new(2, p.clone());
    let first = net.deliver(0, 0, 1, 4096);
    let mut last = first;
    let n = 16;
    for _ in 1..n {
        last = net.deliver(0, 0, 1, 4096);
    }
    row(
        "16 pages pipelined (cycles)",
        first + (n - 1) * 4096 * 2,
        last,
    );

    // 4. HLRC page fetch: fault handler + request + home service + reply +
    //    mprotect.
    let costs = ProtoCosts::original();
    let m = Machine::new(2, p.clone(), costs.clone(), MemConfig::pentium_pro_like());
    let mut m = m;
    let mut hlrc = ssm_hlrc::Hlrc::new();
    hlrc.init(
        &m,
        &WorldShape {
            heap_bytes: 1 << 16,
            nlocks: 1,
            nbarriers: 1,
        },
    );
    // Wire times come from a fresh network so this row validates the
    // *protocol composition* (handler/overhead/mprotect accounting); the
    // wire itself is validated by the rows above. The 4 KB + 16 B reply
    // spans two packets, so its exact time is the network's own.
    let wire = |bytes: u64| {
        let mut n = Network::new(2, p.clone());
        n.deliver(0, 0, 1, bytes)
    };
    let analytic = costs.handler_base                  // fault handler
        + p.host_overhead                               // request send
        + wire(64)                                      // request wire
        + p.msg_handling + costs.handler_base           // home handler
        + p.host_overhead                               // reply send
        + wire(4096 + 16)                               // page wire
        + costs.mprotect(1)                             // map read-only
        + (8 + 60 + 32 / 2); // cold cache fill of the accessed line
    row(
        "HLRC page fetch+access (cycles)",
        analytic,
        hlrc.read(&mut m, 1, 0, 8),
    );

    // 5. Remote lock round trip (free lock, no notices): request + grant.
    let mut m2 = Machine::new(2, p.clone(), costs.clone(), MemConfig::pentium_pro_like());
    let mut h2 = ssm_hlrc::Hlrc::new();
    h2.init(
        &m2,
        &WorldShape {
            heap_bytes: 1 << 16,
            nlocks: 2,
            nbarriers: 1,
        },
    );
    let analytic = p.host_overhead
        + (64 * 2 + p.ni_occupancy + p.link_latency + 64 * 2)
        + p.msg_handling
        + costs.handler_base
        + p.host_overhead
        + (16 * 2 + p.ni_occupancy + p.link_latency + 16 * 2)
        + p.msg_handling
        + costs.handler_base;
    // Lock 1 is managed by node 1; node 0 acquires remotely.
    let got = h2.lock(&mut m2, 0, LockId(1)).expect("free lock");
    row("remote lock acquire (cycles)", analytic, got);

    println!("{t}");
    println!("(A \"NO\" row means the network/protocol composition drifted from the");
    println!(" documented model — the same checks run in the test suite.)");
}
