//! Chaos sweep: deterministic fault injection across fault rate x
//! protocol x application.
//!
//! Every application runs under HLRC, SC and RDMA at the base ("AO") layer
//! configuration, once fault-free and once per requested fault rate (the
//! per-class rate of message drops, duplicates, delay spikes and NI
//! stalls). The reliability sublayer must recover every run to the same
//! application result as the fault-free execution — an unverified or
//! failed cell makes the binary exit nonzero, so CI can assert recovery
//! with a single invocation.
//!
//! Extra flags on top of the common sweep CLI:
//!
//! * `--rates PPM[,PPM...]` — per-class fault rates to sweep (default
//!   `2000,10000,50000`);
//! * `--fault-seed N` — the injected-fault schedule seed (default 42).

use ssm_bench::report_failures;
use ssm_core::{FaultSpec, LayerConfig, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut rates: Vec<u32> = vec![2_000, 10_000, 50_000];
    let mut fault_seed: u64 = 42;
    let cli = SweepCli::parse_with(|flag, args| match flag {
        "--rates" => {
            let v = args
                .next()
                .unwrap_or_else(|| die("--rates needs ppm[,ppm...]"));
            rates = v
                .split(',')
                .map(|r| match r.trim().parse::<u32>() {
                    Ok(n) if n > 0 && n <= FaultSpec::MAX_RATE_PPM => n,
                    _ => die(&format!(
                        "--rates entries must be 1..={} ppm, got {r:?}",
                        FaultSpec::MAX_RATE_PPM
                    )),
                })
                .collect();
        }
        "--fault-seed" => {
            fault_seed = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--fault-seed needs a number"));
        }
        other => die(&format!(
            "unknown flag {other}; chaos adds --rates/--fault-seed to the common sweep flags"
        )),
    });
    println!(
        "Chaos: fault injection and recovery, {} (schedule seed {fault_seed}).\n",
        cli.describe()
    );

    let apps = cli.apps();
    let protocols = [Protocol::Hlrc, Protocol::Sc, Protocol::Rdma];
    let cells_for = |app: &str, proto: Protocol| {
        // Rate 0 is the clean cell: `with_faults(FaultSpec::none())` keeps
        // the pre-fault cell identity (and cache hash) bit-for-bit.
        std::iter::once(0)
            .chain(rates.iter().copied())
            .map(|r| {
                Cell::new(
                    app,
                    proto,
                    LayerConfig::base().with_faults(FaultSpec::at(r, fault_seed)),
                    cli.procs,
                    cli.scale,
                )
            })
            .collect::<Vec<_>>()
    };
    let all: Vec<Cell> = apps
        .iter()
        .flat_map(|a| protocols.iter().flat_map(|&p| cells_for(a.name, p)))
        .collect();
    let run = Sweep::enumerate(&all).configure(&cli).run();
    report_failures(&run);

    let mut head = vec![
        "Application".to_string(),
        "Protocol".to_string(),
        "clean cycles".to_string(),
    ];
    head.extend(rates.iter().map(|r| format!("f{r}")));
    let mut t = Table::new(head);
    let mut bad = 0usize;
    let mut total_retx = 0u64;
    for spec in &apps {
        for &proto in &protocols {
            let cells = cells_for(spec.name, proto);
            let mut row = vec![spec.name.to_string(), proto.label().to_string()];
            let clean = run.record(&cells[0]).map(|r| r.total_cycles);
            row.push(clean.map_or_else(|| "-".to_string(), |c| c.to_string()));
            for cell in &cells[1..] {
                match run.record(cell) {
                    Some(rec) if rec.verified => {
                        let c = &rec.counters;
                        total_retx += c.retransmissions;
                        let slowdown = clean.map_or_else(
                            || "?".to_string(),
                            |base| format!("{:.3}x", rec.total_cycles as f64 / base as f64),
                        );
                        row.push(format!(
                            "{slowdown} rtx={} dup={}",
                            c.retransmissions, c.dup_suppressed
                        ));
                    }
                    _ => {
                        bad += 1;
                        row.push("FAILED".to_string());
                    }
                }
            }
            // The fault-free run must verify too: it is the checksum the
            // faulty runs are recovered back to.
            if clean.is_none() || !run.record(&cells[0]).is_some_and(|r| r.verified) {
                bad += 1;
            }
            t.row(row);
        }
    }
    println!("{t}");
    println!("Cells: slowdown vs the fault-free run; rtx = retransmissions,");
    println!("dup = duplicate copies suppressed by the reliability sublayer.");
    if bad > 0 {
        eprintln!("[chaos] {bad} cell(s) failed or did not verify under fault injection");
        std::process::exit(1);
    }
    println!(
        "\nAll {} cells verified; {total_retx} total retransmissions recovered.",
        run.outcomes.len()
    );
}
