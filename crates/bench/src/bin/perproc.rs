//! Per-processor breakdowns — the analysis view the paper uses to explain
//! imbalance ("to analyze the results we always refer to per-processor
//! breakdowns", §3.4; e.g. Radix's imbalanced data-wait times and
//! Volrend's compute balance under task stealing).
//!
//! Usage: `--app NAME` (defaults to Radix), plus the usual sweep flags.

use ssm_bench::report_failures;
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::{Bucket, Table};
use ssm_sweep::prelude::*;

fn main() {
    let mut cli = SweepCli::parse();
    if cli.filter.is_empty() {
        cli.filter = "Radix".to_string();
    }
    let apps = cli.apps();
    let cells: Vec<Cell> = apps
        .iter()
        .map(|spec| {
            Cell::new(
                spec.name,
                Protocol::Hlrc,
                LayerConfig::base(),
                cli.procs,
                cli.scale,
            )
        })
        .collect();
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    for (spec, cell) in apps.iter().zip(&cells) {
        let Some(rec) = run.record(cell) else {
            continue;
        };
        println!("--- {} (HLRC, AO, {}) ---", spec.name, cli.describe());
        let mut head = vec!["proc".to_string()];
        head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
        head.push("total".to_string());
        let mut t = Table::new(head);
        for p in 0..rec.per_proc.len() {
            let b = rec.breakdown(p);
            let mut row = vec![format!("P{p}")];
            row.extend(Bucket::ALL.iter().map(|k| b.get(*k).to_string()));
            row.push(b.total().to_string());
            t.row(row);
        }
        println!("{t}");
        // Imbalance summary: max/mean per bucket.
        let mut t = Table::new(vec!["bucket", "mean", "max", "max/mean"]);
        for k in Bucket::ALL {
            let vals: Vec<u64> = (0..rec.per_proc.len())
                .map(|p| rec.breakdown(p).get(k))
                .collect();
            let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
            let max = *vals.iter().max().expect("nonempty") as f64;
            t.row(vec![
                k.label().to_string(),
                format!("{mean:.0}"),
                format!("{max:.0}"),
                if mean > 0.0 {
                    format!("{:.2}", max / mean)
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!("{t}");
    }
}
