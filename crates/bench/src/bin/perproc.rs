//! Per-processor breakdowns — the analysis view the paper uses to explain
//! imbalance ("to analyze the results we always refer to per-processor
//! breakdowns", §3.4; e.g. Radix's imbalanced data-wait times and
//! Volrend's compute balance under task stealing).
//!
//! Usage: `--app NAME` (defaults to Radix), plus the usual
//! `--procs/--scale` flags.

use ssm_bench::{note, Harness};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::{Bucket, Table};

fn main() {
    let mut h = Harness::from_args();
    if h.filter.is_empty() {
        h.filter = "Radix".to_string();
    }
    for spec in h.apps() {
        note(&format!("running {}", spec.name));
        let r = h.run(&spec, Protocol::Hlrc, LayerConfig::base());
        println!(
            "--- {} (HLRC, AO, {} processors, scale {:?}) ---",
            spec.name, h.procs, h.scale
        );
        let mut head = vec!["proc".to_string()];
        head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
        head.push("total".to_string());
        let mut t = Table::new(head);
        for (p, b) in r.per_proc.iter().enumerate() {
            let mut cells = vec![format!("P{p}")];
            cells.extend(Bucket::ALL.iter().map(|k| b.get(*k).to_string()));
            cells.push(b.total().to_string());
            t.row(cells);
        }
        println!("{t}");
        // Imbalance summary: max/mean per bucket.
        let mut t = Table::new(vec!["bucket", "mean", "max", "max/mean"]);
        for k in Bucket::ALL {
            let vals: Vec<u64> = r.per_proc.iter().map(|b| b.get(k)).collect();
            let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
            let max = *vals.iter().max().expect("nonempty") as f64;
            t.row(vec![
                k.label().to_string(),
                format!("{mean:.0}"),
                format!("{max:.0}"),
                if mean > 0.0 {
                    format!("{:.2}", max / mean)
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!("{t}");
    }
}
