//! Figure 3: speedups for every application under HLRC and SC across the
//! layer configurations (bars: IDEAL, B+B, BB, AB, BO, AO, WO for HLRC;
//! IDEAL, B+O, BO, HO, AO, WO for SC — SC is not swept over protocol
//! costs, per the paper §4.3).

use ssm_bench::{fmt_speedup, note, Harness};
use ssm_core::{CommPreset, LayerConfig, Protocol, ProtoPreset};
use ssm_stats::Table;

fn main() {
    let mut h = Harness::from_args();
    println!(
        "Figure 3: speedups, {} processors, scale {:?} (paper scale: 16 procs).\n",
        h.procs, h.scale
    );

    let hlrc_cfgs = LayerConfig::figure3(); // B+B BB AB BO AO WO
    let sc_cfgs: Vec<LayerConfig> = [
        (CommPreset::BetterThanBest, ProtoPreset::Original),
        (CommPreset::Best, ProtoPreset::Original),
        (CommPreset::Halfway, ProtoPreset::Original),
        (CommPreset::Achievable, ProtoPreset::Original),
        (CommPreset::Worse, ProtoPreset::Original),
    ]
    .into_iter()
    .map(|(comm, proto)| LayerConfig { comm, proto })
    .collect();

    let mut head = vec!["Application".to_string(), "IDEAL".to_string()];
    head.extend(hlrc_cfgs.iter().map(|c| format!("HLRC {}", c.label())));
    head.extend(sc_cfgs.iter().map(|c| format!("SC {}", c.label())));
    let mut t = Table::new(head);

    for spec in h.apps() {
        note(&format!("running {}", spec.name));
        let mut cells = vec![spec.name.to_string()];
        let ideal = h.ideal(&spec);
        cells.push(fmt_speedup(h.speedup(&spec, &ideal)));
        for cfg in &hlrc_cfgs {
            let r = h.run(&spec, Protocol::Hlrc, *cfg);
            cells.push(fmt_speedup(h.speedup(&spec, &r)));
        }
        for cfg in &sc_cfgs {
            let r = h.run(&spec, Protocol::Sc, *cfg);
            cells.push(fmt_speedup(h.speedup(&spec, &r)));
        }
        t.row(cells);
    }
    println!("{t}");
    println!("Labels: <comm><proto>; A=achievable, B=best, B+=better-than-best,");
    println!("H=halfway, W=worse / O=original, B=best protocol costs.");
}
