//! Figure 3: speedups for every application under HLRC and SC across the
//! layer configurations (bars: IDEAL, B+B, BB, AB, BO, AO, WO for HLRC;
//! IDEAL, B+O, BO, HO, AO, WO for SC — SC is not swept over protocol
//! costs, per the paper §4.3).

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

fn main() {
    let cli = SweepCli::parse();
    println!(
        "Figure 3: speedups, {} (paper scale: 16 procs).\n",
        cli.describe()
    );

    let hlrc_cfgs = LayerConfig::figure3(); // B+B BB AB BO AO WO
    let sc_cfgs: Vec<LayerConfig> = ["B+O", "BO", "HO", "AO", "WO"]
        .into_iter()
        .map(|l| LayerConfig::parse(l).expect("known labels"))
        .collect();

    // One flat enumeration: baselines + every bar of every application.
    let apps = cli.apps();
    let cells_for = |spec_name: &str| {
        let mut cells = vec![
            Cell::baseline(spec_name, cli.scale),
            Cell::ideal(spec_name, cli.procs, cli.scale),
        ];
        for cfg in &hlrc_cfgs {
            cells.push(Cell::new(
                spec_name,
                Protocol::Hlrc,
                *cfg,
                cli.procs,
                cli.scale,
            ));
        }
        for cfg in &sc_cfgs {
            cells.push(Cell::new(
                spec_name,
                Protocol::Sc,
                *cfg,
                cli.procs,
                cli.scale,
            ));
        }
        cells
    };
    let all: Vec<Cell> = apps.iter().flat_map(|a| cells_for(a.name)).collect();
    let run = Sweep::enumerate(&all).configure(&cli).run();
    report_failures(&run);

    let mut head = vec!["Application".to_string(), "IDEAL".to_string()];
    head.extend(hlrc_cfgs.iter().map(|c| format!("HLRC {}", c.label())));
    head.extend(sc_cfgs.iter().map(|c| format!("SC {}", c.label())));
    let mut t = Table::new(head);
    for spec in &apps {
        let cells = cells_for(spec.name);
        let mut row = vec![spec.name.to_string()];
        // cells[0] is the baseline; the bars start at the IDEAL cell.
        row.extend(cells[1..].iter().map(|c| fmt_speedup_opt(run.speedup(c))));
        t.row(row);
    }
    println!("{t}");
    println!("Labels: <comm><proto>; A=achievable, B=best, B+=better-than-best,");
    println!("H=halfway, W=worse / O=original, B=best protocol costs.");
}
