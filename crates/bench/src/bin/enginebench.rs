//! Engine scheduling microbench: what operation batching buys per cell.
//!
//! Runs every application under HLRC and RDMA at the base layer
//! configuration, once with batched baton handoffs and once without, and
//! reports the schedule-derived evidence (handoffs per cell, the fraction
//! of operations that travelled in a batch, flush causes) plus host-side
//! cells/sec. On a one-CPU CI container wall-clock is noise, so the
//! binary *asserts* on the deterministic counters instead: for every
//! protocol, at least five applications must show a >= 3x handoff
//! reduction, or it exits nonzero — the batching HintBoard path is
//! protocol-agnostic and must pay off for one-sided coherence too.
//!
//! The machine-readable report lands in `results/BENCH_engine.json`
//! (committed; the counter fields are deterministic, the `cells_per_sec`
//! fields are wall-clock and vary by host).
//!
//! Flags: `--procs N` (default 2), `--app NAME` (substring filter),
//! `--results DIR` (default `results/`), `--quiet`. The sweep always runs
//! at test scale — the counters scale with the op stream, not the problem
//! size, and test scale keeps the binary CI-fast.

use std::path::PathBuf;
use std::time::Instant;

use ssm_apps::catalog::{suite, Scale};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::Table;
use ssm_sweep::{execute_with, Cell, CellRecord, Json};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut procs: usize = 2;
    let mut filter = String::new();
    let mut results_dir = PathBuf::from("results");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--procs" => {
                procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--procs needs a number"));
            }
            "--app" => filter = args.next().unwrap_or_else(|| die("--app needs a name")),
            "--results" => {
                results_dir =
                    PathBuf::from(args.next().unwrap_or_else(|| die("--results needs a dir")));
            }
            "--quiet" => quiet = true,
            other => die(&format!(
                "unknown flag {other}; enginebench takes --procs/--app/--results/--quiet"
            )),
        }
    }

    let apps: Vec<_> = suite()
        .into_iter()
        .filter(|a| filter.is_empty() || a.name.contains(&filter))
        .collect();
    if apps.is_empty() {
        die(&format!("no application matches {filter:?}"));
    }
    println!("Engine batching bench: {procs} processors, scale test.\n");

    let run = |app: &str, proto: Protocol, batching: bool| -> CellRecord {
        let cell = Cell::new(app, proto, LayerConfig::base(), procs, Scale::Test);
        execute_with(&cell, None, batching).unwrap_or_else(|e| die(&format!("{app} failed: {e}")))
    };

    let protocols = [Protocol::Hlrc, Protocol::Rdma];
    let mut t = Table::new(vec![
        "Application".to_string(),
        "Protocol".to_string(),
        "Handoffs".to_string(),
        "Unbatched".to_string(),
        "Reduction".to_string(),
        "Ops/batchd".to_string(),
    ]);
    let mut entries: Vec<Json> = Vec::new();
    let mut cleared = vec![0usize; protocols.len()];
    let (mut secs_batched, mut secs_unbatched) = (0.0f64, 0.0f64);
    for app in &apps {
        for (pi, &proto) in protocols.iter().enumerate() {
            let t0 = Instant::now();
            let b = run(app.name, proto, true);
            secs_batched += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let u = run(app.name, proto, false);
            secs_unbatched += t0.elapsed().as_secs_f64();
            let (bc, uc) = (&b.counters, &u.counters);
            if bc.sim_ops != uc.sim_ops {
                die(&format!(
                    "{} {}: op streams differ ({} vs {} ops) — batching is not transparent",
                    app.name,
                    proto.label(),
                    bc.sim_ops,
                    uc.sim_ops
                ));
            }
            let ratio = uc.handoffs as f64 / bc.handoffs.max(1) as f64;
            let batched_frac = bc.ops_batched as f64 / bc.sim_ops.max(1) as f64;
            if ratio >= 3.0 {
                cleared[pi] += 1;
            }
            t.row(vec![
                app.name.to_string(),
                proto.label().to_string(),
                bc.handoffs.to_string(),
                uc.handoffs.to_string(),
                format!("{ratio:.1}x"),
                format!("{:.0}%", batched_frac * 100.0),
            ]);
            entries.push(Json::Obj(vec![
                ("app".to_string(), Json::Str(app.name.to_string())),
                ("protocol".to_string(), Json::Str(proto.label().to_string())),
                ("handoffs".to_string(), Json::Int(bc.handoffs)),
                ("handoffs_unbatched".to_string(), Json::Int(uc.handoffs)),
                ("handoff_reduction".to_string(), Json::Num(ratio)),
                ("sim_ops".to_string(), Json::Int(bc.sim_ops)),
                ("ops_batched".to_string(), Json::Int(bc.ops_batched)),
                ("batched_op_ratio".to_string(), Json::Num(batched_frac)),
                ("flush_sync".to_string(), Json::Int(bc.flush_sync)),
                ("flush_miss".to_string(), Json::Int(bc.flush_miss)),
                ("flush_cap".to_string(), Json::Int(bc.flush_cap)),
                ("flush_end".to_string(), Json::Int(bc.flush_end)),
            ]));
        }
    }
    println!("{}", t.render());
    let cells = (apps.len() * protocols.len()) as f64;
    println!(
        "cells/sec (host, wall-clock): {:.1} batched, {:.1} unbatched",
        cells / secs_batched.max(1e-9),
        cells / secs_unbatched.max(1e-9),
    );
    for (pi, &proto) in protocols.iter().enumerate() {
        println!(
            "{}: {}/{} applications at >= 3x handoff reduction",
            proto.label(),
            cleared[pi],
            apps.len()
        );
    }

    let report = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("ssm-enginebench/2".to_string()),
        ),
        ("procs".to_string(), Json::Int(procs as u64)),
        ("scale".to_string(), Json::Str("test".to_string())),
        (
            "apps_at_3x".to_string(),
            Json::Obj(
                protocols
                    .iter()
                    .enumerate()
                    .map(|(pi, p)| (p.label().to_string(), Json::Int(cleared[pi] as u64)))
                    .collect(),
            ),
        ),
        (
            "cells_per_sec_batched".to_string(),
            Json::Num(cells / secs_batched.max(1e-9)),
        ),
        (
            "cells_per_sec_unbatched".to_string(),
            Json::Num(cells / secs_unbatched.max(1e-9)),
        ),
        ("apps".to_string(), Json::Arr(entries)),
    ]);
    std::fs::create_dir_all(&results_dir)
        .and_then(|()| {
            std::fs::write(
                results_dir.join("BENCH_engine.json"),
                report.render() + "\n",
            )
        })
        .unwrap_or_else(|e| die(&format!("cannot write BENCH_engine.json: {e}")));
    if !quiet {
        eprintln!(
            "[enginebench] wrote {}",
            results_dir.join("BENCH_engine.json").display()
        );
    }

    // The full application filter must hold the CI bar for every
    // protocol; a substring run (fewer than 5 apps) only reports.
    if filter.is_empty() {
        for (pi, &proto) in protocols.iter().enumerate() {
            if cleared[pi] < 5 {
                eprintln!(
                    "error: only {} application(s) reached a 3x handoff reduction under {} (need 5)",
                    cleared[pi],
                    proto.label()
                );
                std::process::exit(1);
            }
        }
    }
}
