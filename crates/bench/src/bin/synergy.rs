//! Synergy between layers (paper §4.5): the improvement each system layer
//! buys depends on the state of the other. Reports, per application under
//! HLRC, the percentage speedup gains:
//!
//! * protocol idealization before/after communication idealization
//!   (AO→AB vs BO→BB),
//! * communication idealization before/after protocol idealization
//!   (AO→BO vs AB→BB).

use ssm_bench::{note, Harness};
use ssm_core::{CommPreset, LayerConfig, Protocol, ProtoPreset};
use ssm_stats::Table;

fn main() {
    let mut h = Harness::from_args();
    println!(
        "Layer synergy under HLRC, {} processors, scale {:?}.\n",
        h.procs, h.scale
    );
    let mut t = Table::new(vec![
        "Application",
        "AO->AB",
        "BO->BB",
        "AO->BO",
        "AB->BB",
        "synergy",
    ]);
    for spec in h.apps() {
        note(&format!("running {}", spec.name));
        let mut s = |comm: CommPreset, proto: ProtoPreset| {
            let r = h.run(&spec, Protocol::Hlrc, LayerConfig { comm, proto });
            let b = h.baseline(&spec);
            r.speedup(b)
        };
        let ao = s(CommPreset::Achievable, ProtoPreset::Original);
        let ab = s(CommPreset::Achievable, ProtoPreset::Best);
        let bo = s(CommPreset::Best, ProtoPreset::Original);
        let bb = s(CommPreset::Best, ProtoPreset::Best);
        let pct = |from: f64, to: f64| 100.0 * (to - from) / from;
        let proto_before = pct(ao, ab);
        let proto_after = pct(bo, bb);
        let comm_before = pct(ao, bo);
        let comm_after = pct(ab, bb);
        let synergy = proto_after > proto_before || comm_after > comm_before;
        t.row(vec![
            spec.name.to_string(),
            format!("{proto_before:+.0}%"),
            format!("{proto_after:+.0}%"),
            format!("{comm_before:+.0}%"),
            format!("{comm_after:+.0}%"),
            if synergy { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{t}");
    println!("Synergy = idealizing one layer raises the percentage gain of the other.");
}
