//! Synergy between layers (paper §4.5): the improvement each system layer
//! buys depends on the state of the other. Reports, per application under
//! HLRC, the percentage speedup gains:
//!
//! * protocol idealization before/after communication idealization
//!   (AO→AB vs BO→BB),
//! * communication idealization before/after protocol idealization
//!   (AO→BO vs AB→BB).

use ssm_bench::report_failures;
use ssm_core::{CommPreset, LayerConfig, ProtoPreset, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

const CORNERS: [(CommPreset, ProtoPreset); 4] = [
    (CommPreset::Achievable, ProtoPreset::Original),
    (CommPreset::Achievable, ProtoPreset::Best),
    (CommPreset::Best, ProtoPreset::Original),
    (CommPreset::Best, ProtoPreset::Best),
];

fn main() {
    let cli = SweepCli::parse();
    println!("Layer synergy under HLRC, {}.\n", cli.describe());
    let apps = cli.apps();
    let cell = |app: &str, comm, proto| {
        Cell::new(
            app,
            Protocol::Hlrc,
            LayerConfig::of(comm, proto),
            cli.procs,
            cli.scale,
        )
    };
    let mut cells = Vec::new();
    for spec in &apps {
        cells.push(Cell::baseline(spec.name, cli.scale));
        for (comm, proto) in CORNERS {
            cells.push(cell(spec.name, comm, proto));
        }
    }
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    let mut t = Table::new(vec![
        "Application",
        "AO->AB",
        "BO->BB",
        "AO->BO",
        "AB->BB",
        "synergy",
    ]);
    for spec in &apps {
        let s = |comm, proto| run.speedup(&cell(spec.name, comm, proto));
        let (Some(ao), Some(ab), Some(bo), Some(bb)) = (
            s(CommPreset::Achievable, ProtoPreset::Original),
            s(CommPreset::Achievable, ProtoPreset::Best),
            s(CommPreset::Best, ProtoPreset::Original),
            s(CommPreset::Best, ProtoPreset::Best),
        ) else {
            t.row(vec![
                spec.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let pct = |from: f64, to: f64| 100.0 * (to - from) / from;
        let proto_before = pct(ao, ab);
        let proto_after = pct(bo, bb);
        let comm_before = pct(ao, bo);
        let comm_after = pct(ab, bb);
        let synergy = proto_after > proto_before || comm_after > comm_before;
        t.row(vec![
            spec.name.to_string(),
            format!("{proto_before:+.0}%"),
            format!("{proto_after:+.0}%"),
            format!("{comm_before:+.0}%"),
            format!("{comm_after:+.0}%"),
            if synergy { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{t}");
    println!("Synergy = idealizing one layer raises the percentage gain of the other.");
}
