//! The full 15-point configuration grid (5 communication x 3 protocol
//! presets) for selected applications — the HO/AH/HB points the paper
//! discusses in prose but leaves out of Figure 3 "to prevent
//! overcrowding".

use ssm_bench::{fmt_speedup, note, Harness};
use ssm_core::{CommPreset, LayerConfig, Protocol, ProtoPreset};
use ssm_stats::Table;

fn main() {
    let mut h = Harness::from_args();
    let default = ["FFT", "Ocean-Contiguous", "Barnes-original", "Water-Nsquared"];
    let apps: Vec<_> = h
        .apps()
        .into_iter()
        .filter(|a| !h.filter.is_empty() || default.contains(&a.name))
        .collect();
    println!(
        "Full configuration grid (HLRC speedups), {} processors, scale {:?}.\n\
         Rows: communication preset; columns: protocol preset.\n",
        h.procs, h.scale
    );
    for spec in apps {
        let mut t = Table::new(vec!["comm \\ proto", "O", "H", "B"]);
        for comm in [
            CommPreset::Worse,
            CommPreset::Achievable,
            CommPreset::Halfway,
            CommPreset::Best,
            CommPreset::BetterThanBest,
        ] {
            let mut cells = vec![comm.label().to_string()];
            for proto in [ProtoPreset::Original, ProtoPreset::Halfway, ProtoPreset::Best] {
                note(&format!("{} {}{}", spec.name, comm.label(), proto.label()));
                let r = h.run(&spec, Protocol::Hlrc, LayerConfig { comm, proto });
                cells.push(fmt_speedup(h.speedup(&spec, &r)));
            }
            t.row(cells);
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
    println!(
        "Read along rows/columns for the paper's halfway observations:\n\
         \"improving communication costs to the halfway point usually improves\n\
         performance about halfway between AO and BO\", and the synergy that\n\
         protocol costs gain leverage once communication reaches H or B."
    );
}
