//! The full 15-point configuration grid (5 communication x 3 protocol
//! presets) for selected applications — the HO/AH/HB points the paper
//! discusses in prose but leaves out of Figure 3 "to prevent
//! overcrowding".

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::{CommPreset, LayerConfig, ProtoPreset, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

const COMMS: [CommPreset; 5] = [
    CommPreset::Worse,
    CommPreset::Achievable,
    CommPreset::Halfway,
    CommPreset::Best,
    CommPreset::BetterThanBest,
];

const PROTOS: [ProtoPreset; 3] = [
    ProtoPreset::Original,
    ProtoPreset::Halfway,
    ProtoPreset::Best,
];

fn main() {
    let cli = SweepCli::parse();
    let default = [
        "FFT",
        "Ocean-Contiguous",
        "Barnes-original",
        "Water-Nsquared",
    ];
    let apps: Vec<_> = cli
        .apps()
        .into_iter()
        .filter(|a| !cli.filter.is_empty() || default.contains(&a.name))
        .collect();
    println!(
        "Full configuration grid (HLRC speedups), {}.\n\
         Rows: communication preset; columns: protocol preset.\n",
        cli.describe()
    );
    let cell = |app: &str, comm, proto| {
        Cell::new(
            app,
            Protocol::Hlrc,
            LayerConfig::of(comm, proto),
            cli.procs,
            cli.scale,
        )
    };
    let mut cells = Vec::new();
    for spec in &apps {
        cells.push(Cell::baseline(spec.name, cli.scale));
        for comm in COMMS {
            for proto in PROTOS {
                cells.push(cell(spec.name, comm, proto));
            }
        }
    }
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    for spec in &apps {
        let mut t = Table::new(vec!["comm \\ proto", "O", "H", "B"]);
        for comm in COMMS {
            let mut row = vec![comm.label().to_string()];
            for proto in PROTOS {
                row.push(fmt_speedup_opt(run.speedup(&cell(spec.name, comm, proto))));
            }
            t.row(row);
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
    println!(
        "Read along rows/columns for the paper's halfway observations:\n\
         \"improving communication costs to the halfway point usually improves\n\
         performance about halfway between AO and BO\", and the synergy that\n\
         protocol costs gain leverage once communication reaches H or B."
    );
}
