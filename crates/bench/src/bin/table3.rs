//! Table 3: protocol cost parameter sets.

use ssm_core::ProtoPreset;
use ssm_proto::PAGE_WORDS;
use ssm_stats::Table;

fn main() {
    println!("Table 3: Protocol cost parameter values.\n");
    let mut t = Table::new(vec![
        "Parameter",
        "O (original)",
        "H (halfway)",
        "B (best)",
        "Units",
    ]);
    let sets: Vec<_> = [
        ProtoPreset::Original,
        ProtoPreset::Halfway,
        ProtoPreset::Best,
    ]
    .iter()
    .map(|p| p.costs())
    .collect();
    let mut row = |name: &str, f: &dyn Fn(&ssm_proto::ProtoCosts) -> String, unit: &str| {
        let mut cells = vec![name.to_string()];
        for s in &sets {
            cells.push(f(s));
        }
        cells.push(unit.to_string());
        t.row(cells);
    };
    row(
        "Page protection",
        &|c| c.page_protect.to_string(),
        "cycles/page",
    );
    row(
        "mprotect startup",
        &|c| c.mprotect_startup.to_string(),
        "cycles/call",
    );
    row(
        "Diff creation (compare)",
        &|c| {
            format!(
                "{:.2}",
                c.diff_compare.cost(PAGE_WORDS) as f64 / PAGE_WORDS as f64
            )
        },
        "cycles/word",
    );
    row(
        "Diff creation (encode)",
        &|c| {
            format!(
                "{:.2}",
                c.diff_encode.cost(PAGE_WORDS) as f64 / PAGE_WORDS as f64
            )
        },
        "cycles/word",
    );
    row(
        "Diff application",
        &|c| {
            format!(
                "{:.2}",
                c.diff_apply.cost(PAGE_WORDS) as f64 / PAGE_WORDS as f64
            )
        },
        "cycles/word",
    );
    row(
        "Twin creation",
        &|c| format!("{:.2}", c.twin.cost(PAGE_WORDS) as f64 / PAGE_WORDS as f64),
        "cycles/word",
    );
    row("Handler (base)", &|c| c.handler_base.to_string(), "cycles");
    row(
        "Handler (per list element)",
        &|c| c.per_list_element.to_string(),
        "cycles",
    );
    println!("{t}");
}
