//! Table 2: communication parameter sets.

use ssm_core::CommPreset;
use ssm_stats::Table;

fn main() {
    println!("Table 2: Communication parameter values (processor cycles; 1 IPC @ 200 MHz).\n");
    let mut t = Table::new(vec![
        "Parameter",
        "A (achievable)",
        "B (best)",
        "H (halfway)",
        "W (worse)",
        "B+",
    ]);
    let sets: Vec<_> = [
        CommPreset::Achievable,
        CommPreset::Best,
        CommPreset::Halfway,
        CommPreset::Worse,
        CommPreset::BetterThanBest,
    ]
    .iter()
    .map(|p| p.params())
    .collect();
    let row = |name: &str, f: &dyn Fn(&ssm_net::CommParams) -> String| {
        let mut cells = vec![name.to_string()];
        for s in &sets {
            cells.push(f(s));
        }
        cells
    };
    t.row(row("Host overhead (cycles/msg)", &|s| {
        s.host_overhead.to_string()
    }));
    t.row(row(
        "I/O bus bandwidth (B/cycle)",
        &|s| match s.io_bus_rate {
            Some((b, c)) => format!("{:.2}", b as f64 / c as f64),
            None => "inf".into(),
        },
    ));
    t.row(row("NI occupancy (cycles/pkt)", &|s| {
        s.ni_occupancy.to_string()
    }));
    t.row(row("Message handling (cycles)", &|s| {
        s.msg_handling.to_string()
    }));
    t.row(row("Link latency (cycles)", &|s| {
        s.link_latency.to_string()
    }));
    println!("{t}");
}
