//! General-purpose runner: one application x protocol x configuration,
//! with full reporting. The Swiss-army knife for exploring the simulator.
//!
//! ```text
//! cargo run --release -p ssm-bench --bin run -- \
//!     --app Barnes-original --protocol hlrc --comm A --proto O \
//!     --procs 16 --scale bench --breakdown --counters --perproc
//! ```
//!
//! Shares the sweep cache: a cell this runner executes is a cache hit for
//! every figure/table binary, and vice versa.

use ssm_apps::catalog::{by_name, suite};
use ssm_core::{CommPreset, LayerConfig, ProtoPreset, Protocol};
use ssm_proto::HomePolicy;
use ssm_stats::{Bucket, Table};
use ssm_sweep::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: run --app NAME [--protocol hlrc|aurc|sc|sc-delayed|rdma|ideal] \
         [--comm A|B|B+|H|W] [--proto O|H|B] [--procs N] \
         [--scale test|bench|full] [--homes rr|first-touch] [--block BYTES] \
         [--jobs N] [--no-cache] [--results DIR] \
         [--breakdown] [--counters] [--perproc] [--list]"
    );
    std::process::exit(2)
}

#[derive(Default)]
struct Extra {
    protocol: Option<Protocol>,
    comm: Option<CommPreset>,
    proto: Option<ProtoPreset>,
    homes: Option<HomePolicy>,
    sc_block: Option<u64>,
    breakdown: bool,
    counters: bool,
    perproc: bool,
}

fn parse() -> (SweepCli, Extra) {
    let mut x = Extra::default();
    let cli = SweepCli::parse_with(|flag, args| {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag {
            "--protocol" => {
                x.protocol = Some(match val().as_str() {
                    "hlrc" => Protocol::Hlrc,
                    "aurc" => Protocol::Aurc,
                    "sc" => Protocol::Sc,
                    "sc-delayed" => Protocol::ScDelayed,
                    "rdma" => Protocol::Rdma,
                    "ideal" => Protocol::Ideal,
                    _ => usage(),
                })
            }
            "--comm" => {
                x.comm = Some(match val().as_str() {
                    "A" => CommPreset::Achievable,
                    "B" => CommPreset::Best,
                    "B+" => CommPreset::BetterThanBest,
                    "H" => CommPreset::Halfway,
                    "W" => CommPreset::Worse,
                    _ => usage(),
                })
            }
            "--proto" => {
                x.proto = Some(match val().as_str() {
                    "O" => ProtoPreset::Original,
                    "H" => ProtoPreset::Halfway,
                    "B" => ProtoPreset::Best,
                    _ => usage(),
                })
            }
            "--homes" => {
                x.homes = Some(match val().as_str() {
                    "rr" => HomePolicy::RoundRobin,
                    "first-touch" => HomePolicy::FirstTouch,
                    _ => usage(),
                })
            }
            "--block" => x.sc_block = Some(val().parse().unwrap_or_else(|_| usage())),
            "--breakdown" => x.breakdown = true,
            "--counters" => x.counters = true,
            "--perproc" => x.perproc = true,
            "--list" => {
                for s in suite() {
                    println!("{}", s.name);
                }
                std::process::exit(0);
            }
            _ => usage(),
        }
    });
    (cli, x)
}

fn main() {
    let (cli, x) = parse();
    if cli.filter.is_empty() {
        usage();
    }
    let spec = by_name(&cli.filter).unwrap_or_else(|| {
        eprintln!("unknown app {:?}; use --list", cli.filter);
        std::process::exit(2)
    });
    let cfg = LayerConfig::of(
        x.comm.unwrap_or(CommPreset::Achievable),
        x.proto.unwrap_or(ProtoPreset::Original),
    );
    let mut cell = Cell::new(
        spec.name,
        x.protocol.unwrap_or(Protocol::Hlrc),
        cfg,
        cli.procs,
        cli.scale,
    );
    if let Some(h) = x.homes {
        cell = cell.with_homes(h);
    }
    if let Some(b) = x.sc_block {
        cell = cell.with_sc_block(b);
    }

    let cells = vec![Cell::baseline(spec.name, cli.scale), cell.clone()];
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    let outcome = run.outcome(&cell).expect("cell swept");
    let rec = match &outcome.status {
        CellStatus::Done(rec) => rec,
        CellStatus::Failed(e) => {
            eprintln!("[run] FAILED: {e}");
            std::process::exit(1)
        }
        CellStatus::TimedOut(d) => {
            eprintln!("[run] timed out after {d:?}");
            std::process::exit(1)
        }
    };
    let seq = run.record(&cells[0]).map(|r| r.total_cycles);

    println!("cell:       {} ({})", cell.label(), outcome.hash);
    println!("cached:     {}", outcome.cached);
    println!("processors: {}", cell.procs);
    match seq {
        Some(seq) => println!("sequential: {seq} cycles"),
        None => println!("sequential: unavailable"),
    }
    println!("parallel:   {} cycles", rec.total_cycles);
    if let Some(s) = run.speedup(&cell) {
        println!("speedup:    {s:.2}");
    }
    if !rec.verified {
        println!(
            "verified:   NO — {}",
            rec.verify_error.as_deref().unwrap_or("unknown")
        );
    }
    if x.breakdown {
        println!("\naverage breakdown: {}", rec.avg_breakdown());
    }
    if x.counters {
        let c = rec.counters;
        println!(
            "\nmessages={} bytes={} fetches={} diffs={} diff_words={} twins={} \
             auto_updates={} write_notices={} invalidations={} locks={} barriers={}",
            c.messages,
            c.bytes,
            c.fetches,
            c.diffs,
            c.diff_words,
            c.twins,
            c.auto_updates,
            c.write_notices,
            c.invalidations,
            c.lock_acquires,
            c.barriers
        );
    }
    if x.perproc {
        let mut head = vec!["proc".to_string()];
        head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
        let mut t = Table::new(head);
        for p in 0..rec.per_proc.len() {
            let b = rec.breakdown(p);
            let mut row = vec![format!("P{p}")];
            row.extend(Bucket::ALL.iter().map(|k| b.get(*k).to_string()));
            t.row(row);
        }
        println!("\n{t}");
    }
}
