//! General-purpose runner: one application x protocol x configuration,
//! with full reporting. The Swiss-army knife for exploring the simulator.
//!
//! ```text
//! cargo run --release -p ssm-bench --bin run -- \
//!     --app Barnes-original --protocol hlrc --comm A --proto O \
//!     --procs 16 --scale bench --breakdown --counters --perproc
//! ```

use ssm_apps::catalog::{by_name, suite, Scale};
use ssm_core::{sequential_baseline, Protocol, SimBuilder};
use ssm_net::CommParams;
use ssm_proto::{HomePolicy, ProtoCosts};
use ssm_stats::{Bucket, Table};

struct Args {
    app: String,
    protocol: Protocol,
    comm: CommParams,
    costs: ProtoCosts,
    procs: usize,
    scale: Scale,
    homes: HomePolicy,
    sc_block: Option<u64>,
    breakdown: bool,
    counters: bool,
    perproc: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: run --app NAME [--protocol hlrc|aurc|sc|sc-delayed|ideal] \
         [--comm A|B|B+|H|W] [--proto O|H|B] [--procs N] \
         [--scale test|bench|full] [--homes rr|first-touch] [--block BYTES] \
         [--breakdown] [--counters] [--perproc] [--list]"
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut a = Args {
        app: String::new(),
        protocol: Protocol::Hlrc,
        comm: CommParams::achievable(),
        costs: ProtoCosts::original(),
        procs: 16,
        scale: Scale::Bench,
        homes: HomePolicy::RoundRobin,
        sc_block: None,
        breakdown: false,
        counters: false,
        perproc: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--app" => a.app = val(),
            "--protocol" => {
                a.protocol = match val().as_str() {
                    "hlrc" => Protocol::Hlrc,
                    "aurc" => Protocol::Aurc,
                    "sc" => Protocol::Sc,
                    "sc-delayed" => Protocol::ScDelayed,
                    "ideal" => Protocol::Ideal,
                    _ => usage(),
                }
            }
            "--comm" => {
                a.comm = match val().as_str() {
                    "A" => CommParams::achievable(),
                    "B" => CommParams::best(),
                    "B+" => CommParams::better_than_best(),
                    "H" => CommParams::halfway(),
                    "W" => CommParams::worse(),
                    _ => usage(),
                }
            }
            "--proto" => {
                a.costs = match val().as_str() {
                    "O" => ProtoCosts::original(),
                    "H" => ProtoCosts::halfway(),
                    "B" => ProtoCosts::best(),
                    _ => usage(),
                }
            }
            "--procs" => a.procs = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => {
                a.scale = match val().as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--homes" => {
                a.homes = match val().as_str() {
                    "rr" => HomePolicy::RoundRobin,
                    "first-touch" => HomePolicy::FirstTouch,
                    _ => usage(),
                }
            }
            "--block" => a.sc_block = Some(val().parse().unwrap_or_else(|_| usage())),
            "--breakdown" => a.breakdown = true,
            "--counters" => a.counters = true,
            "--perproc" => a.perproc = true,
            "--list" => {
                for s in suite() {
                    println!("{}", s.name);
                }
                std::process::exit(0);
            }
            _ => usage(),
        }
    }
    if a.app.is_empty() {
        usage();
    }
    a
}

fn main() {
    let a = parse();
    let spec = by_name(&a.app).unwrap_or_else(|| {
        eprintln!("unknown app {:?}; use --list", a.app);
        std::process::exit(2)
    });
    let block = a.sc_block.unwrap_or(spec.sc_block);
    let w = spec.build(a.scale);
    eprintln!("[run] sequential baseline…");
    let seq = sequential_baseline(w.as_ref()).total_cycles;
    eprintln!("[run] simulating {} x {:?}…", spec.name, a.protocol);
    let w = spec.build(a.scale);
    let r = SimBuilder::new(a.protocol)
        .procs(a.procs)
        .comm(a.comm.clone())
        .proto(a.costs.clone())
        .sc_block(block)
        .home_policy(a.homes)
        .run(w.as_ref())
        .expect_verified();

    println!("app:        {}", r.app);
    println!("protocol:   {}", r.protocol);
    println!("processors: {}", r.nprocs);
    println!("sequential: {seq} cycles");
    println!("parallel:   {} cycles", r.total_cycles);
    println!("speedup:    {:.2}", r.speedup(seq));
    if a.breakdown {
        println!("\naverage breakdown: {}", r.avg_breakdown());
    }
    if a.counters {
        let c = r.counters;
        println!(
            "\nmessages={} bytes={} fetches={} diffs={} diff_words={} twins={} \
             auto_updates={} write_notices={} invalidations={} locks={} barriers={}",
            c.messages,
            c.bytes,
            c.fetches,
            c.diffs,
            c.diff_words,
            c.twins,
            c.auto_updates,
            c.write_notices,
            c.invalidations,
            c.lock_acquires,
            c.barriers
        );
    }
    if a.perproc {
        let mut head = vec!["proc".to_string()];
        head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
        let mut t = Table::new(head);
        for (p, b) in r.per_proc.iter().enumerate() {
            let mut cells = vec![format!("P{p}")];
            cells.extend(Bucket::ALL.iter().map(|k| b.get(*k).to_string()));
            t.row(cells);
        }
        println!("\n{t}");
    }
}
