//! Figure 4: execution-time breakdowns (busy / cache stall / data wait /
//! lock wait / barrier wait / protocol), averaged over processors, for the
//! main layer configurations.

use ssm_bench::{note, Harness};
use ssm_core::{LayerConfig, Protocol};
use ssm_stats::{Bucket, Table};

fn main() {
    let mut h = Harness::from_args();
    let _ = h.baseline(&ssm_apps::catalog::suite()[0]); // warm nothing; keep mut use
    println!(
        "Figure 4: execution-time breakdowns (% of average processor time),\n\
         {} processors, scale {:?}.\n",
        h.procs, h.scale
    );
    let cfgs = LayerConfig::figure3();
    let mut head = vec!["App / Config".to_string()];
    head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
    for spec in h.apps() {
        let mut t = Table::new(head.clone());
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            for cfg in &cfgs {
                if proto == Protocol::Sc && cfg.proto != ssm_core::ProtoPreset::Original {
                    continue; // SC runs at original protocol costs only
                }
                note(&format!("{} {} {}", spec.name, proto.label(), cfg.label()));
                let r = h.run(&spec, proto, *cfg);
                let b = r.avg_breakdown();
                let mut cells = vec![format!("{} {}", proto.label(), cfg.label())];
                cells.extend(
                    Bucket::ALL
                        .iter()
                        .map(|k| format!("{:.1}%", 100.0 * b.fraction(*k))),
                );
                t.row(cells);
            }
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
}
