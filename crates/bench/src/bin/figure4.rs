//! Figure 4: execution-time breakdowns (busy / cache stall / data wait /
//! lock wait / barrier wait / protocol), averaged over processors, for the
//! main layer configurations.

use ssm_bench::report_failures;
use ssm_core::{LayerConfig, ProtoPreset, Protocol};
use ssm_stats::{Bucket, Table};
use ssm_sweep::prelude::*;

/// The (protocol, configuration) pairs of the figure, in row order.
fn points(cfgs: &[LayerConfig]) -> Vec<(Protocol, LayerConfig)> {
    let mut points = Vec::new();
    for proto in [Protocol::Hlrc, Protocol::Sc] {
        for cfg in cfgs {
            if proto == Protocol::Sc && cfg.proto != ProtoPreset::Original {
                continue; // SC runs at original protocol costs only
            }
            points.push((proto, *cfg));
        }
    }
    points
}

fn main() {
    let cli = SweepCli::parse();
    println!(
        "Figure 4: execution-time breakdowns (% of average processor time),\n\
         {}.\n",
        cli.describe()
    );
    let cfgs = LayerConfig::figure3();
    let apps = cli.apps();
    let cells: Vec<Cell> = apps
        .iter()
        .flat_map(|spec| {
            points(&cfgs)
                .into_iter()
                .map(|(proto, cfg)| Cell::new(spec.name, proto, cfg, cli.procs, cli.scale))
        })
        .collect();
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    let mut head = vec!["App / Config".to_string()];
    head.extend(Bucket::ALL.iter().map(|b| b.label().to_string()));
    for spec in &apps {
        let mut t = Table::new(head.clone());
        for (proto, cfg) in points(&cfgs) {
            let cell = Cell::new(spec.name, proto, cfg, cli.procs, cli.scale);
            let mut row = vec![format!("{} {}", proto.label(), cfg.label())];
            match run.record(&cell) {
                Some(rec) => {
                    let b = rec.avg_breakdown();
                    row.extend(
                        Bucket::ALL
                            .iter()
                            .map(|k| format!("{:.1}%", 100.0 * b.fraction(*k))),
                    );
                }
                None => row.extend(Bucket::ALL.iter().map(|_| "-".to_string())),
            }
            t.row(row);
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
}
