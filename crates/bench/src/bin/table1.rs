//! Table 1: applications, problem sizes and instrumentation costs.

use ssm_apps::catalog::suite;
use ssm_stats::Table;

fn main() {
    println!("Table 1: Applications, problem sizes and instrumentation costs.");
    println!("(Instrumentation cost: Shasta software access control, from the paper;");
    println!(" values the OCR dropped are reconstructed — see DESIGN.md.)\n");
    let mut t = Table::new(vec![
        "Application",
        "Paper size",
        "Instrum. cost",
        "SC granularity",
    ]);
    for a in suite() {
        if a.restructured_of.is_some() {
            continue; // Table 1 lists the originals
        }
        t.row(vec![
            a.name.to_string(),
            a.paper_size.to_string(),
            format!("{}%", a.instrumentation_pct),
            format!("{} B", a.sc_block),
        ]);
    }
    println!("{t}");
}
