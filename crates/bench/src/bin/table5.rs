//! Table 5: per-application summary for HLRC — which system layer matters
//! more from the base system, whether AB or HB beats BO, and the cheapest
//! configuration (if any) reaching ~10-fold speedup on 16 processors.

use ssm_bench::{fmt_speedup, note, Harness};
use ssm_core::{CommPreset, LayerConfig, Protocol, ProtoPreset};
use ssm_stats::Table;

fn cfg(comm: CommPreset, proto: ProtoPreset) -> LayerConfig {
    LayerConfig { comm, proto }
}

fn main() {
    let mut h = Harness::from_args();
    println!(
        "Table 5: per-application summary (HLRC), {} processors, scale {:?}.\n",
        h.procs, h.scale
    );
    // The ladder orders configurations from cheapest improvement to most
    // aggressive; the "10x config" column reports the first that reaches
    // 10-fold speedup.
    let ladder = [
        cfg(CommPreset::Achievable, ProtoPreset::Original),
        cfg(CommPreset::Achievable, ProtoPreset::Halfway),
        cfg(CommPreset::Halfway, ProtoPreset::Original),
        cfg(CommPreset::Halfway, ProtoPreset::Halfway),
        cfg(CommPreset::Achievable, ProtoPreset::Best),
        cfg(CommPreset::Best, ProtoPreset::Original),
        cfg(CommPreset::Halfway, ProtoPreset::Best),
        cfg(CommPreset::Best, ProtoPreset::Halfway),
        cfg(CommPreset::Best, ProtoPreset::Best),
        cfg(CommPreset::BetterThanBest, ProtoPreset::Best),
    ];
    let mut t = Table::new(vec![
        "Application",
        "AO",
        "AB",
        "BO",
        "HB",
        "more important",
        "AB|HB > BO?",
        "first 10x",
    ]);
    for spec in h.apps() {
        note(&format!("running {}", spec.name));
        let s = |h: &mut Harness, c: LayerConfig| {
            let r = h.run(&spec, Protocol::Hlrc, c);
            h.speedup(&spec, &r)
        };
        let ao = s(&mut h, cfg(CommPreset::Achievable, ProtoPreset::Original));
        let ab = s(&mut h, cfg(CommPreset::Achievable, ProtoPreset::Best));
        let bo = s(&mut h, cfg(CommPreset::Best, ProtoPreset::Original));
        let hb = s(&mut h, cfg(CommPreset::Halfway, ProtoPreset::Best));
        let more = if bo > ab { "communication" } else { "protocol" };
        let beats = if ab > bo || hb > bo { "yes" } else { "no" };
        let mut first10 = "none".to_string();
        for c in ladder {
            if s(&mut h, c) >= 10.0 {
                first10 = c.label();
                break;
            }
        }
        t.row(vec![
            spec.name.to_string(),
            fmt_speedup(ao),
            fmt_speedup(ab),
            fmt_speedup(bo),
            fmt_speedup(hb),
            more.to_string(),
            beats.to_string(),
            first10,
        ]);
    }
    println!("{t}");
}
