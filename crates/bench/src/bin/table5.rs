//! Table 5: per-application summary for HLRC — which system layer matters
//! more from the base system, whether AB or HB beats BO, and the cheapest
//! configuration (if any) reaching ~10-fold speedup on 16 processors.

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::{CommPreset, LayerConfig, ProtoPreset, Protocol};
use ssm_stats::Table;
use ssm_sweep::prelude::*;

fn cfg(comm: CommPreset, proto: ProtoPreset) -> LayerConfig {
    LayerConfig::of(comm, proto)
}

/// Configurations ordered from cheapest improvement to most aggressive;
/// the "first 10x" column reports the first that reaches 10-fold speedup.
const LADDER: [(CommPreset, ProtoPreset); 10] = [
    (CommPreset::Achievable, ProtoPreset::Original),
    (CommPreset::Achievable, ProtoPreset::Halfway),
    (CommPreset::Halfway, ProtoPreset::Original),
    (CommPreset::Halfway, ProtoPreset::Halfway),
    (CommPreset::Achievable, ProtoPreset::Best),
    (CommPreset::Best, ProtoPreset::Original),
    (CommPreset::Halfway, ProtoPreset::Best),
    (CommPreset::Best, ProtoPreset::Halfway),
    (CommPreset::Best, ProtoPreset::Best),
    (CommPreset::BetterThanBest, ProtoPreset::Best),
];

fn main() {
    let cli = SweepCli::parse();
    println!(
        "Table 5: per-application summary (HLRC), {}.\n",
        cli.describe()
    );
    let apps = cli.apps();
    let cell = |app: &str, comm, proto| {
        Cell::new(app, Protocol::Hlrc, cfg(comm, proto), cli.procs, cli.scale)
    };
    let mut cells = Vec::new();
    for spec in &apps {
        cells.push(Cell::baseline(spec.name, cli.scale));
        for (comm, proto) in LADDER {
            cells.push(cell(spec.name, comm, proto));
        }
    }
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    let mut t = Table::new(vec![
        "Application",
        "AO",
        "AB",
        "BO",
        "HB",
        "more important",
        "AB|HB > BO?",
        "first 10x",
    ]);
    for spec in &apps {
        let s = |comm, proto| run.speedup(&cell(spec.name, comm, proto));
        let ao = s(CommPreset::Achievable, ProtoPreset::Original);
        let ab = s(CommPreset::Achievable, ProtoPreset::Best);
        let bo = s(CommPreset::Best, ProtoPreset::Original);
        let hb = s(CommPreset::Halfway, ProtoPreset::Best);
        let (more, beats) = match (ab, bo, hb) {
            (Some(ab), Some(bo), Some(hb)) => (
                if bo > ab { "communication" } else { "protocol" },
                if ab > bo || hb > bo { "yes" } else { "no" },
            ),
            _ => ("-", "-"),
        };
        let first10 = LADDER
            .into_iter()
            .find(|&(comm, proto)| s(comm, proto) >= Some(10.0))
            .map_or_else(
                || "none".to_string(),
                |(comm, proto)| cfg(comm, proto).label(),
            );
        t.row(vec![
            spec.name.to_string(),
            fmt_speedup_opt(ao),
            fmt_speedup_opt(ab),
            fmt_speedup_opt(bo),
            fmt_speedup_opt(hb),
            more.to_string(),
            beats.to_string(),
            first10,
        ]);
    }
    println!("{t}");
}
