//! Figure 5: the impact of varying ONE communication parameter at a time
//! (host overhead, NI occupancy, I/O bus bandwidth, message handling),
//! holding the others at the achievable values — for both protocols.
//!
//! The paper's finding: fine-grained SC depends mostly on overhead and
//! occupancy, while HLRC depends mostly on bandwidth.

use ssm_bench::{fmt_speedup, note, Harness};
use ssm_core::{Protocol, SimBuilder};
use ssm_net::CommParams;
use ssm_stats::Table;

/// (label, multiplier-applied-to-achievable): 0 = free, 1/2, 1, 2.
const POINTS: [(&str, u64, u64); 4] = [("0x", 0, 1), ("0.5x", 1, 2), ("1x", 1, 1), ("2x", 2, 1)];

fn vary(param: &str, num: u64, den: u64) -> CommParams {
    let mut p = CommParams::achievable();
    let scale = |v: u64| v * num / den;
    match param {
        "host overhead" => p.host_overhead = scale(p.host_overhead),
        "NI occupancy" => p.ni_occupancy = scale(p.ni_occupancy),
        "msg handling" => p.msg_handling = scale(p.msg_handling),
        "I/O bus bw" => {
            // Varying the *cost* of bandwidth: 0x cost = infinite bw.
            p.io_bus_rate = if num == 0 {
                None
            } else {
                let (b, c) = p.io_bus_rate.expect("achievable has a rate");
                Some((b * den, c * num))
            };
        }
        _ => unreachable!(),
    }
    p
}

fn main() {
    let mut h = Harness::from_args();
    // The paper shows a subset of applications; default to a regular, an
    // irregular and the bandwidth-bound one unless --app filters.
    let default = ["FFT", "Ocean-Contiguous", "Barnes-original", "Water-Nsquared", "Radix"];
    let apps: Vec<_> = h
        .apps()
        .into_iter()
        .filter(|a| !h.filter.is_empty() || default.contains(&a.name))
        .collect();
    println!(
        "Figure 5: speedup vs a single communication parameter (others at\n\
         achievable), {} processors, scale {:?}.\n",
        h.procs, h.scale
    );
    for spec in apps {
        let base = h.baseline(&spec);
        let mut t = Table::new(vec!["Parameter", "0x", "0.5x", "1x", "2x"]);
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            for param in ["host overhead", "NI occupancy", "I/O bus bw", "msg handling"] {
                let mut cells = vec![format!("{} {}", proto.label(), param)];
                for (label, num, den) in POINTS {
                    note(&format!("{} {} {} {}", spec.name, proto.label(), param, label));
                    let w = spec.build(h.scale);
                    let r = SimBuilder::new(proto)
                        .procs(h.procs)
                        .comm(vary(param, num, den))
                        .sc_block(spec.sc_block)
                        .run(w.as_ref())
                        .expect_verified();
                    cells.push(fmt_speedup(r.speedup(base)));
                }
                t.row(cells);
            }
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
}
