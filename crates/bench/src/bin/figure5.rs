//! Figure 5: the impact of varying ONE communication parameter at a time
//! (host overhead, NI occupancy, I/O bus bandwidth, message handling),
//! holding the others at the achievable values — for both protocols.
//!
//! The paper's finding: fine-grained SC depends mostly on overhead and
//! occupancy, while HLRC depends mostly on bandwidth.

use ssm_bench::{fmt_speedup_opt, report_failures};
use ssm_core::Protocol;
use ssm_net::CommParams;
use ssm_stats::Table;
use ssm_sweep::prelude::*;

/// (label, multiplier-applied-to-achievable): 0 = free, 1/2, 1, 2.
const POINTS: [(&str, u64, u64); 4] = [("0x", 0, 1), ("0.5x", 1, 2), ("1x", 1, 1), ("2x", 2, 1)];

const PARAMS: [&str; 4] = [
    "host overhead",
    "NI occupancy",
    "I/O bus bw",
    "msg handling",
];

fn vary(param: &str, num: u64, den: u64) -> CommParams {
    let mut p = CommParams::achievable();
    let scale = |v: u64| v * num / den;
    match param {
        "host overhead" => p.host_overhead = scale(p.host_overhead),
        "NI occupancy" => p.ni_occupancy = scale(p.ni_occupancy),
        "msg handling" => p.msg_handling = scale(p.msg_handling),
        "I/O bus bw" => {
            // Varying the *cost* of bandwidth: 0x cost = infinite bw.
            p.io_bus_rate = if num == 0 {
                None
            } else {
                let (b, c) = p.io_bus_rate.expect("achievable has a rate");
                Some((b * den, c * num))
            };
        }
        _ => unreachable!(),
    }
    p
}

fn cell(cli: &SweepCli, app: &str, proto: Protocol, param: &str, num: u64, den: u64) -> Cell {
    Cell::new(
        app,
        proto,
        ssm_core::LayerConfig::base(),
        cli.procs,
        cli.scale,
    )
    .with_comm_params(vary(param, num, den))
}

fn main() {
    let cli = SweepCli::parse();
    // The paper shows a subset of applications; default to a regular, an
    // irregular and the bandwidth-bound one unless --app filters.
    let default = [
        "FFT",
        "Ocean-Contiguous",
        "Barnes-original",
        "Water-Nsquared",
        "Radix",
    ];
    let apps: Vec<_> = cli
        .apps()
        .into_iter()
        .filter(|a| !cli.filter.is_empty() || default.contains(&a.name))
        .collect();
    println!(
        "Figure 5: speedup vs a single communication parameter (others at\n\
         achievable), {}.\n",
        cli.describe()
    );
    let mut cells = Vec::new();
    for spec in &apps {
        cells.push(Cell::baseline(spec.name, cli.scale));
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            for param in PARAMS {
                for (_, num, den) in POINTS {
                    cells.push(cell(&cli, spec.name, proto, param, num, den));
                }
            }
        }
    }
    let run = Sweep::enumerate(&cells).configure(&cli).run();
    report_failures(&run);

    for spec in &apps {
        let mut t = Table::new(vec!["Parameter", "0x", "0.5x", "1x", "2x"]);
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            for param in PARAMS {
                let mut row = vec![format!("{} {}", proto.label(), param)];
                for (_, num, den) in POINTS {
                    let c = cell(&cli, spec.name, proto, param, num, den);
                    row.push(fmt_speedup_opt(run.speedup(&c)));
                }
                t.row(row);
            }
        }
        println!("--- {} ---", spec.name);
        println!("{t}");
    }
}
