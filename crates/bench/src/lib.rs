//! Shared rendering/timing utilities for the `ssm` benchmark binaries.
//!
//! Sweep execution (cell enumeration, parallelism, caching, the common
//! command line) lives in [`ssm_sweep`]; the binaries in `src/bin/` only
//! enumerate cells and render figures/tables from the sweep's results.
//! This crate keeps the few pieces that are about *presentation* and the
//! std-only timing loop the `benches/` targets use (the hermetic build has
//! no Criterion).
//!
//! Run e.g. `cargo run --release -p ssm-bench --bin figure3 -- --jobs 8`.

use std::time::Instant;

/// Formats a speedup cell.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}")
}

/// Formats an optional speedup cell (`-` for a failed/missing cell).
pub fn fmt_speedup_opt(s: Option<f64>) -> String {
    s.map_or_else(|| "-".to_string(), fmt_speedup)
}

/// Prints a progress note to stderr (kept out of the table output).
pub fn note(msg: &str) {
    eprintln!("[ssm-bench] {msg}");
}

/// Reports every failed, timed-out or unverified cell of a sweep to
/// stderr, so a `-` in a rendered table is always explained.
pub fn report_failures(run: &ssm_sweep::SweepRun) {
    use ssm_sweep::CellStatus;
    for o in &run.outcomes {
        let tries = if o.attempts > 1 {
            format!(" (after {} attempts)", o.attempts)
        } else {
            String::new()
        };
        match &o.status {
            CellStatus::Done(rec) if !rec.verified => note(&format!(
                "{}: verification FAILED: {}",
                o.cell.label(),
                rec.verify_error.as_deref().unwrap_or("unknown")
            )),
            CellStatus::Failed(e) => note(&format!("{}: FAILED{tries}: {e}", o.cell.label())),
            CellStatus::TimedOut(d) => {
                note(&format!("{}: timed out after {d:?}{tries}", o.cell.label()));
            }
            CellStatus::Done(_) => {}
        }
    }
    if run.abandoned_threads > 0 {
        note(&format!(
            "{} abandoned simulation thread(s) from timed-out cells are still running in this process",
            run.abandoned_threads
        ));
    }
}

/// A measured timing sample from [`bench`].
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Iterations per sample batch.
    pub iters: u32,
    /// Best (minimum) nanoseconds per iteration across batches.
    pub best_ns: f64,
    /// Mean nanoseconds per iteration across batches.
    pub mean_ns: f64,
}

/// Measures `f` and prints one `name: best .. mean ns/iter` line — a
/// dependency-free stand-in for a micro-benchmark harness. The workload's
/// result is returned through a volatile sink so the optimizer cannot
/// delete it.
///
/// Calibrates the iteration count so one batch takes roughly
/// `SSM_BENCH_MS` milliseconds (default 50), then times `SSM_BENCH_BATCHES`
/// batches (default 5).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Sample {
    let target_ms: u64 = std::env::var("SSM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let batches: u32 = std::env::var("SSM_BENCH_BATCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1);

    // Calibrate: double the batch size until it costs >= target/4.
    let mut iters: u32 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() as u64 * 4 >= target_ms || iters >= 1 << 20 {
            let per = (elapsed.as_nanos() as f64 / f64::from(iters)).max(1.0);
            let want = (target_ms as f64 * 1e6 / per).clamp(1.0, f64::from(1u32 << 20));
            iters = want as u32;
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut best = f64::INFINITY;
    let mut sum = 0.0f64;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per = t.elapsed().as_nanos() as f64 / f64::from(iters);
        best = best.min(per);
        sum += per;
    }
    let sample = Sample {
        iters,
        best_ns: best,
        mean_ns: sum / f64::from(batches),
    };
    println!(
        "{name}: {:>12} ns/iter (best), {:>12} ns/iter (mean), {} iters x {batches}",
        format_ns(sample.best_ns),
        format_ns(sample.mean_ns),
        iters
    );
    sample
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_speedup_renders() {
        assert_eq!(fmt_speedup(12.3456), "12.35");
        assert_eq!(fmt_speedup_opt(Some(2.0)), "2.00");
        assert_eq!(fmt_speedup_opt(None), "-");
    }

    #[test]
    fn bench_measures_and_returns() {
        std::env::set_var("SSM_BENCH_MS", "1");
        std::env::set_var("SSM_BENCH_BATCHES", "2");
        let s = bench("test/noop", || 1 + 1);
        assert!(s.iters >= 1);
        assert!(s.best_ns > 0.0);
        assert!(s.mean_ns >= s.best_ns);
    }
}
