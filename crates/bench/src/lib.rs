//! Benchmark harness for the `ssm` reproduction: shared runner utilities
//! used by the per-table/per-figure binaries (`src/bin/`) and the
//! Criterion micro-benchmarks (`benches/`).
//!
//! Every binary accepts the same flags:
//!
//! * `--procs N` — simulated processors (default 16, the paper's scale);
//! * `--scale test|bench|full` — problem sizes (default `bench`; see
//!   `ssm_apps::catalog::Scale`);
//! * `--app NAME` — restrict to applications whose name contains `NAME`.
//!
//! Run e.g. `cargo run --release -p ssm-bench --bin figure3`.

use std::collections::HashMap;

use ssm_apps::catalog::{suite, AppSpec, Scale};
use ssm_core::{sequential_baseline, LayerConfig, Protocol, RunResult, SimBuilder};

/// Command-line configuration shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Simulated processor count.
    pub procs: usize,
    /// Problem-size scale.
    pub scale: Scale,
    /// Substring filter on application names (empty = all).
    pub filter: String,
    /// Cached sequential baselines, keyed by app name.
    baselines: HashMap<String, u64>,
}

impl Harness {
    /// Parses `--procs`, `--scale` and `--app` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut procs = 16usize;
        let mut scale = Scale::Bench;
        let mut filter = String::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--procs" => {
                    procs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--procs needs a number");
                }
                "--scale" => {
                    scale = match args.next().as_deref() {
                        Some("test") => Scale::Test,
                        Some("bench") => Scale::Bench,
                        Some("full") => Scale::Full,
                        other => panic!("--scale test|bench|full, got {other:?}"),
                    };
                }
                "--app" => {
                    filter = args.next().expect("--app needs a name");
                }
                other => panic!("unknown flag {other}; use --procs/--scale/--app"),
            }
        }
        Harness {
            procs,
            scale,
            filter,
            baselines: HashMap::new(),
        }
    }

    /// A harness with explicit settings (used by tests).
    pub fn fixed(procs: usize, scale: Scale) -> Self {
        Harness {
            procs,
            scale,
            filter: String::new(),
            baselines: HashMap::new(),
        }
    }

    /// The selected applications.
    pub fn apps(&self) -> Vec<AppSpec> {
        suite()
            .into_iter()
            .filter(|a| self.filter.is_empty() || a.name.contains(&self.filter))
            .collect()
    }

    /// The sequential baseline (best sequential version) for `spec`,
    /// cached across calls.
    pub fn baseline(&mut self, spec: &AppSpec) -> u64 {
        let scale = self.scale;
        if let Some(&b) = self.baselines.get(spec.name) {
            return b;
        }
        let w = spec.build(scale);
        let b = sequential_baseline(w.as_ref()).total_cycles;
        self.baselines.insert(spec.name.to_string(), b);
        b
    }

    /// Runs `spec` under `protocol` at layer configuration `cfg`.
    /// SC automatically uses the application's best granularity.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails verification — a harness run must
    /// never report timings for a wrong answer.
    pub fn run(&self, spec: &AppSpec, protocol: Protocol, cfg: LayerConfig) -> RunResult {
        let w = spec.build(self.scale);
        SimBuilder::new(protocol)
            .procs(self.procs)
            .layers(cfg)
            .sc_block(spec.sc_block)
            .run(w.as_ref())
            .expect_verified()
    }

    /// Runs the IDEAL machine for `spec` (the paper's topmost bar).
    pub fn ideal(&self, spec: &AppSpec) -> RunResult {
        let w = spec.build(self.scale);
        SimBuilder::new(Protocol::Ideal)
            .procs(self.procs)
            .run(w.as_ref())
            .expect_verified()
    }

    /// Speedup of `r` for `spec` against the cached baseline.
    pub fn speedup(&mut self, spec: &AppSpec, r: &RunResult) -> f64 {
        let b = self.baseline(spec);
        r.speedup(b)
    }
}

/// Formats a speedup cell.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}")
}

/// Prints a progress note to stderr (kept out of the table output).
pub fn note(msg: &str) {
    eprintln!("[ssm-bench] {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_cell() {
        let mut h = Harness::fixed(2, Scale::Test);
        let spec = ssm_apps::catalog::by_name("LU-Contiguous").expect("LU");
        let r = h.run(&spec, Protocol::Hlrc, LayerConfig::base());
        let s = h.speedup(&spec, &r);
        assert!(s > 0.0);
        // Baseline is cached.
        assert_eq!(h.baselines.len(), 1);
        let _ = h.baseline(&spec);
        assert_eq!(h.baselines.len(), 1);
    }

    #[test]
    fn filter_selects_apps() {
        let mut h = Harness::fixed(2, Scale::Test);
        h.filter = "Water".to_string();
        let apps = h.apps();
        assert_eq!(apps.len(), 2);
        assert!(apps.iter().all(|a| a.name.contains("Water")));
    }
}
