//! Reusable synchronization bookkeeping for protocol implementations: a
//! FIFO lock table and an episode-counting barrier table.
//!
//! These structures hold *semantic* state only (who holds what, who waits);
//! the protocols decide what messages and costs each transition incurs.

use crate::shmem::{BarrierId, LockId};

/// State of one lock.
#[derive(Debug, Clone, Default)]
struct LockState {
    holder: Option<usize>,
    waiters: Vec<usize>, // FIFO
}

/// A FIFO lock table covering `LockId(0)..LockId(n)`.
///
/// # Example
///
/// ```rust
/// use ssm_proto::{LockTable, LockId};
/// let mut t = LockTable::new(1);
/// assert!(t.acquire(LockId(0), 3));        // granted immediately
/// assert!(!t.acquire(LockId(0), 5));       // queued
/// assert_eq!(t.release(LockId(0), 3), Some(5)); // handed to the waiter
/// assert_eq!(t.release(LockId(0), 5), None);
/// ```
#[derive(Debug, Clone)]
pub struct LockTable {
    locks: Vec<LockState>,
}

impl LockTable {
    /// Creates a table of `n` free locks.
    pub fn new(n: usize) -> Self {
        LockTable {
            locks: vec![LockState::default(); n],
        }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Attempts to acquire for processor `p`. Returns `true` if granted
    /// immediately, `false` if `p` was queued.
    ///
    /// # Panics
    ///
    /// Panics if `p` already holds or already waits for the lock.
    pub fn acquire(&mut self, lock: LockId, p: usize) -> bool {
        let s = &mut self.locks[lock.0 as usize];
        assert_ne!(s.holder, Some(p), "recursive lock acquire by P{p}");
        assert!(!s.waiters.contains(&p), "duplicate lock wait by P{p}");
        if s.holder.is_none() {
            s.holder = Some(p);
            true
        } else {
            s.waiters.push(p);
            false
        }
    }

    /// Releases the lock held by `p`. Returns the next holder if a waiter
    /// was queued (the lock is handed over directly, FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `p` does not hold the lock.
    pub fn release(&mut self, lock: LockId, p: usize) -> Option<usize> {
        let s = &mut self.locks[lock.0 as usize];
        assert_eq!(s.holder, Some(p), "P{p} released a lock it does not hold");
        if s.waiters.is_empty() {
            s.holder = None;
            None
        } else {
            let next = s.waiters.remove(0);
            s.holder = Some(next);
            Some(next)
        }
    }

    /// Current holder of `lock`, if any.
    pub fn holder(&self, lock: LockId) -> Option<usize> {
        self.locks[lock.0 as usize].holder
    }

    /// Number of processors queued on `lock`.
    pub fn waiters(&self, lock: LockId) -> usize {
        self.locks[lock.0 as usize].waiters.len()
    }
}

/// State of one barrier.
#[derive(Debug, Clone, Default)]
struct BarrierState {
    arrived: Vec<usize>,
    episode: u64,
}

/// An episode-counting barrier table covering `BarrierId(0)..BarrierId(n)`.
///
/// # Example
///
/// ```rust
/// use ssm_proto::{BarrierTable, BarrierId};
/// let mut t = BarrierTable::new(1, 2);
/// assert_eq!(t.arrive(BarrierId(0), 0), None);
/// assert_eq!(t.arrive(BarrierId(0), 1), Some(vec![0, 1]));
/// assert_eq!(t.episodes(BarrierId(0)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BarrierTable {
    barriers: Vec<BarrierState>,
    nprocs: usize,
}

impl BarrierTable {
    /// Creates a table of `n` barriers for `nprocs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs == 0`.
    pub fn new(n: usize, nprocs: usize) -> Self {
        assert!(nprocs > 0);
        BarrierTable {
            barriers: vec![BarrierState::default(); n],
            nprocs,
        }
    }

    /// Number of barriers.
    pub fn len(&self) -> usize {
        self.barriers.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.barriers.is_empty()
    }

    /// Records `p`'s arrival. Returns `Some(arrival_order)` — every
    /// processor in arrival order — if `p` completed the episode (the
    /// barrier then resets for reuse), `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `p` arrives twice in one episode.
    pub fn arrive(&mut self, barrier: BarrierId, p: usize) -> Option<Vec<usize>> {
        let s = &mut self.barriers[barrier.0 as usize];
        assert!(
            !s.arrived.contains(&p),
            "P{p} arrived twice at barrier {barrier:?}"
        );
        s.arrived.push(p);
        if s.arrived.len() == self.nprocs {
            s.episode += 1;
            Some(std::mem::take(&mut s.arrived))
        } else {
            None
        }
    }

    /// How many processors are currently waiting at `barrier`.
    pub fn waiting(&self, barrier: BarrierId) -> usize {
        self.barriers[barrier.0 as usize].arrived.len()
    }

    /// Completed episodes of `barrier`.
    pub fn episodes(&self, barrier: BarrierId) -> u64 {
        self.barriers[barrier.0 as usize].episode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fifo_handover() {
        let mut t = LockTable::new(2);
        assert!(t.acquire(LockId(1), 0));
        assert!(!t.acquire(LockId(1), 1));
        assert!(!t.acquire(LockId(1), 2));
        assert_eq!(t.waiters(LockId(1)), 2);
        assert_eq!(t.release(LockId(1), 0), Some(1));
        assert_eq!(t.holder(LockId(1)), Some(1));
        assert_eq!(t.release(LockId(1), 1), Some(2));
        assert_eq!(t.release(LockId(1), 2), None);
        assert_eq!(t.holder(LockId(1)), None);
    }

    #[test]
    fn independent_locks() {
        let mut t = LockTable::new(2);
        assert!(t.acquire(LockId(0), 0));
        assert!(t.acquire(LockId(1), 1));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_without_hold_panics() {
        let mut t = LockTable::new(1);
        let _ = t.release(LockId(0), 0);
    }

    #[test]
    #[should_panic(expected = "recursive")]
    fn recursive_acquire_panics() {
        let mut t = LockTable::new(1);
        assert!(t.acquire(LockId(0), 0));
        let _ = t.acquire(LockId(0), 0);
    }

    #[test]
    fn barrier_reuse_across_episodes() {
        let mut t = BarrierTable::new(1, 3);
        assert_eq!(t.arrive(BarrierId(0), 2), None);
        assert_eq!(t.arrive(BarrierId(0), 0), None);
        assert_eq!(t.waiting(BarrierId(0)), 2);
        assert_eq!(t.arrive(BarrierId(0), 1), Some(vec![2, 0, 1]));
        assert_eq!(t.waiting(BarrierId(0)), 0);
        // Second episode works after reset.
        assert_eq!(t.arrive(BarrierId(0), 0), None);
        assert_eq!(t.arrive(BarrierId(0), 1), None);
        assert!(t.arrive(BarrierId(0), 2).is_some());
        assert_eq!(t.episodes(BarrierId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut t = BarrierTable::new(1, 3);
        let _ = t.arrive(BarrierId(0), 0);
        let _ = t.arrive(BarrierId(0), 0);
    }

    #[test]
    fn single_proc_barrier_completes_immediately() {
        let mut t = BarrierTable::new(1, 1);
        assert_eq!(t.arrive(BarrierId(0), 0), Some(vec![0]));
    }
}
