//! Thread-side locality hints that let application threads *run ahead* of
//! the simulator.
//!
//! The baton scheme charges two OS context switches per yielded operation.
//! Most shared accesses in a steady-state run are local (a cached page, a
//! home-node access), and the simulator's decision for them never unblocks
//! another processor — so the handoff is pure overhead. A [`HintBoard`]
//! records, per processor and per page, whether the *last* access of each
//! kind completed without sending a single message; the batching `Proc`
//! (see [`crate::vm`]) keeps accumulating operations while the hints
//! predict local completion and hands the whole run to the simulator in
//! one baton exchange.
//!
//! # Hints never affect results
//!
//! The driver replays a batch one operation per scheduling step, in the
//! exact order the thread issued them, at the same simulated times as an
//! unbatched run — so simulated time, checksums and every counter except
//! the handoff/batching counters themselves are byte-identical regardless
//! of hint accuracy. A stale "local" hint merely places a miss in the
//! middle of a batch instead of at its end; a missing hint merely costs an
//! extra handoff. Hints are a host-time policy, not simulation state.
//!
//! # Safety
//!
//! The board is shared between the simulator (which sets and revokes
//! hints) and application threads (which query them while holding the
//! baton). The baton guarantees at most one of these parties executes at
//! any instant, so the interior mutability is sound; like
//! [`crate::SharedMem`], debug builds verify the guarantee with an
//! entrants counter.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::page_of;

/// Hint bit: reads of the page predicted to complete locally.
const READ: u8 = 1;
/// Hint bit: writes of the page predicted to complete locally.
const WRITE: u8 = 2;

/// Per-processor, page-granular locality hints (see module docs).
pub struct HintBoard {
    /// One page → hint-bits map per processor.
    bits: UnsafeCell<Vec<HashMap<u64, u8>>>,
    /// Debug guard: number of threads currently inside an access.
    entrants: AtomicUsize,
}

// SAFETY: the baton protocol guarantees at most one thread (simulator or
// one application thread) touches the board at a time; debug builds check
// this with `entrants`.
unsafe impl Sync for HintBoard {}
unsafe impl Send for HintBoard {}

impl HintBoard {
    /// Creates an empty board for `nprocs` processors: nothing is
    /// predicted local until the simulator says so.
    pub fn new(nprocs: usize) -> Self {
        HintBoard {
            bits: UnsafeCell::new(vec![HashMap::new(); nprocs]),
            entrants: AtomicUsize::new(0),
        }
    }

    fn enter(&self) {
        let prev = self.entrants.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(prev, 0, "concurrent HintBoard access: baton violated");
    }

    fn exit(&self) {
        self.entrants.fetch_sub(1, Ordering::SeqCst);
    }

    fn with<R>(&self, f: impl FnOnce(&mut Vec<HashMap<u64, u8>>) -> R) -> R {
        self.enter();
        // SAFETY: exclusive access guaranteed by the baton (checked above).
        let r = f(unsafe { &mut *self.bits.get() });
        self.exit();
        r
    }

    fn pages(addr: u64, bytes: u64) -> std::ops::RangeInclusive<u64> {
        let last = addr.saturating_add(bytes.max(1) - 1);
        page_of(addr)..=page_of(last)
    }

    /// Whether every page of `[addr, addr+bytes)` predicts a local read
    /// for processor `p`.
    pub fn predicts_read_hit(&self, p: usize, addr: u64, bytes: u64) -> bool {
        self.predicts(p, addr, bytes, READ)
    }

    /// Whether every page of `[addr, addr+bytes)` predicts a local write
    /// for processor `p`.
    pub fn predicts_write_hit(&self, p: usize, addr: u64, bytes: u64) -> bool {
        self.predicts(p, addr, bytes, WRITE)
    }

    fn predicts(&self, p: usize, addr: u64, bytes: u64, mask: u8) -> bool {
        self.with(|bits| {
            let map = &bits[p];
            Self::pages(addr, bytes).all(|pg| map.get(&pg).is_some_and(|b| b & mask != 0))
        })
    }

    /// Records that an access of `[addr, addr+bytes)` by `p` completed
    /// without messages. A local write implies later reads are local too;
    /// a local read promises nothing about writes.
    pub fn observe_local(&self, p: usize, addr: u64, bytes: u64, write: bool) {
        let mask = if write { READ | WRITE } else { READ };
        self.with(|bits| {
            let map = &mut bits[p];
            for pg in Self::pages(addr, bytes) {
                *map.entry(pg).or_insert(0) |= mask;
            }
        });
    }

    /// Revokes all hints `p` holds on pages overlapping `[addr, addr+len)`
    /// — called when protocol state invalidates `p`'s local copy.
    pub fn revoke(&self, p: usize, addr: u64, len: u64) {
        self.with(|bits| {
            let map = &mut bits[p];
            for pg in Self::pages(addr, len) {
                map.remove(&pg);
            }
        });
    }

    /// Drops every hint for processor `p` (e.g. at a barrier, where HLRC
    /// invalidates according to incoming write notices).
    pub fn revoke_all(&self, p: usize) {
        self.with(|bits| bits[p].clear());
    }

    /// Number of pages `p` currently holds any hint for (diagnostics).
    pub fn hinted_pages(&self, p: usize) -> usize {
        self.with(|bits| bits[p].len())
    }
}

impl std::fmt::Debug for HintBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HintBoard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn read_hint_does_not_imply_write() {
        let b = HintBoard::new(2);
        assert!(!b.predicts_read_hit(0, 100, 4));
        b.observe_local(0, 100, 4, false);
        assert!(b.predicts_read_hit(0, 100, 4));
        assert!(!b.predicts_write_hit(0, 100, 4));
        // Other processors are unaffected.
        assert!(!b.predicts_read_hit(1, 100, 4));
    }

    #[test]
    fn write_hint_implies_read() {
        let b = HintBoard::new(1);
        b.observe_local(0, 5000, 8, true);
        assert!(b.predicts_write_hit(0, 5000, 8));
        assert!(b.predicts_read_hit(0, 5000, 8));
    }

    #[test]
    fn hints_are_page_granular_and_span_pages() {
        let b = HintBoard::new(1);
        // An access spanning the page-0/page-1 boundary hints both pages.
        b.observe_local(0, PAGE_SIZE - 4, 8, false);
        assert!(b.predicts_read_hit(0, 0, 4));
        assert!(b.predicts_read_hit(0, PAGE_SIZE, 4));
        assert!(!b.predicts_read_hit(0, 2 * PAGE_SIZE, 4));
        // A range query fails if any page lacks the hint.
        assert!(!b.predicts_read_hit(0, PAGE_SIZE, PAGE_SIZE + 4));
    }

    #[test]
    fn revoke_clears_both_kinds() {
        let b = HintBoard::new(1);
        b.observe_local(0, 0, 4, true);
        b.revoke(0, 2, 1);
        assert!(!b.predicts_read_hit(0, 0, 4));
        assert!(!b.predicts_write_hit(0, 0, 4));
        assert_eq!(b.hinted_pages(0), 0);
    }

    #[test]
    fn revoke_all_is_per_processor() {
        let b = HintBoard::new(2);
        b.observe_local(0, 0, 4, false);
        b.observe_local(1, 0, 4, false);
        b.revoke_all(0);
        assert!(!b.predicts_read_hit(0, 0, 4));
        assert!(b.predicts_read_hit(1, 0, 4));
    }
}
