//! The programming-model API that application code runs against.
//!
//! Applications are ordinary Rust functions that receive a [`Proc`] — the
//! handle for "this simulated processor". Every shared-memory access, lock,
//! barrier and block of computation goes through it; each call may hand the
//! baton to the simulator (see `ssm-engine::threads`).
//!
//! `compute` calls are *accumulated* locally and flushed on the next real
//! operation, so tight loops that interleave arithmetic with shared reads
//! cost only one baton handover per shared access.

use std::cell::Cell;

use ssm_engine::Yielder;

use crate::shmem::{BarrierId, LockId};

/// An operation yielded by an application thread to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The processor computes for `c` cycles (1-IPC model: `c` instructions).
    Compute(u64),
    /// Read `bytes` bytes at `addr` in the shared address space.
    Read { addr: u64, bytes: u64 },
    /// Write `bytes` bytes at `addr` in the shared address space.
    Write { addr: u64, bytes: u64 },
    /// Acquire a lock.
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// Enter a barrier episode.
    Barrier(BarrierId),
}

/// The per-processor handle passed to application code.
pub struct Proc<'a> {
    y: &'a Yielder<Op>,
    pid: usize,
    nprocs: usize,
    pending: Cell<u64>,
}

impl<'a> Proc<'a> {
    /// Wraps a yielder; used by the simulation driver when spawning
    /// application threads.
    pub fn new(y: &'a Yielder<Op>, pid: usize, nprocs: usize) -> Self {
        Proc {
            y,
            pid,
            nprocs,
            pending: Cell::new(0),
        }
    }

    /// This processor's id, `0..nprocs`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processors in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Charges `cycles` of computation (deferred until the next operation).
    pub fn compute(&self, cycles: u64) {
        self.pending.set(self.pending.get() + cycles);
    }

    /// Flushes deferred computation; called automatically before any other
    /// operation and by the driver when the thread body returns.
    pub fn flush(&self) {
        let c = self.pending.replace(0);
        if c > 0 {
            self.y.yield_op(Op::Compute(c));
        }
    }

    /// Simulated shared-memory read of `[addr, addr+bytes)`.
    pub fn touch_read(&self, addr: u64, bytes: u64) {
        self.flush();
        self.y.yield_op(Op::Read { addr, bytes });
    }

    /// Simulated shared-memory write of `[addr, addr+bytes)`.
    pub fn touch_write(&self, addr: u64, bytes: u64) {
        self.flush();
        self.y.yield_op(Op::Write { addr, bytes });
    }

    /// Acquires `lock` (blocks in simulated time until granted).
    pub fn lock(&self, lock: LockId) {
        self.flush();
        self.y.yield_op(Op::Lock(lock));
    }

    /// Releases `lock`.
    pub fn unlock(&self, lock: LockId) {
        self.flush();
        self.y.yield_op(Op::Unlock(lock));
    }

    /// Enters `barrier`; returns when all processors have arrived.
    pub fn barrier(&self, barrier: BarrierId) {
        self.flush();
        self.y.yield_op(Op::Barrier(barrier));
    }

    /// Convenience: run `f` under `lock`.
    pub fn with_lock<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.lock(lock);
        let r = f();
        self.unlock(lock);
        r
    }
}

impl std::fmt::Debug for Proc<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("pid", &self.pid)
            .field("nprocs", &self.nprocs)
            .field("pending_compute", &self.pending.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_engine::{Resumed, ThreadPool};

    #[test]
    fn compute_batches_until_flush() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 0, 1);
            p.compute(10);
            p.compute(5);
            p.touch_read(0, 4); // flush(15) then read
            p.compute(3);
            p.flush();
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Compute(15)));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Read { addr: 0, bytes: 4 }));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Compute(3)));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn lock_ops_in_order() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 2, 4);
            assert_eq!(p.pid(), 2);
            assert_eq!(p.nprocs(), 4);
            p.with_lock(LockId(7), || {});
            p.barrier(BarrierId(1));
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Lock(LockId(7))));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Unlock(LockId(7))));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Barrier(BarrierId(1))));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn zero_compute_is_elided() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 0, 1);
            p.compute(0);
            p.touch_write(8, 8);
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Write { addr: 8, bytes: 8 }));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }
}
