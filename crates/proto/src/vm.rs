//! The programming-model API that application code runs against.
//!
//! Applications are ordinary Rust functions that receive a [`Proc`] — the
//! handle for "this simulated processor". Every shared-memory access, lock,
//! barrier and block of computation goes through it; each call may hand the
//! baton to the simulator (see `ssm-engine::threads`).
//!
//! `compute` calls are *accumulated* locally and flushed on the next real
//! operation, so tight loops that interleave arithmetic with shared reads
//! cost only one baton handover per shared access.
//!
//! With a [`crate::HintBoard`] installed ([`Proc::batched`]), the handle
//! goes further: operations that the hints predict will complete locally —
//! `Compute` blocks, reads/writes of pages whose last access sent no
//! messages, and lock releases — are *buffered* and handed to the
//! simulator as one batch ([`ssm_engine::Yielder::yield_batch`]). The
//! driver replays the batch one operation per scheduling step, in issue
//! order, so simulated results are byte-identical to the unbatched run
//! (see `hint.rs` for why hint accuracy cannot affect results). A batch
//! is flushed — one baton handoff — when:
//!
//! * a **sync** operation is issued (`Lock`, `Barrier`): the thread must
//!   block until the simulator grants it ([`FLUSH_SYNC`]);
//! * a read/write **misses** in the hints: the thread blocks so the hint
//!   is fresh when it resumes ([`FLUSH_MISS`]);
//! * the batch reaches [`BATCH_CAP`] operations ([`FLUSH_CAP`]);
//! * the thread body returns ([`FLUSH_END`]).

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use ssm_engine::Yielder;

use crate::hint::HintBoard;
use crate::shmem::{BarrierId, LockId};

/// An operation yielded by an application thread to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The processor computes for `c` cycles (1-IPC model: `c` instructions).
    Compute(u64),
    /// Read `bytes` bytes at `addr` in the shared address space.
    Read { addr: u64, bytes: u64 },
    /// Write `bytes` bytes at `addr` in the shared address space.
    Write { addr: u64, bytes: u64 },
    /// Acquire a lock.
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// Enter a barrier episode.
    Barrier(BarrierId),
}

/// Most operations a batch may hold before it is handed over anyway —
/// bounds both the driver's queue memory and how far a thread can run
/// ahead of simulated time.
pub const BATCH_CAP: usize = 256;

/// Batch-flush cause: a sync operation (`Lock`/`Barrier`) ended the run.
pub const FLUSH_SYNC: u32 = 0;
/// Batch-flush cause: a read/write missed in the locality hints.
pub const FLUSH_MISS: u32 = 1;
/// Batch-flush cause: the batch reached [`BATCH_CAP`] operations.
pub const FLUSH_CAP: u32 = 2;
/// Batch-flush cause: the thread body returned.
pub const FLUSH_END: u32 = 3;

/// Batching state, present only when the driver installs a hint board.
struct BatchState {
    ops: RefCell<Vec<Op>>,
    board: Arc<HintBoard>,
}

/// The per-processor handle passed to application code.
pub struct Proc<'a> {
    y: &'a Yielder<Op>,
    pid: usize,
    nprocs: usize,
    pending: Cell<u64>,
    batch: Option<BatchState>,
}

impl<'a> Proc<'a> {
    /// Wraps a yielder; used by the simulation driver when spawning
    /// application threads. Every operation is one baton handoff.
    pub fn new(y: &'a Yielder<Op>, pid: usize, nprocs: usize) -> Self {
        Proc {
            y,
            pid,
            nprocs,
            pending: Cell::new(0),
            batch: None,
        }
    }

    /// Like [`Proc::new`], but accumulates hint-predicted-local operations
    /// into batches (see module docs). Simulated results are identical;
    /// only the number of baton handoffs changes.
    pub fn batched(y: &'a Yielder<Op>, pid: usize, nprocs: usize, board: Arc<HintBoard>) -> Self {
        Proc {
            y,
            pid,
            nprocs,
            pending: Cell::new(0),
            batch: Some(BatchState {
                ops: RefCell::new(Vec::new()),
                board,
            }),
        }
    }

    /// This processor's id, `0..nprocs`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Number of processors in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Charges `cycles` of computation (deferred until the next operation).
    pub fn compute(&self, cycles: u64) {
        self.pending.set(self.pending.get() + cycles);
    }

    /// Flushes deferred computation; called automatically before any other
    /// operation and by the driver when the thread body returns. In
    /// batching mode the `Compute` op joins the current batch instead of
    /// forcing a handoff.
    pub fn flush(&self) {
        let c = self.pending.replace(0);
        if c > 0 {
            match &self.batch {
                None => self.y.yield_op(Op::Compute(c)),
                Some(b) => self.buffer(b, Op::Compute(c)),
            }
        }
    }

    /// Buffers `op` into the current batch, handing it over if the cap is
    /// reached.
    fn buffer(&self, b: &BatchState, op: Op) {
        let mut ops = b.ops.borrow_mut();
        ops.push(op);
        if ops.len() >= BATCH_CAP {
            let batch = std::mem::take(&mut *ops);
            drop(ops);
            self.y.yield_batch(batch, FLUSH_CAP);
        }
    }

    /// Buffers `op` as the *last* operation of the current batch and hands
    /// the whole run over; the thread blocks until the simulator has
    /// replayed every buffered operation.
    fn seal(&self, b: &BatchState, op: Op, cause: u32) {
        let mut batch = std::mem::take(&mut *b.ops.borrow_mut());
        batch.push(op);
        self.y.yield_batch(batch, cause);
    }

    /// Simulated shared-memory read of `[addr, addr+bytes)`.
    pub fn touch_read(&self, addr: u64, bytes: u64) {
        self.flush();
        let op = Op::Read { addr, bytes };
        match &self.batch {
            None => self.y.yield_op(op),
            Some(b) if b.board.predicts_read_hit(self.pid, addr, bytes) => self.buffer(b, op),
            Some(b) => self.seal(b, op, FLUSH_MISS),
        }
    }

    /// Simulated shared-memory write of `[addr, addr+bytes)`.
    pub fn touch_write(&self, addr: u64, bytes: u64) {
        self.flush();
        let op = Op::Write { addr, bytes };
        match &self.batch {
            None => self.y.yield_op(op),
            Some(b) if b.board.predicts_write_hit(self.pid, addr, bytes) => self.buffer(b, op),
            Some(b) => self.seal(b, op, FLUSH_MISS),
        }
    }

    /// Acquires `lock` (blocks in simulated time until granted).
    pub fn lock(&self, lock: LockId) {
        self.flush();
        let op = Op::Lock(lock);
        match &self.batch {
            None => self.y.yield_op(op),
            Some(b) => self.seal(b, op, FLUSH_SYNC),
        }
    }

    /// Releases `lock`. Non-blocking, so in batching mode it joins the
    /// batch: the driver still replays it in issue order, before any
    /// waiter is granted the lock.
    pub fn unlock(&self, lock: LockId) {
        self.flush();
        let op = Op::Unlock(lock);
        match &self.batch {
            None => self.y.yield_op(op),
            Some(b) => self.buffer(b, op),
        }
    }

    /// Enters `barrier`; returns when all processors have arrived.
    pub fn barrier(&self, barrier: BarrierId) {
        self.flush();
        let op = Op::Barrier(barrier);
        match &self.batch {
            None => self.y.yield_op(op),
            Some(b) => self.seal(b, op, FLUSH_SYNC),
        }
    }

    /// Hands over whatever remains buffered; called by the driver when the
    /// thread body returns. (Equivalent to [`Proc::flush`] when batching
    /// is off.)
    pub fn finish(&self) {
        self.flush();
        if let Some(b) = &self.batch {
            let batch = std::mem::take(&mut *b.ops.borrow_mut());
            if !batch.is_empty() {
                self.y.yield_batch(batch, FLUSH_END);
            }
        }
    }

    /// Convenience: run `f` under `lock`.
    pub fn with_lock<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.lock(lock);
        let r = f();
        self.unlock(lock);
        r
    }
}

impl std::fmt::Debug for Proc<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("pid", &self.pid)
            .field("nprocs", &self.nprocs)
            .field("pending_compute", &self.pending.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_engine::{Resumed, ThreadPool};

    #[test]
    fn compute_batches_until_flush() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 0, 1);
            p.compute(10);
            p.compute(5);
            p.touch_read(0, 4); // flush(15) then read
            p.compute(3);
            p.flush();
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Compute(15)));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Read { addr: 0, bytes: 4 }));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Compute(3)));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn lock_ops_in_order() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 2, 4);
            assert_eq!(p.pid(), 2);
            assert_eq!(p.nprocs(), 4);
            p.with_lock(LockId(7), || {});
            p.barrier(BarrierId(1));
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Lock(LockId(7))));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Unlock(LockId(7))));
        assert_eq!(pool.resume(t), Resumed::Op(Op::Barrier(BarrierId(1))));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn zero_compute_is_elided() {
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(|y| {
            let p = Proc::new(y, 0, 1);
            p.compute(0);
            p.touch_write(8, 8);
        });
        assert_eq!(pool.resume(t), Resumed::Op(Op::Write { addr: 8, bytes: 8 }));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn batched_proc_accumulates_predicted_hits() {
        let board = Arc::new(HintBoard::new(1));
        board.observe_local(0, 0, crate::PAGE_SIZE, true); // page 0: read+write local
        let b = board.clone();
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(move |y| {
            let p = Proc::batched(y, 0, 1, b);
            p.compute(10);
            p.touch_read(0, 4); // hit: buffered
            p.touch_write(8, 4); // hit: buffered
            p.touch_read(8192, 4); // page 2: no hint -> MISS seals the batch
            p.finish();
        });
        assert_eq!(
            pool.resume(t),
            Resumed::Batch(
                vec![
                    Op::Compute(10),
                    Op::Read { addr: 0, bytes: 4 },
                    Op::Write { addr: 8, bytes: 4 },
                    Op::Read {
                        addr: 8192,
                        bytes: 4
                    },
                ],
                FLUSH_MISS
            )
        );
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn sync_ops_seal_and_unlock_batches() {
        let board = Arc::new(HintBoard::new(1));
        let b = board.clone();
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(move |y| {
            let p = Proc::batched(y, 0, 1, b);
            p.compute(5);
            p.lock(LockId(1)); // sync: seals [Compute, Lock]
            p.compute(7);
            p.unlock(LockId(1)); // non-blocking: buffered
            p.barrier(BarrierId(0)); // sync: seals [Compute, Unlock, Barrier]
            p.compute(1);
            p.finish(); // END flush of the tail
        });
        assert_eq!(
            pool.resume(t),
            Resumed::Batch(vec![Op::Compute(5), Op::Lock(LockId(1))], FLUSH_SYNC)
        );
        assert_eq!(
            pool.resume(t),
            Resumed::Batch(
                vec![
                    Op::Compute(7),
                    Op::Unlock(LockId(1)),
                    Op::Barrier(BarrierId(0)),
                ],
                FLUSH_SYNC
            )
        );
        assert_eq!(
            pool.resume(t),
            Resumed::Batch(vec![Op::Compute(1)], FLUSH_END)
        );
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn cap_flushes_long_runs() {
        let board = Arc::new(HintBoard::new(1));
        board.observe_local(0, 0, crate::PAGE_SIZE, false);
        let b = board.clone();
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(move |y| {
            let p = Proc::batched(y, 0, 1, b);
            for _ in 0..BATCH_CAP + 1 {
                p.touch_read(0, 4);
            }
            p.finish();
        });
        match pool.resume(t) {
            Resumed::Batch(ops, cause) => {
                assert_eq!(ops.len(), BATCH_CAP);
                assert_eq!(cause, FLUSH_CAP);
            }
            other => panic!("expected CAP batch, got {other:?}"),
        }
        assert_eq!(
            pool.resume(t),
            Resumed::Batch(vec![Op::Read { addr: 0, bytes: 4 }], FLUSH_END)
        );
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn empty_finish_yields_nothing() {
        let board = Arc::new(HintBoard::new(1));
        let b = board.clone();
        let mut pool: ThreadPool<Op> = ThreadPool::new();
        let t = pool.spawn(move |y| {
            let p = Proc::batched(y, 0, 1, b);
            p.finish();
        });
        assert_eq!(pool.resume(t), Resumed::Finished);
    }
}
