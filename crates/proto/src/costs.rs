//! Protocol-layer cost parameters (the paper's Table 3).
//!
//! The paper varies these between three sets: **O**riginal (measured from
//! their real HLRC implementation), **B**est (all zero — idealized hardware
//! support), and **H**alfway. Per-word costs can be fractional in the
//! halfway set, so they are kept as exact rationals ([`PerWord`]).

use ssm_engine::Cycles;

/// An exact per-word cost `num/den` cycles.
///
/// # Example
///
/// ```rust
/// use ssm_proto::PerWord;
/// let half = PerWord::new(1, 2);
/// assert_eq!(half.cost(1024), 512);
/// assert_eq!(PerWord::ZERO.cost(1024), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerWord {
    num: u64,
    den: u64,
}

impl PerWord {
    /// A zero cost.
    pub const ZERO: PerWord = PerWord { num: 0, den: 1 };

    /// `num/den` cycles per word.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub const fn new(num: u64, den: u64) -> Self {
        assert!(den > 0);
        PerWord { num, den }
    }

    /// Total cycles for `words` words (rounded down; exact for the paper's
    /// whole and half values on its page-sized operand counts).
    pub fn cost(self, words: u64) -> Cycles {
        words * self.num / self.den
    }

    /// Half of this cost (used to derive the halfway set).
    pub fn halved(self) -> PerWord {
        PerWord {
            num: self.num,
            den: self.den * 2,
        }
    }
}

/// Protocol cost parameters (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoCosts {
    /// Per-page cost of changing protection (the mprotect per-page charge).
    pub page_protect: Cycles,
    /// Fixed kernel-entry cost per mprotect call (covers a contiguous run
    /// of pages).
    pub mprotect_startup: Cycles,
    /// Diff creation: cost per word *compared* (every word of the page).
    pub diff_compare: PerWord,
    /// Diff creation: additional cost per word *placed in the diff*.
    pub diff_encode: PerWord,
    /// Diff application at the home, per word applied.
    pub diff_apply: PerWord,
    /// Twin creation, per word copied.
    pub twin: PerWord,
    /// Base cost of running any protocol handler.
    pub handler_base: Cycles,
    /// Additional handler cost per list element traversed (write-notice
    /// lists, sharer lists).
    pub per_list_element: Cycles,
}

impl ProtoCosts {
    /// The **O**riginal set, modelled on the paper's real implementation.
    /// See DESIGN.md for the OCR-approximation notes.
    pub fn original() -> Self {
        ProtoCosts {
            page_protect: 200,
            mprotect_startup: 300,
            diff_compare: PerWord::new(1, 1),
            diff_encode: PerWord::new(1, 1),
            diff_apply: PerWord::new(1, 1),
            twin: PerWord::new(1, 1),
            handler_base: 100,
            per_list_element: 20,
        }
    }

    /// The **B**est (idealized) set: every protocol action is free.
    pub fn best() -> Self {
        ProtoCosts {
            page_protect: 0,
            mprotect_startup: 0,
            diff_compare: PerWord::ZERO,
            diff_encode: PerWord::ZERO,
            diff_apply: PerWord::ZERO,
            twin: PerWord::ZERO,
            handler_base: 0,
            per_list_element: 0,
        }
    }

    /// The **H**alfway set: every original cost halved.
    pub fn halfway() -> Self {
        let o = ProtoCosts::original();
        ProtoCosts {
            page_protect: o.page_protect / 2,
            mprotect_startup: o.mprotect_startup / 2,
            diff_compare: o.diff_compare.halved(),
            diff_encode: o.diff_encode.halved(),
            diff_apply: o.diff_apply.halved(),
            twin: o.twin.halved(),
            handler_base: o.handler_base / 2,
            per_list_element: o.per_list_element / 2,
        }
    }

    /// Cost of one mprotect call covering `pages` contiguous pages.
    pub fn mprotect(&self, pages: u64) -> Cycles {
        if pages == 0 {
            0
        } else {
            self.mprotect_startup + self.page_protect * pages
        }
    }

    /// Cost of a handler that traverses `list_elements` list entries.
    pub fn handler(&self, list_elements: u64) -> Cycles {
        self.handler_base + self.per_list_element * list_elements
    }
}

impl Default for ProtoCosts {
    fn default() -> Self {
        ProtoCosts::original()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_WORDS;

    #[test]
    fn per_word_rational() {
        assert_eq!(PerWord::new(3, 2).cost(10), 15);
        assert_eq!(PerWord::new(1, 1).halved().cost(PAGE_WORDS), 512);
    }

    #[test]
    fn halfway_is_half() {
        let o = ProtoCosts::original();
        let h = ProtoCosts::halfway();
        assert_eq!(h.page_protect * 2, o.page_protect);
        assert_eq!(h.handler_base * 2, o.handler_base);
        assert_eq!(
            h.diff_compare.cost(PAGE_WORDS) * 2,
            o.diff_compare.cost(PAGE_WORDS)
        );
    }

    #[test]
    fn best_is_free() {
        let b = ProtoCosts::best();
        assert_eq!(b.mprotect(100), 0);
        assert_eq!(b.handler(1000), 0);
        assert_eq!(b.twin.cost(PAGE_WORDS), 0);
    }

    #[test]
    fn mprotect_batches() {
        let o = ProtoCosts::original();
        assert_eq!(o.mprotect(0), 0);
        assert_eq!(o.mprotect(1), 500);
        assert_eq!(o.mprotect(3), 300 + 600);
    }

    #[test]
    fn handler_lists() {
        let o = ProtoCosts::original();
        assert_eq!(o.handler(0), 100);
        assert_eq!(o.handler(5), 200);
    }
}
