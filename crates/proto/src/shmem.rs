//! The shared data store, allocator, and typed array views.
//!
//! The simulator is *timing-directed*: coherence protocols track page/block
//! metadata and charge time, while application **data** lives exactly once,
//! in a [`SharedMem`] byte store shared by all application threads. This is
//! sound because the engine's baton guarantees that at most one application
//! thread executes at any instant (see `ssm-engine::threads`), so plain
//! unsynchronized access can never race.
//!
//! This module is the single `unsafe` island of the workspace (see
//! DESIGN.md §11).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::vm::Proc;
use crate::PAGE_SIZE;

/// Identifies a DSM lock. Allocated by [`World::alloc_lock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifies a DSM barrier. Allocated by [`World::alloc_barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// The single, shared, grow-once byte store backing the simulated shared
/// address space.
///
/// # Safety model
///
/// All mutation goes through `&self` via [`UnsafeCell`]. The required
/// exclusion — no two threads inside these methods at once — is provided
/// externally by the engine's baton: simulated-processor threads run one at
/// a time, and the simulator itself only touches the store while every
/// application thread is parked. A debug-build guard (`entrants`) verifies
/// this invariant at runtime.
pub struct SharedMem {
    data: UnsafeCell<Vec<u8>>,
    /// Debug guard: number of threads currently inside an accessor.
    entrants: AtomicUsize,
}

// SAFETY: access is externally serialized by the engine baton (at most one
// application thread runs at a time, and the simulator runs only while all
// application threads are parked). The debug guard enforces this in tests.
unsafe impl Sync for SharedMem {}
unsafe impl Send for SharedMem {}

impl SharedMem {
    /// Creates a store of `bytes` zeroed bytes.
    pub fn new(bytes: usize) -> Arc<Self> {
        Arc::new(SharedMem {
            data: UnsafeCell::new(vec![0u8; bytes]),
            entrants: AtomicUsize::new(0),
        })
    }

    /// Size of the store in bytes.
    pub fn len(&self) -> usize {
        self.enter();
        // SAFETY: serialized per the struct-level safety model.
        let n = unsafe { (*self.data.get()).len() };
        self.exit();
        n
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `N` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        self.enter();
        // SAFETY: serialized per the struct-level safety model; bounds are
        // checked by the slice index below.
        let out = unsafe {
            let v = &*self.data.get();
            let s = &v[addr as usize..addr as usize + N];
            let mut buf = [0u8; N];
            buf.copy_from_slice(s);
            buf
        };
        self.exit();
        out
    }

    /// Writes `N` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes<const N: usize>(&self, addr: u64, bytes: [u8; N]) {
        self.enter();
        // SAFETY: serialized per the struct-level safety model; bounds are
        // checked by the slice index below.
        unsafe {
            let v = &mut *self.data.get();
            v[addr as usize..addr as usize + N].copy_from_slice(&bytes);
        }
        self.exit();
    }

    fn enter(&self) {
        let prev = self.entrants.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(prev, 0, "SharedMem accessed concurrently: baton violated");
    }

    fn exit(&self) {
        self.entrants.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SharedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMem")
            .field("len", &self.len())
            .finish()
    }
}

/// A scalar type storable in the shared address space.
///
/// Sealed: implemented for the fixed-width numeric types applications use.
pub trait Scalar: private::Sealed + Copy + 'static {
    /// Size in bytes.
    const BYTES: u64;
    /// Reads `Self` from the store at `addr`.
    fn load(mem: &SharedMem, addr: u64) -> Self;
    /// Writes `self` to the store at `addr`.
    fn store(self, mem: &SharedMem, addr: u64);
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl Scalar for $t {
            const BYTES: u64 = std::mem::size_of::<$t>() as u64;
            fn load(mem: &SharedMem, addr: u64) -> Self {
                <$t>::from_le_bytes(mem.read_bytes(addr))
            }
            fn store(self, mem: &SharedMem, addr: u64) {
                mem.write_bytes(addr, self.to_le_bytes());
            }
        }
    )*};
}

impl_scalar!(u8, i32, u32, i64, u64, f32, f64);

/// A typed view of a shared allocation: the handle applications use for
/// simulated reads and writes.
///
/// Cloning is cheap (the handle is an `Arc` + offset). Two access families:
///
/// * [`SharedVec::get`] / [`SharedVec::set`] — *simulated*: they charge the
///   coherence protocol and memory hierarchy via the calling [`Proc`];
/// * [`SharedVec::get_direct`] / [`SharedVec::set_direct`] — *untimed*:
///   used for initialization before the run and verification after it,
///   mirroring the untimed setup phases of the paper's methodology.
pub struct SharedVec<T: Scalar> {
    mem: Arc<SharedMem>,
    addr: u64,
    len: usize,
    _t: std::marker::PhantomData<T>,
}

impl<T: Scalar> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        SharedVec {
            mem: self.mem.clone(),
            addr: self.addr,
            len: self.len,
            _t: std::marker::PhantomData,
        }
    }
}

impl<T: Scalar> SharedVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of element `i` in the shared address space.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn addr_of(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.addr + (i as u64) * T::BYTES
    }

    /// Simulated read of element `i` by processor `p`.
    pub fn get(&self, p: &Proc, i: usize) -> T {
        p.touch_read(self.addr_of(i), T::BYTES);
        T::load(&self.mem, self.addr_of(i))
    }

    /// Simulated write of element `i` by processor `p`.
    pub fn set(&self, p: &Proc, i: usize, v: T) {
        p.touch_write(self.addr_of(i), T::BYTES);
        v.store(&self.mem, self.addr_of(i));
    }

    /// Untimed read (initialization / verification only).
    pub fn get_direct(&self, i: usize) -> T {
        T::load(&self.mem, self.addr_of(i))
    }

    /// Untimed write (initialization / verification only).
    pub fn set_direct(&self, i: usize, v: T) {
        v.store(&self.mem, self.addr_of(i));
    }

    /// Simulated read of `n` consecutive elements starting at `i`, touching
    /// the whole range once (coarse-grained access) and returning element
    /// values via the untimed path.
    pub fn touch_range_read(&self, p: &Proc, i: usize, n: usize) {
        if n == 0 {
            return;
        }
        let _ = self.addr_of(i + n - 1);
        p.touch_read(self.addr_of(i), (n as u64) * T::BYTES);
    }

    /// Simulated write marking for `n` consecutive elements starting at `i`.
    pub fn touch_range_write(&self, p: &Proc, i: usize, n: usize) {
        if n == 0 {
            return;
        }
        let _ = self.addr_of(i + n - 1);
        p.touch_write(self.addr_of(i), (n as u64) * T::BYTES);
    }
}

impl<T: Scalar> std::fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedVec")
            .field("addr", &self.addr)
            .field("len", &self.len)
            .finish()
    }
}

/// The pre-run world: owns the store and allocates shared data, locks and
/// barriers. Passed to [`crate::Workload::spawn`].
///
/// # Example
///
/// ```rust
/// use ssm_proto::World;
/// let mut w = World::new(1 << 20);
/// let v = w.alloc_vec::<f64>(128);
/// v.set_direct(3, 2.5);
/// assert_eq!(v.get_direct(3), 2.5);
/// let l = w.alloc_lock();
/// let b = w.alloc_barrier();
/// assert_ne!(l.0, u32::MAX);
/// assert_eq!(b.0, 0);
/// ```
#[derive(Debug)]
pub struct World {
    mem: Arc<SharedMem>,
    next: u64,
    locks: u32,
    barriers: u32,
}

impl World {
    /// Creates a world with a shared store of `bytes` bytes.
    pub fn new(bytes: usize) -> Self {
        World {
            mem: SharedMem::new(bytes),
            next: 0,
            locks: 0,
            barriers: 0,
        }
    }

    /// The shared store.
    pub fn mem(&self) -> &Arc<SharedMem> {
        &self.mem
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Number of locks allocated.
    pub fn lock_count(&self) -> u32 {
        self.locks
    }

    /// Number of barriers allocated.
    pub fn barrier_count(&self) -> u32 {
        self.barriers
    }

    /// Allocates a page-aligned vector of `len` elements of `T`.
    ///
    /// Page alignment matches how the paper's applications pad and align
    /// their major data structures, and keeps false sharing between
    /// distinct allocations out of the picture (false sharing *within* an
    /// allocation is the interesting effect and is fully modelled).
    ///
    /// # Panics
    ///
    /// Panics if the store is exhausted.
    pub fn alloc_vec<T: Scalar>(&mut self, len: usize) -> SharedVec<T> {
        let bytes = (len as u64) * T::BYTES;
        let addr = self.next.next_multiple_of(PAGE_SIZE);
        let end = addr + bytes;
        assert!(
            end <= self.mem.len() as u64,
            "shared store exhausted: need {end} bytes, have {}",
            self.mem.len()
        );
        self.next = end;
        SharedVec {
            mem: self.mem.clone(),
            addr,
            len,
            _t: std::marker::PhantomData,
        }
    }

    /// Allocates a fresh lock.
    pub fn alloc_lock(&mut self) -> LockId {
        let id = LockId(self.locks);
        self.locks += 1;
        id
    }

    /// Allocates `n` locks (convenient for per-element lock arrays).
    pub fn alloc_locks(&mut self, n: usize) -> Vec<LockId> {
        (0..n).map(|_| self.alloc_lock()).collect()
    }

    /// Allocates a fresh barrier.
    pub fn alloc_barrier(&mut self) -> BarrierId {
        let id = BarrierId(self.barriers);
        self.barriers += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mem = SharedMem::new(64);
        1234.5f64.store(&mem, 8);
        assert_eq!(f64::load(&mem, 8), 1234.5);
        (-7i32).store(&mem, 0);
        assert_eq!(i32::load(&mem, 0), -7);
        0xdead_beef_u32.store(&mem, 4);
        assert_eq!(u32::load(&mem, 4), 0xdead_beef);
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut w = World::new(1 << 20);
        let a = w.alloc_vec::<f64>(10);
        let b = w.alloc_vec::<u32>(10);
        assert_eq!(a.addr_of(0) % PAGE_SIZE, 0);
        assert_eq!(b.addr_of(0) % PAGE_SIZE, 0);
        assert!(b.addr_of(0) >= a.addr_of(9) + 8);
    }

    #[test]
    fn direct_access_round_trip() {
        let mut w = World::new(1 << 16);
        let v = w.alloc_vec::<u64>(100);
        for i in 0..100 {
            v.set_direct(i, (i * i) as u64);
        }
        for i in 0..100 {
            assert_eq!(v.get_direct(i), (i * i) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_checked() {
        let mut w = World::new(1 << 16);
        let v = w.alloc_vec::<u8>(4);
        let _ = v.get_direct(4);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn store_exhaustion_detected() {
        let mut w = World::new(8192);
        let _a = w.alloc_vec::<u8>(4096);
        let _b = w.alloc_vec::<u8>(8192);
    }

    #[test]
    fn lock_and_barrier_ids_are_dense() {
        let mut w = World::new(4096);
        assert_eq!(w.alloc_lock(), LockId(0));
        assert_eq!(w.alloc_lock(), LockId(1));
        let ls = w.alloc_locks(3);
        assert_eq!(ls.last(), Some(&LockId(4)));
        assert_eq!(w.alloc_barrier(), BarrierId(0));
        assert_eq!(w.lock_count(), 5);
        assert_eq!(w.barrier_count(), 1);
    }

    #[test]
    fn clone_views_alias() {
        let mut w = World::new(1 << 16);
        let v = w.alloc_vec::<f32>(8);
        let v2 = v.clone();
        v.set_direct(0, 9.0);
        assert_eq!(v2.get_direct(0), 9.0);
    }
}
