//! Software-DSM substrate for the `ssm` reproduction: the shared address
//! space, the programming-model API that applications run against, the
//! protocol cost model, the synchronization managers, and the [`Machine`]
//! that ties one simulated cluster together.
//!
//! The actual coherence protocols live in their own crates (`ssm-hlrc` and
//! `ssm-sc`) and implement the [`Protocol`] trait defined here; `ssm-core`
//! provides the driver loop that advances application threads and calls
//! into the protocol.
//!
//! # Layering (paper Figure 1)
//!
//! ```text
//! ssm-apps          <- application layer
//! ssm-hlrc / ssm-sc <- protocol / programming-model layer (this trait)
//! ssm-net + ssm-mem <- communication layer + node architecture
//! ssm-engine        <- "hardware": time, contention, threads
//! ```

pub mod costs;
pub mod hint;
pub mod machine;
pub mod protocol;
pub mod shmem;
pub mod sync;
pub mod vm;
pub mod workload;

pub use costs::{PerWord, ProtoCosts};
pub use hint::HintBoard;
pub use machine::{Machine, TraceEvent};
pub use protocol::{Ideal, Protocol, WorldShape};
pub use shmem::{BarrierId, LockId, Scalar, SharedMem, SharedVec, World};
pub use sync::{BarrierTable, LockTable};
pub use vm::{Op, Proc, BATCH_CAP, FLUSH_CAP, FLUSH_END, FLUSH_MISS, FLUSH_SYNC};
pub use workload::{ThreadBody, Workload};

/// Page size of the shared virtual memory system (bytes).
pub const PAGE_SIZE: u64 = 4096;

/// Machine word size (bytes) — the unit of diffing (x86, 32-bit words).
pub const WORD_BYTES: u64 = 4;

/// Words per page.
pub const PAGE_WORDS: u64 = PAGE_SIZE / WORD_BYTES;

/// Page number containing `addr`.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

/// Round-robin home node for a page — the paper's default placement.
pub fn home_of_page(page: u64, nodes: usize) -> usize {
    (page % nodes as u64) as usize
}

/// Page-to-home placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// Pages homed round-robin by page number (the paper's placement).
    RoundRobin,
    /// A page is homed at the node that first *accesses* it in simulated
    /// time (classic first-touch; SVM systems use it to align homes with
    /// the dominant writer).
    FirstTouch,
}

/// Resolves page homes under a [`HomePolicy`].
#[derive(Debug, Clone)]
pub struct HomeMap {
    policy: HomePolicy,
    nodes: usize,
    /// First-touch assignments (`u32::MAX` = unassigned).
    assigned: Vec<u32>,
}

impl HomeMap {
    /// Creates the map for `nodes` nodes over `npages` pages.
    pub fn new(policy: HomePolicy, nodes: usize, npages: u64) -> Self {
        HomeMap {
            policy,
            nodes,
            assigned: match policy {
                HomePolicy::RoundRobin => Vec::new(),
                HomePolicy::FirstTouch => vec![u32::MAX; npages as usize],
            },
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> HomePolicy {
        self.policy
    }

    /// Home of `page` if already determined — never assigns. Under
    /// round-robin every page is always determined.
    pub fn peek(&self, page: u64) -> Option<usize> {
        match self.policy {
            HomePolicy::RoundRobin => Some(home_of_page(page, self.nodes)),
            HomePolicy::FirstTouch => {
                let v = self.assigned[page as usize];
                (v != u32::MAX).then_some(v as usize)
            }
        }
    }

    /// Home of `page`, assigning it to `toucher` on first touch under
    /// [`HomePolicy::FirstTouch`].
    pub fn home(&mut self, page: u64, toucher: usize) -> usize {
        match self.policy {
            HomePolicy::RoundRobin => home_of_page(page, self.nodes),
            HomePolicy::FirstTouch => {
                let slot = &mut self.assigned[page as usize];
                if *slot == u32::MAX {
                    *slot = toucher as u32;
                }
                *slot as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(PAGE_WORDS, 1024);
    }

    #[test]
    fn homes_round_robin() {
        assert_eq!(home_of_page(0, 4), 0);
        assert_eq!(home_of_page(5, 4), 1);
        assert_eq!(home_of_page(7, 4), 3);
    }

    #[test]
    fn home_map_round_robin_matches_function() {
        let mut m = HomeMap::new(HomePolicy::RoundRobin, 4, 16);
        for pg in 0..16u64 {
            assert_eq!(m.home(pg, 3), home_of_page(pg, 4));
            assert_eq!(m.peek(pg), Some(home_of_page(pg, 4)));
        }
    }

    #[test]
    fn home_map_first_touch_sticks() {
        let mut m = HomeMap::new(HomePolicy::FirstTouch, 4, 8);
        assert_eq!(m.peek(3), None);
        assert_eq!(m.home(3, 2), 2);
        // Later touchers do not move the home.
        assert_eq!(m.home(3, 0), 2);
        assert_eq!(m.peek(3), Some(2));
        assert_eq!(m.policy(), HomePolicy::FirstTouch);
    }
}
