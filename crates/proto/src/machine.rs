//! The simulated cluster: per-node CPUs, memory hierarchies, the network,
//! cost parameters and all statistics — everything a [`crate::Protocol`]
//! implementation charges time against.
//!
//! # Time-accounting conventions
//!
//! * Every node's CPU is a FIFO [`Resource`]: application computation,
//!   protocol handlers and message-send overhead all occupy it, so protocol
//!   service interferes with computation exactly as in the paper (polling
//!   model: the handler cost is incurred once per incoming request).
//! * Protocol work charges the [`Bucket::Protocol`] bucket *at the node
//!   where it executes* — including service performed for other nodes.
//! * The driver charges the *remainder* of each blocking operation's window
//!   (total elapsed minus whatever the protocol charged to this processor
//!   during the window) to the operation's designated bucket (data wait,
//!   lock wait, barrier wait). See `ssm-core`.

use ssm_engine::{Cycles, Resource};
use ssm_mem::{Hierarchy, MemConfig};
use ssm_net::{CommParams, FaultPlan, Network};
use ssm_stats::{Breakdown, Bucket, Counters, ProtoActivity};

use crate::costs::ProtoCosts;

/// Which detailed protocol-activity account a charge belongs to
/// (Table 4's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Handler execution (request service, control, access faults).
    Handler,
    /// Diff creation.
    DiffCreate,
    /// Diff application.
    DiffApply,
    /// Twin creation.
    Twin,
    /// Page-protection changes.
    Mprotect,
}

/// Which execution context initiated a send — it decides how the CPU
/// cost of a *retransmission* is charged (the first copy's host overhead
/// is charged by the send method itself, exactly as on the fault-free
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendCtx {
    /// Application-initiated transaction: overhead occupies the CPU with
    /// no bucket charge (the window rule folds it into the operation's
    /// wait bucket).
    App,
    /// Handler context: overhead is protocol time.
    Handler,
    /// Hardware-generated (AURC auto-update): the NI retransmit timer
    /// resends with no host CPU involvement.
    Hardware,
}

/// Reliable-delivery sublayer state, present only while a fault plan is
/// installed. The zero-fault path never consults it, so fault-free runs
/// are byte-identical to a build without the sublayer.
///
/// The model: every logical message carries a per-channel sequence
/// number; the NI acks each accepted copy over a reliable hardware
/// control channel (VMMC-style, zero simulated cost — the data path
/// already paid for the copy). A sender whose ack has not returned by
/// the retransmission deadline resends; deadlines back off exponentially
/// and a retry cap turns a persistently lost message into a panic (which
/// the sweep executor reports as a failed cell). Delay spikes are
/// bounded below the base deadline, so only genuinely dropped copies are
/// ever retransmitted; the receiver still discards replayed copies by
/// sequence number.
#[derive(Debug)]
struct Reliability {
    /// Deadline slack beyond the message's two-way zero-load latency.
    rto_pad: Cycles,
    /// Retransmissions allowed per message before the run is declared
    /// lost.
    max_retries: u32,
    /// Next sequence number per (src, dst) channel.
    next_seq: Vec<u64>,
    /// Accepted (in-order) message count per (src, dst) channel.
    accepted: Vec<u64>,
}

/// Retransmissions allowed per message. At the sweep's fault ceiling
/// (25% drops per copy) a message survives ten retries with probability
/// 1 - 2.5e-7 per message; deeper loss indicates a broken configuration
/// and should surface as a failed cell.
const MAX_RETRIES: u32 = 10;

/// One protocol-level event captured when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event started.
    pub time: Cycles,
    /// Node the event occurred at.
    pub node: usize,
    /// Event class ("send", "handle", "proto").
    pub label: &'static str,
    /// Free-form detail (destination, byte count, activity…).
    pub detail: String,
}

/// One simulated cluster's mutable state.
#[derive(Debug)]
pub struct Machine {
    nprocs: usize,
    /// Application-visible clock per processor.
    pub clock: Vec<Cycles>,
    cpu: Vec<Resource>,
    hier: Vec<Hierarchy>,
    net: Network,
    costs: ProtoCosts,
    comm: CommParams,
    breakdown: Vec<Breakdown>,
    activity: Vec<ProtoActivity>,
    counters: Vec<Counters>,
    wakeups: Vec<(usize, Cycles)>,
    trace: Option<Vec<TraceEvent>>,
    rel: Option<Reliability>,
    hints: Option<std::sync::Arc<crate::HintBoard>>,
}

impl Machine {
    /// Builds a cluster of `nprocs` uniprocessor nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs == 0`.
    pub fn new(nprocs: usize, comm: CommParams, costs: ProtoCosts, mem: MemConfig) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        Machine {
            nprocs,
            clock: vec![0; nprocs],
            cpu: (0..nprocs).map(|_| Resource::new()).collect(),
            hier: (0..nprocs).map(|_| Hierarchy::new(mem.clone())).collect(),
            // The Network type needs >= 2 endpoints; a 1-processor run
            // never sends, so give it a dummy second endpoint.
            net: Network::new(nprocs.max(2), comm.clone()),
            costs,
            comm,
            breakdown: vec![Breakdown::new(); nprocs],
            activity: vec![ProtoActivity::default(); nprocs],
            counters: vec![Counters::default(); nprocs],
            wakeups: Vec::new(),
            trace: None,
            rel: None,
            hints: None,
        }
    }

    /// Installs the locality hint board shared with the application
    /// threads; protocol invalidations then revoke the affected hints so
    /// the batching `Proc` stops running ahead over stale pages. (Hints
    /// are pure host-time policy: results are identical without this.)
    pub fn set_hint_board(&mut self, board: std::sync::Arc<crate::HintBoard>) {
        self.hints = Some(board);
    }

    /// Installs a deterministic fault plan on the network and arms the
    /// reliable-delivery sublayer that recovers from it. Without this
    /// call every send takes the exact fault-free path.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        // Deadline slack: one send overhead + handler dispatch + the
        // largest injectable delay spike, so a merely *delayed* ack never
        // triggers a spurious retransmission.
        let rto_pad =
            self.comm.host_overhead + self.comm.msg_handling + plan.rates().max_delay + 256;
        let n = self.net.len();
        self.net.set_fault_plan(plan);
        self.rel = Some(Reliability {
            rto_pad,
            max_retries: MAX_RETRIES,
            next_seq: vec![0; n * n],
            accepted: vec![0; n * n],
        });
    }

    /// Whether the reliable-delivery sublayer is armed.
    pub fn faults_enabled(&self) -> bool {
        self.rel.is_some()
    }

    /// Injected-fault statistics for `p`'s outgoing messages.
    pub fn fault_stats(&self, p: usize) -> ssm_net::FaultStats {
        self.net.fault_stats(p)
    }

    /// Moves one logical message reliably: transmits copies until one is
    /// accepted, waiting out an exponentially backed-off deadline before
    /// each retransmission and paying the context's CPU cost for it.
    /// Returns `(local_done, arrival)` like the plain send paths.
    ///
    /// # Panics
    ///
    /// Panics when a message exceeds the retry cap — a sweep reports that
    /// as a failed cell rather than hanging.
    fn transmit_reliably(
        &mut self,
        src: usize,
        dst: usize,
        first_ready: Cycles,
        bytes: u64,
        ctx: SendCtx,
    ) -> (Cycles, Cycles) {
        let (rto_pad, max_retries, seq, ch) = {
            let n = self.net.len();
            let rel = self.rel.as_mut().expect("reliability armed");
            let ch = src * n + dst;
            let seq = rel.next_seq[ch];
            rel.next_seq[ch] += 1;
            (rel.rto_pad, rel.max_retries, seq, ch)
        };
        // Base deadline: a full round trip of this message plus the pad.
        let rto = 2 * self.net.zero_load_latency(bytes) + rto_pad;
        let mut local_done = first_ready;
        let mut send_at = first_ready;
        let mut attempt: u32 = 0;
        loop {
            let tx = self.net.transmit(send_at, src, dst, bytes);
            if tx.stall > 0 {
                self.counters[src].faults_stalled += 1;
            }
            if tx.delay > 0 {
                self.counters[src].faults_delayed += 1;
            }
            if tx.duplicated {
                self.counters[src].faults_duplicated += 1;
            }
            if !tx.dropped {
                if tx.duplicated {
                    // The replayed copy reaches dst second; its sequence
                    // number is already accepted, so it is discarded.
                    self.counters[dst].dup_suppressed += 1;
                }
                let rel = self.rel.as_mut().expect("reliability armed");
                debug_assert_eq!(rel.accepted[ch], seq, "channel delivers in order");
                rel.accepted[ch] = seq + 1;
                return (local_done, tx.arrival);
            }
            // Lost copy: no ack by the deadline, so resend.
            self.counters[src].faults_dropped += 1;
            attempt += 1;
            assert!(
                attempt <= max_retries,
                "reliable delivery: message N{src}->N{dst} seq {seq} lost \
                 {attempt} times (retry cap {max_retries})"
            );
            self.counters[src].retransmissions += 1;
            let deadline = send_at + (rto << (attempt - 1).min(16));
            let resume = local_done.max(deadline);
            self.trace_event(resume, src, "retransmit", || {
                format!("-> N{dst}, {bytes} B, attempt {attempt}")
            });
            local_done = match ctx {
                SendCtx::App => {
                    self.cpu[src]
                        .acquire_span(resume, self.comm.host_overhead)
                        .1
                }
                SendCtx::Handler => {
                    self.proto_work(src, resume, self.comm.host_overhead, Activity::Handler)
                }
                // The NI's retransmit timer replays the copy without the
                // host; the copy itself still pays bus + NI occupancy.
                SendCtx::Hardware => resume,
            };
            send_at = local_done;
        }
    }

    /// Turns on protocol-event tracing (off by default: tracing allocates
    /// per event).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the captured trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Records an event if tracing is enabled. `detail` is only evaluated
    /// when it will be stored.
    pub fn trace_event(
        &mut self,
        time: Cycles,
        node: usize,
        label: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent {
                time,
                node,
                label,
                detail: detail(),
            });
        }
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Protocol cost parameters.
    pub fn costs(&self) -> &ProtoCosts {
        &self.costs
    }

    /// Communication cost parameters.
    pub fn comm(&self) -> &CommParams {
        &self.comm
    }

    /// Per-processor execution-time breakdowns.
    pub fn breakdowns(&self) -> &[Breakdown] {
        &self.breakdown
    }

    /// Per-processor protocol-activity details.
    pub fn activities(&self) -> &[ProtoActivity] {
        &self.activity
    }

    /// Per-processor raw event counters.
    pub fn counters(&self) -> &[Counters] {
        &self.counters
    }

    /// Mutable access to one processor's counters.
    pub fn counters_mut(&mut self, p: usize) -> &mut Counters {
        &mut self.counters[p]
    }

    /// Charges `cycles` to `bucket` on processor `p` (no CPU occupancy).
    pub fn charge(&mut self, p: usize, bucket: Bucket, cycles: Cycles) {
        self.breakdown[p].add(bucket, cycles);
    }

    /// Occupies `p`'s CPU for `cycles` starting no earlier than `at`,
    /// charging nothing; returns `(start, end)`. Used for application
    /// compute (the driver charges Busy separately) and for send overhead
    /// inside an application-initiated transaction (absorbed into the
    /// operation's wait bucket by the window rule).
    pub fn occupy_cpu(&mut self, p: usize, at: Cycles, cycles: Cycles) -> (Cycles, Cycles) {
        self.cpu[p].acquire_span(at, cycles)
    }

    /// Runs protocol work of `cycles` on `p`'s CPU starting no earlier than
    /// `at`; charges the Protocol bucket and the detailed `activity`
    /// account; returns the completion time.
    pub fn proto_work(&mut self, p: usize, at: Cycles, cycles: Cycles, what: Activity) -> Cycles {
        let (_, end) = self.cpu[p].acquire_span(at, cycles);
        self.breakdown[p].add(Bucket::Protocol, cycles);
        let a = &mut self.activity[p];
        match what {
            Activity::Handler => a.handler += cycles,
            Activity::DiffCreate => a.diff_create += cycles,
            Activity::DiffApply => a.diff_apply += cycles,
            Activity::Twin => a.twin += cycles,
            Activity::Mprotect => a.mprotect += cycles,
        }
        end
    }

    /// Models protocol code streaming over memory at node `p` (twin/diff
    /// work): pollutes `p`'s caches and charges the *pipelined* stall
    /// cycles as protocol time under `what` (bulk protocol copies move at
    /// memory bandwidth, not one cold miss per line). Returns the
    /// completion time.
    pub fn proto_touch(
        &mut self,
        p: usize,
        at: Cycles,
        addr: u64,
        len: u64,
        write: bool,
        what: Activity,
    ) -> Cycles {
        let stall = self.hier[p].stream_range(at, addr, len, write);
        if stall > 0 {
            self.proto_work(p, at, stall, what)
        } else {
            at
        }
    }

    /// Application-side memory access through `p`'s cache hierarchy;
    /// charges stall cycles to CacheStall and returns the completion time.
    pub fn cache_access(
        &mut self,
        p: usize,
        at: Cycles,
        addr: u64,
        len: u64,
        write: bool,
    ) -> Cycles {
        let stall = self.hier[p].touch_range(at, addr, len, write);
        if stall > 0 {
            self.breakdown[p].add(Bucket::CacheStall, stall);
            // The CPU is stalled: occupy it so handlers queue behind.
            let (_, end) = self.cpu[p].acquire_span(at, stall);
            end
        } else {
            at
        }
    }

    /// Drops `[addr, addr+len)` from `p`'s caches (stale after protocol
    /// invalidation), and revokes `p`'s locality hints for the range.
    pub fn cache_invalidate(&mut self, p: usize, addr: u64, len: u64) {
        self.hier[p].invalidate_range(addr, len);
        if let Some(h) = &self.hints {
            h.revoke(p, addr, len);
        }
    }

    /// Cache statistics for node `p`.
    pub fn mem_stats(&self, p: usize) -> ssm_mem::MemStats {
        self.hier[p].stats()
    }

    /// Network statistics for node `p`.
    pub fn net_stats(&self, p: usize) -> ssm_net::NiStats {
        self.net.stats(p)
    }

    /// Total cycles node `p`'s CPU was occupied (app + protocol), for
    /// utilization diagnostics.
    pub fn cpu_busy(&self, p: usize) -> Cycles {
        self.cpu[p].busy_cycles()
    }

    /// Sends a message from an *application-initiated* transaction on `src`
    /// (e.g. a fault request): occupies the CPU for the host overhead
    /// without charging a bucket (the window rule attributes it to the
    /// operation's wait), then injects the message. Returns
    /// `(local_done, arrival)`: when the sender's CPU is free again, and
    /// when the message reaches `dst`.
    pub fn send_from_app(
        &mut self,
        src: usize,
        at: Cycles,
        dst: usize,
        bytes: u64,
    ) -> (Cycles, Cycles) {
        let (_, t) = self.cpu[src].acquire_span(at, self.comm.host_overhead);
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || format!("app -> N{dst}, {bytes} B"));
        if self.rel.is_some() {
            self.transmit_reliably(src, dst, t, bytes, SendCtx::App)
        } else {
            (t, self.net.deliver(t, src, dst, bytes))
        }
    }

    /// Sends a message from *handler context* on `src` (e.g. the home
    /// replying with a page): host overhead occupies the CPU and is charged
    /// as protocol time. Returns `(local_done, arrival)`: when the sender's
    /// CPU is free again, and when the message reaches `dst`.
    pub fn send_from_handler(
        &mut self,
        src: usize,
        at: Cycles,
        dst: usize,
        bytes: u64,
    ) -> (Cycles, Cycles) {
        let t = self.proto_work(src, at, self.comm.host_overhead, Activity::Handler);
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || format!("handler -> N{dst}, {bytes} B"));
        if self.rel.is_some() {
            self.transmit_reliably(src, dst, t, bytes, SendCtx::Handler)
        } else {
            (t, self.net.deliver(t, src, dst, bytes))
        }
    }

    /// Sends a message generated by *hardware* at `src` (e.g. AURC's
    /// automatic write propagation, snooped off the memory bus by the NI):
    /// no host CPU involvement at either end — the message only occupies
    /// the NI and buses. Returns the arrival time at `dst`.
    pub fn send_hardware(&mut self, src: usize, at: Cycles, dst: usize, bytes: u64) -> Cycles {
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || {
            format!("hw-update -> N{dst}, {bytes} B")
        });
        if self.rel.is_some() {
            self.transmit_reliably(src, dst, at, bytes, SendCtx::Hardware)
                .1
        } else {
            self.net.deliver(at, src, dst, bytes)
        }
    }

    /// Serves a one-sided (RDMA) operation at `node`'s NI at `at`: the NI
    /// reads or writes host memory directly, with no host CPU involvement
    /// and no handler dispatch. Returns the cycle the NI is done serving.
    /// Contends FIFO with ordinary message sends on the same NI.
    pub fn rdma_serve(&mut self, node: usize, at: Cycles) -> Cycles {
        self.trace_event(at, node, "rdma", || "one-sided service".to_string());
        self.net.rdma_serve(at, node)
    }

    /// Dispatches a *request* handler on `node` for a message arriving at
    /// `arrival`: charges the message-handling cost plus
    /// `handler_base + per_list_element * list_elements`, all as protocol
    /// time on `node`'s CPU. Returns the handler completion time.
    pub fn handle_request(&mut self, node: usize, arrival: Cycles, list_elements: u64) -> Cycles {
        let cost = self.comm.msg_handling + self.costs.handler(list_elements);
        self.trace_event(arrival, node, "handle", || {
            format!("request handler, {list_elements} list elements")
        });
        self.proto_work(node, arrival, cost, Activity::Handler)
    }

    /// Schedules processor `p` (currently blocked in the driver) to resume
    /// at time `t`.
    pub fn wake(&mut self, p: usize, t: Cycles) {
        self.wakeups.push((p, t));
    }

    /// Drains pending wakeups (driver-side).
    pub fn take_wakeups(&mut self) -> Vec<(usize, Cycles)> {
        std::mem::take(&mut self.wakeups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: usize) -> Machine {
        Machine::new(
            n,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        )
    }

    #[test]
    fn proto_work_charges_protocol_bucket() {
        let mut mach = m(2);
        let end = mach.proto_work(1, 100, 50, Activity::DiffCreate);
        assert_eq!(end, 150);
        assert_eq!(mach.breakdowns()[1].get(Bucket::Protocol), 50);
        assert_eq!(mach.activities()[1].diff_create, 50);
        assert_eq!(mach.breakdowns()[0].total(), 0);
    }

    #[test]
    fn cpu_contention_between_app_and_handler() {
        let mut mach = m(2);
        // The app occupies [0, 100).
        let (_, end) = mach.occupy_cpu(0, 0, 100);
        assert_eq!(end, 100);
        // A handler arriving at t=10 must wait for the CPU.
        let done = mach.handle_request(0, 10, 0);
        // 100 (CPU free) + 200 (msg handling) + 100 (handler base).
        assert_eq!(done, 400);
    }

    #[test]
    fn handler_list_cost() {
        let mut mach = m(2);
        let t0 = mach.handle_request(0, 0, 0);
        let t1 = mach.handle_request(1, 0, 5);
        assert_eq!(t0, 300);
        assert_eq!(t1, 300 + 100); // 5 elements x 20 cycles
    }

    #[test]
    fn send_from_app_does_not_charge_buckets() {
        let mut mach = m(2);
        let (local, arrival) = mach.send_from_app(0, 0, 1, 64);
        assert_eq!(local, 600);
        assert!(arrival > 600); // host overhead + network
        assert_eq!(mach.breakdowns()[0].total(), 0);
        assert_eq!(mach.counters()[0].messages, 1);
    }

    #[test]
    fn send_from_handler_charges_protocol() {
        let mut mach = m(2);
        let _ = mach.send_from_handler(0, 0, 1, 64);
        assert_eq!(mach.breakdowns()[0].get(Bucket::Protocol), 600);
    }

    #[test]
    fn cache_access_charges_stall() {
        let mut mach = m(2);
        let end = mach.cache_access(0, 0, 0, 8, false);
        assert!(end > 0);
        assert!(mach.breakdowns()[0].get(Bucket::CacheStall) > 0);
        // Warm: free.
        let end2 = mach.cache_access(0, end, 0, 8, false);
        assert_eq!(end2, end);
    }

    #[test]
    fn wakeups_drain() {
        let mut mach = m(2);
        mach.wake(1, 500);
        mach.wake(0, 300);
        assert_eq!(mach.take_wakeups(), vec![(1, 500), (0, 300)]);
        assert!(mach.take_wakeups().is_empty());
    }

    #[test]
    fn single_proc_machine_works() {
        let mach = m(1);
        assert_eq!(mach.nprocs(), 1);
    }

    #[test]
    fn reliable_send_matches_plain_send_when_no_fault_fires() {
        use ssm_net::{FaultPlan, FaultRates};
        // A plan that never injects: the reliable path must produce the
        // same (local, arrival) pair and charge the same buckets as the
        // plain path (pay-for-what-you-inject).
        let mut plain = m(2);
        let mut armed = m(2);
        armed.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 0,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            9,
        ));
        assert!(armed.faults_enabled());
        assert_eq!(
            plain.send_from_app(0, 0, 1, 64),
            armed.send_from_app(0, 0, 1, 64)
        );
        assert_eq!(
            plain.send_from_handler(1, 50, 0, 4096),
            armed.send_from_handler(1, 50, 0, 4096)
        );
        assert_eq!(
            plain.send_hardware(0, 99_000, 1, 8),
            armed.send_hardware(0, 99_000, 1, 8)
        );
        assert_eq!(plain.breakdowns(), armed.breakdowns());
        assert_eq!(armed.counters()[0].retransmissions, 0);
    }

    #[test]
    fn dropped_message_is_retransmitted_and_arrives() {
        use ssm_net::{FaultPlan, FaultRates};
        let mut mach = m(2);
        // Half the copies drop; every logical message must still land.
        mach.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 500_000,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            12345,
        ));
        let mut t = 0;
        for _ in 0..64 {
            let (local, arrival) = mach.send_from_app(0, t, 1, 256);
            assert!(arrival > local || arrival > t);
            t = arrival;
        }
        let c = &mach.counters()[0];
        assert_eq!(c.messages, 64, "logical message count is fault-free");
        assert!(c.retransmissions > 0, "half the copies dropped");
        assert_eq!(c.retransmissions, c.faults_dropped);
        assert_eq!(mach.fault_stats(0).drops, c.faults_dropped);
    }

    #[test]
    fn duplicates_are_suppressed_at_the_receiver() {
        use ssm_net::{FaultPlan, FaultRates};
        let mut mach = m(2);
        mach.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 0,
                dup_ppm: 1_000_000,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            3,
        ));
        let (_, a1) = mach.send_from_app(0, 0, 1, 64);
        let (_, _) = mach.send_from_app(0, a1, 1, 64);
        assert_eq!(mach.counters()[1].dup_suppressed, 2);
        assert_eq!(mach.counters()[0].faults_duplicated, 2);
        assert_eq!(mach.counters()[0].retransmissions, 0);
    }

    #[test]
    fn handler_retransmissions_charge_protocol_time() {
        use ssm_net::{FaultPlan, FaultRates};
        let mut mach = m(2);
        mach.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 500_000,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            77,
        ));
        let mut t = 0;
        for _ in 0..32 {
            let (local, arrival) = mach.send_from_handler(0, t, 1, 512);
            t = local.max(arrival);
        }
        let c = mach.counters()[0];
        assert!(c.retransmissions > 0);
        // First copies + every retransmission pay host overhead as
        // protocol (handler) time.
        let want = (32 + c.retransmissions) * mach.comm().host_overhead;
        assert_eq!(mach.breakdowns()[0].get(Bucket::Protocol), want);
    }

    #[test]
    #[should_panic(expected = "retry cap")]
    fn all_drops_hit_the_retry_cap() {
        use ssm_net::{FaultPlan, FaultRates};
        let mut mach = m(2);
        mach.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 1_000_000,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            1,
        ));
        let _ = mach.send_from_app(0, 0, 1, 64);
    }
}
