//! The simulated cluster: per-node CPUs, memory hierarchies, the network,
//! cost parameters and all statistics — everything a [`crate::Protocol`]
//! implementation charges time against.
//!
//! # Time-accounting conventions
//!
//! * Every node's CPU is a FIFO [`Resource`]: application computation,
//!   protocol handlers and message-send overhead all occupy it, so protocol
//!   service interferes with computation exactly as in the paper (polling
//!   model: the handler cost is incurred once per incoming request).
//! * Protocol work charges the [`Bucket::Protocol`] bucket *at the node
//!   where it executes* — including service performed for other nodes.
//! * The driver charges the *remainder* of each blocking operation's window
//!   (total elapsed minus whatever the protocol charged to this processor
//!   during the window) to the operation's designated bucket (data wait,
//!   lock wait, barrier wait). See `ssm-core`.

use ssm_engine::{Cycles, Resource};
use ssm_mem::{Hierarchy, MemConfig};
use ssm_net::{CommParams, Network};
use ssm_stats::{Breakdown, Bucket, Counters, ProtoActivity};

use crate::costs::ProtoCosts;

/// Which detailed protocol-activity account a charge belongs to
/// (Table 4's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Handler execution (request service, control, access faults).
    Handler,
    /// Diff creation.
    DiffCreate,
    /// Diff application.
    DiffApply,
    /// Twin creation.
    Twin,
    /// Page-protection changes.
    Mprotect,
}

/// One protocol-level event captured when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event started.
    pub time: Cycles,
    /// Node the event occurred at.
    pub node: usize,
    /// Event class ("send", "handle", "proto").
    pub label: &'static str,
    /// Free-form detail (destination, byte count, activity…).
    pub detail: String,
}

/// One simulated cluster's mutable state.
#[derive(Debug)]
pub struct Machine {
    nprocs: usize,
    /// Application-visible clock per processor.
    pub clock: Vec<Cycles>,
    cpu: Vec<Resource>,
    hier: Vec<Hierarchy>,
    net: Network,
    costs: ProtoCosts,
    comm: CommParams,
    breakdown: Vec<Breakdown>,
    activity: Vec<ProtoActivity>,
    counters: Vec<Counters>,
    wakeups: Vec<(usize, Cycles)>,
    trace: Option<Vec<TraceEvent>>,
}

impl Machine {
    /// Builds a cluster of `nprocs` uniprocessor nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs == 0`.
    pub fn new(nprocs: usize, comm: CommParams, costs: ProtoCosts, mem: MemConfig) -> Self {
        assert!(nprocs > 0, "need at least one processor");
        Machine {
            nprocs,
            clock: vec![0; nprocs],
            cpu: (0..nprocs).map(|_| Resource::new()).collect(),
            hier: (0..nprocs).map(|_| Hierarchy::new(mem.clone())).collect(),
            // The Network type needs >= 2 endpoints; a 1-processor run
            // never sends, so give it a dummy second endpoint.
            net: Network::new(nprocs.max(2), comm.clone()),
            costs,
            comm,
            breakdown: vec![Breakdown::new(); nprocs],
            activity: vec![ProtoActivity::default(); nprocs],
            counters: vec![Counters::default(); nprocs],
            wakeups: Vec::new(),
            trace: None,
        }
    }

    /// Turns on protocol-event tracing (off by default: tracing allocates
    /// per event).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Drains the captured trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Records an event if tracing is enabled. `detail` is only evaluated
    /// when it will be stored.
    pub fn trace_event(
        &mut self,
        time: Cycles,
        node: usize,
        label: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent {
                time,
                node,
                label,
                detail: detail(),
            });
        }
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Protocol cost parameters.
    pub fn costs(&self) -> &ProtoCosts {
        &self.costs
    }

    /// Communication cost parameters.
    pub fn comm(&self) -> &CommParams {
        &self.comm
    }

    /// Per-processor execution-time breakdowns.
    pub fn breakdowns(&self) -> &[Breakdown] {
        &self.breakdown
    }

    /// Per-processor protocol-activity details.
    pub fn activities(&self) -> &[ProtoActivity] {
        &self.activity
    }

    /// Per-processor raw event counters.
    pub fn counters(&self) -> &[Counters] {
        &self.counters
    }

    /// Mutable access to one processor's counters.
    pub fn counters_mut(&mut self, p: usize) -> &mut Counters {
        &mut self.counters[p]
    }

    /// Charges `cycles` to `bucket` on processor `p` (no CPU occupancy).
    pub fn charge(&mut self, p: usize, bucket: Bucket, cycles: Cycles) {
        self.breakdown[p].add(bucket, cycles);
    }

    /// Occupies `p`'s CPU for `cycles` starting no earlier than `at`,
    /// charging nothing; returns `(start, end)`. Used for application
    /// compute (the driver charges Busy separately) and for send overhead
    /// inside an application-initiated transaction (absorbed into the
    /// operation's wait bucket by the window rule).
    pub fn occupy_cpu(&mut self, p: usize, at: Cycles, cycles: Cycles) -> (Cycles, Cycles) {
        self.cpu[p].acquire_span(at, cycles)
    }

    /// Runs protocol work of `cycles` on `p`'s CPU starting no earlier than
    /// `at`; charges the Protocol bucket and the detailed `activity`
    /// account; returns the completion time.
    pub fn proto_work(&mut self, p: usize, at: Cycles, cycles: Cycles, what: Activity) -> Cycles {
        let (_, end) = self.cpu[p].acquire_span(at, cycles);
        self.breakdown[p].add(Bucket::Protocol, cycles);
        let a = &mut self.activity[p];
        match what {
            Activity::Handler => a.handler += cycles,
            Activity::DiffCreate => a.diff_create += cycles,
            Activity::DiffApply => a.diff_apply += cycles,
            Activity::Twin => a.twin += cycles,
            Activity::Mprotect => a.mprotect += cycles,
        }
        end
    }

    /// Models protocol code streaming over memory at node `p` (twin/diff
    /// work): pollutes `p`'s caches and charges the *pipelined* stall
    /// cycles as protocol time under `what` (bulk protocol copies move at
    /// memory bandwidth, not one cold miss per line). Returns the
    /// completion time.
    pub fn proto_touch(
        &mut self,
        p: usize,
        at: Cycles,
        addr: u64,
        len: u64,
        write: bool,
        what: Activity,
    ) -> Cycles {
        let stall = self.hier[p].stream_range(at, addr, len, write);
        if stall > 0 {
            self.proto_work(p, at, stall, what)
        } else {
            at
        }
    }

    /// Application-side memory access through `p`'s cache hierarchy;
    /// charges stall cycles to CacheStall and returns the completion time.
    pub fn cache_access(
        &mut self,
        p: usize,
        at: Cycles,
        addr: u64,
        len: u64,
        write: bool,
    ) -> Cycles {
        let stall = self.hier[p].touch_range(at, addr, len, write);
        if stall > 0 {
            self.breakdown[p].add(Bucket::CacheStall, stall);
            // The CPU is stalled: occupy it so handlers queue behind.
            let (_, end) = self.cpu[p].acquire_span(at, stall);
            end
        } else {
            at
        }
    }

    /// Drops `[addr, addr+len)` from `p`'s caches (stale after protocol
    /// invalidation).
    pub fn cache_invalidate(&mut self, p: usize, addr: u64, len: u64) {
        self.hier[p].invalidate_range(addr, len);
    }

    /// Cache statistics for node `p`.
    pub fn mem_stats(&self, p: usize) -> ssm_mem::MemStats {
        self.hier[p].stats()
    }

    /// Network statistics for node `p`.
    pub fn net_stats(&self, p: usize) -> ssm_net::NiStats {
        self.net.stats(p)
    }

    /// Total cycles node `p`'s CPU was occupied (app + protocol), for
    /// utilization diagnostics.
    pub fn cpu_busy(&self, p: usize) -> Cycles {
        self.cpu[p].busy_cycles()
    }

    /// Sends a message from an *application-initiated* transaction on `src`
    /// (e.g. a fault request): occupies the CPU for the host overhead
    /// without charging a bucket (the window rule attributes it to the
    /// operation's wait), then injects the message. Returns
    /// `(local_done, arrival)`: when the sender's CPU is free again, and
    /// when the message reaches `dst`.
    pub fn send_from_app(
        &mut self,
        src: usize,
        at: Cycles,
        dst: usize,
        bytes: u64,
    ) -> (Cycles, Cycles) {
        let (_, t) = self.cpu[src].acquire_span(at, self.comm.host_overhead);
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || format!("app -> N{dst}, {bytes} B"));
        (t, self.net.deliver(t, src, dst, bytes))
    }

    /// Sends a message from *handler context* on `src` (e.g. the home
    /// replying with a page): host overhead occupies the CPU and is charged
    /// as protocol time. Returns `(local_done, arrival)`: when the sender's
    /// CPU is free again, and when the message reaches `dst`.
    pub fn send_from_handler(
        &mut self,
        src: usize,
        at: Cycles,
        dst: usize,
        bytes: u64,
    ) -> (Cycles, Cycles) {
        let t = self.proto_work(src, at, self.comm.host_overhead, Activity::Handler);
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || format!("handler -> N{dst}, {bytes} B"));
        (t, self.net.deliver(t, src, dst, bytes))
    }

    /// Sends a message generated by *hardware* at `src` (e.g. AURC's
    /// automatic write propagation, snooped off the memory bus by the NI):
    /// no host CPU involvement at either end — the message only occupies
    /// the NI and buses. Returns the arrival time at `dst`.
    pub fn send_hardware(&mut self, src: usize, at: Cycles, dst: usize, bytes: u64) -> Cycles {
        self.counters[src].messages += 1;
        self.counters[src].bytes += bytes;
        self.trace_event(at, src, "send", || {
            format!("hw-update -> N{dst}, {bytes} B")
        });
        self.net.deliver(at, src, dst, bytes)
    }

    /// Dispatches a *request* handler on `node` for a message arriving at
    /// `arrival`: charges the message-handling cost plus
    /// `handler_base + per_list_element * list_elements`, all as protocol
    /// time on `node`'s CPU. Returns the handler completion time.
    pub fn handle_request(&mut self, node: usize, arrival: Cycles, list_elements: u64) -> Cycles {
        let cost = self.comm.msg_handling + self.costs.handler(list_elements);
        self.trace_event(arrival, node, "handle", || {
            format!("request handler, {list_elements} list elements")
        });
        self.proto_work(node, arrival, cost, Activity::Handler)
    }

    /// Schedules processor `p` (currently blocked in the driver) to resume
    /// at time `t`.
    pub fn wake(&mut self, p: usize, t: Cycles) {
        self.wakeups.push((p, t));
    }

    /// Drains pending wakeups (driver-side).
    pub fn take_wakeups(&mut self) -> Vec<(usize, Cycles)> {
        std::mem::take(&mut self.wakeups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: usize) -> Machine {
        Machine::new(
            n,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        )
    }

    #[test]
    fn proto_work_charges_protocol_bucket() {
        let mut mach = m(2);
        let end = mach.proto_work(1, 100, 50, Activity::DiffCreate);
        assert_eq!(end, 150);
        assert_eq!(mach.breakdowns()[1].get(Bucket::Protocol), 50);
        assert_eq!(mach.activities()[1].diff_create, 50);
        assert_eq!(mach.breakdowns()[0].total(), 0);
    }

    #[test]
    fn cpu_contention_between_app_and_handler() {
        let mut mach = m(2);
        // The app occupies [0, 100).
        let (_, end) = mach.occupy_cpu(0, 0, 100);
        assert_eq!(end, 100);
        // A handler arriving at t=10 must wait for the CPU.
        let done = mach.handle_request(0, 10, 0);
        // 100 (CPU free) + 200 (msg handling) + 100 (handler base).
        assert_eq!(done, 400);
    }

    #[test]
    fn handler_list_cost() {
        let mut mach = m(2);
        let t0 = mach.handle_request(0, 0, 0);
        let t1 = mach.handle_request(1, 0, 5);
        assert_eq!(t0, 300);
        assert_eq!(t1, 300 + 100); // 5 elements x 20 cycles
    }

    #[test]
    fn send_from_app_does_not_charge_buckets() {
        let mut mach = m(2);
        let (local, arrival) = mach.send_from_app(0, 0, 1, 64);
        assert_eq!(local, 600);
        assert!(arrival > 600); // host overhead + network
        assert_eq!(mach.breakdowns()[0].total(), 0);
        assert_eq!(mach.counters()[0].messages, 1);
    }

    #[test]
    fn send_from_handler_charges_protocol() {
        let mut mach = m(2);
        let _ = mach.send_from_handler(0, 0, 1, 64);
        assert_eq!(mach.breakdowns()[0].get(Bucket::Protocol), 600);
    }

    #[test]
    fn cache_access_charges_stall() {
        let mut mach = m(2);
        let end = mach.cache_access(0, 0, 0, 8, false);
        assert!(end > 0);
        assert!(mach.breakdowns()[0].get(Bucket::CacheStall) > 0);
        // Warm: free.
        let end2 = mach.cache_access(0, end, 0, 8, false);
        assert_eq!(end2, end);
    }

    #[test]
    fn wakeups_drain() {
        let mut mach = m(2);
        mach.wake(1, 500);
        mach.wake(0, 300);
        assert_eq!(mach.take_wakeups(), vec![(1, 500), (0, 300)]);
        assert!(mach.take_wakeups().is_empty());
    }

    #[test]
    fn single_proc_machine_works() {
        let mach = m(1);
        assert_eq!(mach.nprocs(), 1);
    }
}
