//! The protocol-layer interface, plus the [`Ideal`] (PRAM-like) protocol
//! used for the paper's "IDEAL" speedup bars.
//!
//! A [`Protocol`] receives every simulated operation an application thread
//! performs and decides how much time it costs, charging CPUs, caches and
//! the network through the [`Machine`]. Blocking operations (locks,
//! barriers) may return `None` and later wake the processor through
//! [`Machine::wake`].

use ssm_engine::Cycles;

use crate::machine::Machine;
use crate::shmem::{BarrierId, LockId};
use crate::sync::{BarrierTable, LockTable};

/// Static shape of the workload's world, given to [`Protocol::init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldShape {
    /// Bytes of shared address space actually allocated.
    pub heap_bytes: u64,
    /// Number of locks allocated.
    pub nlocks: usize,
    /// Number of barriers allocated.
    pub nbarriers: usize,
}

/// A software shared-memory protocol (the paper's protocol layer).
///
/// Completion-time convention: methods take the current application time
/// from `m.clock[p]` and return the cycle at which the operation completes
/// from the application's point of view. The driver then advances the
/// processor clock and attributes the elapsed window to the appropriate
/// bucket (see `ssm-core`).
pub trait Protocol {
    /// Short name for reports ("HLRC", "SC", "IDEAL").
    fn name(&self) -> &'static str;

    /// Called once before the run with the shape of the allocated world.
    fn init(&mut self, m: &Machine, shape: &WorldShape);

    /// A shared read of `[addr, addr+bytes)` by processor `p`.
    fn read(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles;

    /// A shared write of `[addr, addr+bytes)` by processor `p`.
    fn write(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles;

    /// `p` acquires `lock`. `Some(t)` if the acquire completes at `t`
    /// without waiting for another processor; `None` if `p` must block
    /// (the protocol will `m.wake(p, t)` when the lock is handed to it).
    fn lock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Option<Cycles>;

    /// `p` releases `lock`; returns the local completion time.
    fn unlock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Cycles;

    /// `p` arrives at `barrier`. `Some(t)` if `p` was the last arrival and
    /// leaves at `t`; `None` if `p` must block until the episode completes.
    fn barrier(&mut self, m: &mut Machine, p: usize, barrier: BarrierId) -> Option<Cycles>;

    /// `p`'s thread body returned (end of run for that processor).
    fn finished(&mut self, _m: &mut Machine, _p: usize) {}
}

/// The idealized shared-memory machine behind the paper's "IDEAL" bars:
/// remote communication and protocol actions are free; only computation,
/// the local cache hierarchy, and true synchronization dependences remain
/// (so load imbalance and serialization at locks still show, and
/// super-linear cache effects can push speedups above the processor count,
/// as the paper notes for Ocean and Volrend).
#[derive(Debug)]
pub struct Ideal {
    locks: LockTable,
    barriers: BarrierTable,
}

impl Default for Ideal {
    fn default() -> Self {
        Ideal::new()
    }
}

impl Ideal {
    /// Creates an ideal protocol instance.
    pub fn new() -> Self {
        Ideal {
            locks: LockTable::new(0),
            barriers: BarrierTable::new(0, 1),
        }
    }
}

impl Protocol for Ideal {
    fn name(&self) -> &'static str {
        "IDEAL"
    }

    fn init(&mut self, m: &Machine, shape: &WorldShape) {
        self.locks = LockTable::new(shape.nlocks);
        self.barriers = BarrierTable::new(shape.nbarriers, m.nprocs());
    }

    fn read(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        m.counters_mut(p).local_accesses += 1;
        m.cache_access(p, m.clock[p], addr, bytes, false)
    }

    fn write(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        m.counters_mut(p).local_accesses += 1;
        m.cache_access(p, m.clock[p], addr, bytes, true)
    }

    fn lock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Option<Cycles> {
        m.counters_mut(p).lock_acquires += 1;
        if self.locks.acquire(lock, p) {
            Some(m.clock[p])
        } else {
            None
        }
    }

    fn unlock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Cycles {
        let now = m.clock[p];
        if let Some(next) = self.locks.release(lock, p) {
            m.wake(next, now);
        }
        now
    }

    fn barrier(&mut self, m: &mut Machine, p: usize, barrier: BarrierId) -> Option<Cycles> {
        let now = m.clock[p];
        if let Some(arrivals) = self.barriers.arrive(barrier, p) {
            m.counters_mut(p).barriers += 1;
            for q in arrivals {
                if q != p {
                    m.wake(q, now);
                }
            }
            Some(now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::ProtoCosts;
    use ssm_mem::MemConfig;
    use ssm_net::CommParams;

    fn shape(nlocks: usize, nbarriers: usize) -> WorldShape {
        WorldShape {
            heap_bytes: 1 << 16,
            nlocks,
            nbarriers,
        }
    }

    fn machine(n: usize) -> Machine {
        Machine::new(
            n,
            CommParams::best(),
            ProtoCosts::best(),
            MemConfig::pentium_pro_like(),
        )
    }

    #[test]
    fn ideal_reads_cost_only_cache() {
        let mut m = machine(2);
        let mut pr = Ideal::new();
        pr.init(&m, &shape(0, 0));
        let t1 = pr.read(&mut m, 0, 0, 8);
        assert!(t1 > 0); // cold miss
        m.clock[0] = t1;
        let t2 = pr.read(&mut m, 0, 0, 8);
        assert_eq!(t2, t1); // warm
    }

    #[test]
    fn ideal_lock_contention_blocks() {
        let mut m = machine(2);
        let mut pr = Ideal::new();
        pr.init(&m, &shape(1, 0));
        assert_eq!(pr.lock(&mut m, 0, LockId(0)), Some(0));
        assert_eq!(pr.lock(&mut m, 1, LockId(0)), None);
        m.clock[0] = 500;
        let _ = pr.unlock(&mut m, 0, LockId(0));
        assert_eq!(m.take_wakeups(), vec![(1, 500)]);
    }

    #[test]
    fn ideal_barrier_wakes_all_at_last_arrival() {
        let mut m = machine(3);
        let mut pr = Ideal::new();
        pr.init(&m, &shape(0, 1));
        m.clock[0] = 10;
        m.clock[1] = 20;
        m.clock[2] = 90;
        assert_eq!(pr.barrier(&mut m, 0, BarrierId(0)), None);
        assert_eq!(pr.barrier(&mut m, 1, BarrierId(0)), None);
        assert_eq!(pr.barrier(&mut m, 2, BarrierId(0)), Some(90));
        let mut w = m.take_wakeups();
        w.sort_unstable();
        assert_eq!(w, vec![(0, 90), (1, 90)]);
    }
}
