//! The application-layer interface: a [`Workload`] allocates its shared
//! data in a [`World`] and produces one thread body per simulated
//! processor.
//!
//! Initialization (filling input arrays) and verification happen through
//! the *untimed* accessors, mirroring the paper's methodology where data
//! setup is outside the measured parallel section.

use crate::shmem::World;
use crate::vm::Proc;

/// One thread body: the program processor `pid` runs.
pub type ThreadBody = Box<dyn FnOnce(&Proc<'_>) + Send + 'static>;

/// An application in the suite (original or restructured).
pub trait Workload {
    /// Display name ("FFT", "Barnes-original", "Ocean-rowwise", …).
    fn name(&self) -> String;

    /// Bytes of shared store the workload needs.
    fn mem_bytes(&self) -> usize;

    /// Allocates shared data inside `world`, initializes inputs (untimed),
    /// and returns exactly `nprocs` thread bodies.
    ///
    /// Implementations may stash handles (e.g. in a `RefCell`) so
    /// [`Workload::verify`] can inspect results after the run.
    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody>;

    /// Checks the computed result after the run (untimed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first discrepancy.
    fn verify(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal workload used to exercise the trait plumbing.
    struct Trivial;

    impl Workload for Trivial {
        fn name(&self) -> String {
            "trivial".into()
        }
        fn mem_bytes(&self) -> usize {
            4096
        }
        fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
            let v = world.alloc_vec::<u64>(nprocs);
            (0..nprocs)
                .map(|pid| {
                    let v = v.clone();
                    let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                        v.set(p, pid, pid as u64);
                    });
                    body
                })
                .collect()
        }
    }

    #[test]
    fn workload_produces_one_body_per_proc() {
        let w = Trivial;
        let mut world = World::new(w.mem_bytes());
        let bodies = w.spawn(&mut world, 4);
        assert_eq!(bodies.len(), 4);
        assert_eq!(w.name(), "trivial");
        assert!(w.verify().is_ok());
    }
}
