//! Per-processor time breakdowns, event counters and plain-text table
//! rendering for the `ssm` simulator.
//!
//! The paper presents its results in two forms that this crate models
//! directly:
//!
//! * **execution-time breakdowns** (Figure 4): every simulated cycle of
//!   every processor is attributed to exactly one [`Bucket`] — busy time,
//!   local cache stall, data wait, lock wait, barrier wait, or protocol
//!   overhead — see [`Breakdown`];
//! * **protocol-activity breakdowns** (Table 4): protocol time split into
//!   handler execution, diff creation/application, twinning and page
//!   protection — see [`ProtoActivity`].
//!
//! [`Counters`] aggregates raw event counts (messages, bytes, faults, diffs,
//! …) used throughout the analysis, and [`Table`] renders the harness output
//! as aligned plain text, which is how every figure/table binary reports its
//! rows.

use std::fmt::Write as _;

/// Where a simulated processor cycle went. One bucket per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Application computation (including local L1 hits folded into IPC).
    Busy,
    /// Stalls in the local memory hierarchy (L2/memory for local data).
    CacheStall,
    /// Waiting for remotely-fetched data (page or block fetches).
    DataWait,
    /// Waiting to acquire a lock.
    LockWait,
    /// Waiting at a barrier.
    BarrierWait,
    /// Software protocol overhead: handlers, twins, diffs, mprotect — both
    /// for this processor's own faults and for serving other nodes.
    Protocol,
}

impl Bucket {
    /// All buckets, in presentation order.
    pub const ALL: [Bucket; 6] = [
        Bucket::Busy,
        Bucket::CacheStall,
        Bucket::DataWait,
        Bucket::LockWait,
        Bucket::BarrierWait,
        Bucket::Protocol,
    ];

    /// Short column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Busy => "busy",
            Bucket::CacheStall => "cache",
            Bucket::DataWait => "data",
            Bucket::LockWait => "lock",
            Bucket::BarrierWait => "barrier",
            Bucket::Protocol => "proto",
        }
    }

    fn index(self) -> usize {
        match self {
            Bucket::Busy => 0,
            Bucket::CacheStall => 1,
            Bucket::DataWait => 2,
            Bucket::LockWait => 3,
            Bucket::BarrierWait => 4,
            Bucket::Protocol => 5,
        }
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-processor execution-time breakdown (Figure 4 of the paper).
///
/// # Example
///
/// ```rust
/// use ssm_stats::{Breakdown, Bucket};
/// let mut b = Breakdown::new();
/// b.add(Bucket::Busy, 70);
/// b.add(Bucket::DataWait, 30);
/// assert_eq!(b.total(), 100);
/// assert_eq!(b.get(Bucket::DataWait), 30);
/// assert!((b.fraction(Bucket::Busy) - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    cycles: [u64; 6],
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `cycles` to `bucket`.
    pub fn add(&mut self, bucket: Bucket, cycles: u64) {
        self.cycles[bucket.index()] += cycles;
    }

    /// Cycles recorded for `bucket`.
    pub fn get(&self, bucket: Bucket) -> u64 {
        self.cycles[bucket.index()]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `bucket` as a fraction of the total (0 if the total is 0).
    pub fn fraction(&self, bucket: Bucket) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / t as f64
        }
    }

    /// Element-wise sum, used to average over processors.
    pub fn merge(&self, other: &Breakdown) -> Breakdown {
        let mut out = *self;
        for i in 0..6 {
            out.cycles[i] += other.cycles[i];
        }
        out
    }

    /// Averages a set of per-processor breakdowns (the paper's Figure 4
    /// shows the average over all processors).
    pub fn average<'a>(items: impl IntoIterator<Item = &'a Breakdown>) -> Breakdown {
        let mut sum = Breakdown::new();
        let mut n = 0u64;
        for b in items {
            sum = sum.merge(b);
            n += 1;
        }
        for c in &mut sum.cycles {
            *c = c.checked_div(n).unwrap_or(0);
        }
        sum
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.total().max(1) as f64;
        for (i, b) in Bucket::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{}={:.1}%", b.label(), 100.0 * self.get(*b) as f64 / t)?;
        }
        Ok(())
    }
}

/// Protocol-activity sub-breakdown (Table 4 of the paper): which protocol
/// costs the processors actually spend their protocol time on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtoActivity {
    /// Cycles executing protocol handlers (request service, control).
    pub handler: u64,
    /// Cycles creating diffs (compare + encode).
    pub diff_create: u64,
    /// Cycles applying diffs at homes.
    pub diff_apply: u64,
    /// Cycles creating twins.
    pub twin: u64,
    /// Cycles changing page protections (mprotect model).
    pub mprotect: u64,
}

impl ProtoActivity {
    /// Total protocol cycles.
    pub fn total(&self) -> u64 {
        self.handler + self.diff_create + self.diff_apply + self.twin + self.mprotect
    }

    /// All diff-related cycles (creation + application), the paper's "diff
    /// computation" column.
    pub fn diff_total(&self) -> u64 {
        self.diff_create + self.diff_apply
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &ProtoActivity) -> ProtoActivity {
        ProtoActivity {
            handler: self.handler + o.handler,
            diff_create: self.diff_create + o.diff_create,
            diff_apply: self.diff_apply + o.diff_apply,
            twin: self.twin + o.twin,
            mprotect: self.mprotect + o.mprotect,
        }
    }
}

/// Raw event counts kept by the protocols and the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Messages injected into the network (requests + data + control).
    pub messages: u64,
    /// Payload bytes injected into the network.
    pub bytes: u64,
    /// Read faults/misses that required remote communication.
    pub remote_reads: u64,
    /// Write faults/upgrades that required remote communication.
    pub remote_writes: u64,
    /// Whole-page fetches (HLRC) or block fetches (SC).
    pub fetches: u64,
    /// Diffs created (HLRC only).
    pub diffs: u64,
    /// Words carried by diffs (HLRC only).
    pub diff_words: u64,
    /// Twins created (HLRC only).
    pub twins: u64,
    /// Write notices received and applied (HLRC only).
    pub write_notices: u64,
    /// Invalidation messages processed (SC) or pages invalidated (HLRC).
    pub invalidations: u64,
    /// Lock acquires performed.
    pub lock_acquires: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Accesses satisfied entirely locally.
    pub local_accesses: u64,
    /// Automatic-update messages propagated (AURC only).
    pub auto_updates: u64,
    /// Copies resent by the reliability sublayer after a loss (zero on a
    /// fault-free network).
    pub retransmissions: u64,
    /// Duplicate copies discarded at the receiver by sequence number.
    pub dup_suppressed: u64,
    /// Injected faults observed on this node's sends: message drops.
    pub faults_dropped: u64,
    /// Injected faults observed on this node's sends: duplicated copies.
    pub faults_duplicated: u64,
    /// Injected faults observed on this node's sends: delay spikes.
    pub faults_delayed: u64,
    /// Injected faults observed on this node's sends: transient NI stalls.
    pub faults_stalled: u64,
    /// Baton handoffs: engine-thread resumes performed by the driver. Each
    /// one costs two host OS context switches, making this the primary
    /// host-side cost metric (deterministic, unlike wall clock).
    pub handoffs: u64,
    /// Simulated operations processed by the driver (compute blocks,
    /// shared accesses, sync operations).
    pub sim_ops: u64,
    /// Operations that arrived inside a batched handoff (0 with batching
    /// disabled; with batching on, `ops_batched / sim_ops` is the
    /// batched-op ratio).
    pub ops_batched: u64,
    /// Batch flushes forced by a synchronization operation (lock/barrier).
    pub flush_sync: u64,
    /// Batch flushes forced by a predicted remote miss or invalidated
    /// locality hint.
    pub flush_miss: u64,
    /// Batch flushes forced by the batch-length cap.
    pub flush_cap: u64,
    /// Batch flushes at the end of a thread body.
    pub flush_end: u64,
}

impl Counters {
    /// Element-wise sum.
    pub fn merge(&self, o: &Counters) -> Counters {
        Counters {
            messages: self.messages + o.messages,
            bytes: self.bytes + o.bytes,
            remote_reads: self.remote_reads + o.remote_reads,
            remote_writes: self.remote_writes + o.remote_writes,
            fetches: self.fetches + o.fetches,
            diffs: self.diffs + o.diffs,
            diff_words: self.diff_words + o.diff_words,
            twins: self.twins + o.twins,
            write_notices: self.write_notices + o.write_notices,
            invalidations: self.invalidations + o.invalidations,
            lock_acquires: self.lock_acquires + o.lock_acquires,
            barriers: self.barriers + o.barriers,
            local_accesses: self.local_accesses + o.local_accesses,
            auto_updates: self.auto_updates + o.auto_updates,
            retransmissions: self.retransmissions + o.retransmissions,
            dup_suppressed: self.dup_suppressed + o.dup_suppressed,
            faults_dropped: self.faults_dropped + o.faults_dropped,
            faults_duplicated: self.faults_duplicated + o.faults_duplicated,
            faults_delayed: self.faults_delayed + o.faults_delayed,
            faults_stalled: self.faults_stalled + o.faults_stalled,
            handoffs: self.handoffs + o.handoffs,
            sim_ops: self.sim_ops + o.sim_ops,
            ops_batched: self.ops_batched + o.ops_batched,
            flush_sync: self.flush_sync + o.flush_sync,
            flush_miss: self.flush_miss + o.flush_miss,
            flush_cap: self.flush_cap + o.flush_cap,
            flush_end: self.flush_end + o.flush_end,
        }
    }

    /// Total batch flushes, by any cause.
    pub fn flushes(&self) -> u64 {
        self.flush_sync + self.flush_miss + self.flush_cap + self.flush_end
    }

    /// A copy with the engine-performance counters (handoffs, batching,
    /// flush causes) zeroed — the simulated-machine counters alone. Used
    /// when comparing runs that must agree on protocol behaviour but may
    /// legitimately differ in host-side engine scheduling (e.g. batching
    /// enabled vs disabled).
    pub fn without_engine_counters(&self) -> Counters {
        Counters {
            handoffs: 0,
            sim_ops: 0,
            ops_batched: 0,
            flush_sync: 0,
            flush_miss: 0,
            flush_cap: 0,
            flush_end: 0,
            ..*self
        }
    }

    /// Total injected-fault events observed on this node's sends.
    pub fn faults_injected(&self) -> u64 {
        self.faults_dropped + self.faults_duplicated + self.faults_delayed + self.faults_stalled
    }
}

/// A plain-text table with aligned columns — the output format of every
/// figure/table binary in the benchmark harness.
///
/// # Example
///
/// ```rust
/// let mut t = ssm_stats::Table::new(vec!["app", "speedup"]);
/// t.row(vec!["FFT".into(), "7.9".into()]);
/// t.row(vec!["LU".into(), "11.2".into()]);
/// let s = t.render();
/// assert!(s.contains("FFT"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows extend the implicit width.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns (first column left-aligned, the
    /// rest right-aligned, which suits numeric results).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for i in 0..ncols {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[i]);
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a cycle count compactly (e.g. `1.25M`).
pub fn fmt_cycles(c: u64) -> String {
    if c >= 1_000_000_000 {
        format!("{:.2}G", c as f64 / 1e9)
    } else if c >= 1_000_000 {
        format!("{:.2}M", c as f64 / 1e6)
    } else if c >= 10_000 {
        format!("{:.1}K", c as f64 / 1e3)
    } else {
        c.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accounting() {
        let mut b = Breakdown::new();
        b.add(Bucket::Busy, 10);
        b.add(Bucket::Busy, 5);
        b.add(Bucket::Protocol, 85);
        assert_eq!(b.get(Bucket::Busy), 15);
        assert_eq!(b.total(), 100);
        assert!((b.fraction(Bucket::Protocol) - 0.85).abs() < 1e-12);
        assert_eq!(b.fraction(Bucket::LockWait), 0.0);
    }

    #[test]
    fn breakdown_average() {
        let mut a = Breakdown::new();
        a.add(Bucket::Busy, 100);
        let mut b = Breakdown::new();
        b.add(Bucket::Busy, 200);
        b.add(Bucket::DataWait, 50);
        let avg = Breakdown::average([&a, &b]);
        assert_eq!(avg.get(Bucket::Busy), 150);
        assert_eq!(avg.get(Bucket::DataWait), 25);
    }

    #[test]
    fn empty_average_is_zero() {
        let avg = Breakdown::average(std::iter::empty::<&Breakdown>());
        assert_eq!(avg.total(), 0);
    }

    #[test]
    fn proto_activity_totals() {
        let p = ProtoActivity {
            handler: 10,
            diff_create: 20,
            diff_apply: 5,
            twin: 3,
            mprotect: 2,
        };
        assert_eq!(p.total(), 40);
        assert_eq!(p.diff_total(), 25);
        let doubled = p.merge(&p);
        assert_eq!(doubled.total(), 80);
    }

    #[test]
    fn counters_merge() {
        let a = Counters {
            messages: 3,
            bytes: 100,
            ..Counters::default()
        };
        let b = Counters {
            messages: 2,
            diffs: 7,
            ..Counters::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.messages, 5);
        assert_eq!(m.bytes, 100);
        assert_eq!(m.diffs, 7);
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn table_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cycles_formatting() {
        assert_eq!(fmt_cycles(500), "500");
        assert_eq!(fmt_cycles(12_345), "12.3K");
        assert_eq!(fmt_cycles(2_500_000), "2.50M");
        assert_eq!(fmt_cycles(3_000_000_000), "3.00G");
    }

    #[test]
    fn bucket_labels_unique() {
        let labels: std::collections::HashSet<_> = Bucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
