//! A reusable pool of OS worker threads.
//!
//! Spawning an OS thread per simulated processor per simulation is the
//! dominant setup cost of small sweep cells: a test-scale cell finishes in
//! milliseconds, but pays for `nprocs` thread spawns and joins every time.
//! A [`WorkerSet`] keeps workers parked between jobs so consecutive
//! simulations (and retry attempts) reuse the same OS threads.
//!
//! A job runs to completion on one worker and then hands back a
//! *completion* closure. The worker re-registers itself as idle **before**
//! running the completion — so by the time the submitter observes the
//! job's result (the completion is how results are delivered), the worker
//! is already available for reuse. This ordering is what makes "zero fresh
//! spawns on the next simulation" deterministic rather than a race.
//!
//! Workers are detached: when the last [`WorkerSet`] handle drops, the
//! idle workers' job channels close and the threads exit on their own.
//! A worker abandoned mid-job (e.g. a timed-out sweep cell) is simply
//! unavailable until its job finishes, after which it re-idles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, Weak};

/// What a worker runs: the job body, returning the completion closure the
/// worker invokes after re-parking itself.
pub type Job = Box<dyn FnOnce() -> Completion + Send + 'static>;

/// Delivered after the worker is back on the idle list.
pub type Completion = Box<dyn FnOnce() + Send + 'static>;

/// Thread-name prefix of pooled workers (`ssm-worker-<n>`).
pub const WORKER_THREAD_PREFIX: &str = "ssm-worker-";

struct Inner {
    idle: Mutex<Vec<Sender<Job>>>,
    stack_size: usize,
}

/// A shared, recyclable set of OS worker threads.
///
/// Cloning is cheap (`Arc` inside); all clones feed the same idle list.
#[derive(Clone)]
pub struct WorkerSet {
    inner: Arc<Inner>,
}

impl WorkerSet {
    /// Creates an empty set. Workers get an 8 MiB stack (recursive
    /// applications such as Barnes-Hut need more than the platform default
    /// for spawned threads).
    pub fn new() -> Self {
        WorkerSet {
            inner: Arc::new(Inner {
                idle: Mutex::new(Vec::new()),
                stack_size: 8 << 20,
            }),
        }
    }

    /// Number of workers currently parked and available.
    pub fn idle_count(&self) -> usize {
        self.inner.idle.lock().expect("idle list").len()
    }

    /// Runs `job` on an idle worker, spawning a fresh one only if none is
    /// parked. Returns `true` if an existing worker was reused.
    pub fn submit(&self, job: Job) -> bool {
        // Reuse loop: a parked worker's channel can only be closed if its
        // thread exited (it never closes its own receiver while parked),
        // which cannot happen for a registered idle worker — but stay
        // defensive and fall through to a fresh spawn on send failure.
        let mut job = job;
        loop {
            let recycled = self.inner.idle.lock().expect("idle list").pop();
            match recycled {
                Some(tx) => match tx.send(job) {
                    Ok(()) => return true,
                    Err(err) => job = err.0,
                },
                None => break,
            }
        }
        self.spawn_worker(job);
        false
    }

    fn spawn_worker(&self, first_job: Job) {
        static WORKER_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = WORKER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (job_tx, job_rx) = channel::<Job>();
        let weak: Weak<Inner> = Arc::downgrade(&self.inner);
        std::thread::Builder::new()
            .name(format!("{WORKER_THREAD_PREFIX}{seq}"))
            .stack_size(self.inner.stack_size)
            .spawn(move || {
                let mut next = Some(first_job);
                loop {
                    let job = match next.take() {
                        Some(j) => j,
                        None => match job_rx.recv() {
                            Ok(j) => j,
                            Err(_) => return, // set dropped while parked
                        },
                    };
                    let completion = catch_unwind(AssertUnwindSafe(job));
                    // Re-park *before* delivering the result, so observers
                    // of the completion can immediately reuse this worker.
                    match weak.upgrade() {
                        Some(inner) => inner.idle.lock().expect("idle list").push(job_tx.clone()),
                        None => {
                            // The set is gone; deliver and exit.
                            if let Ok(done) = completion {
                                done();
                            }
                            return;
                        }
                    }
                    if let Ok(done) = completion {
                        done();
                    }
                }
            })
            .expect("failed to spawn pooled worker thread");
    }
}

impl Default for WorkerSet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSet")
            .field("idle", &self.idle_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel as result_channel;

    fn run_on(set: &WorkerSet, value: u32) -> (bool, u32) {
        let (tx, rx) = result_channel();
        let reused = set.submit(Box::new(move || {
            let out = value * 2;
            Box::new(move || {
                let _ = tx.send(out);
            })
        }));
        (reused, rx.recv().expect("job result"))
    }

    #[test]
    fn first_job_spawns_then_reuses() {
        let set = WorkerSet::new();
        let (reused, out) = run_on(&set, 1);
        assert!(!reused);
        assert_eq!(out, 2);
        // The completion fired after re-parking, so reuse is guaranteed.
        for i in 2..5 {
            let (reused, out) = run_on(&set, i);
            assert!(reused, "job {i} should reuse the parked worker");
            assert_eq!(out, i * 2);
        }
        assert_eq!(set.idle_count(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let set = WorkerSet::new();
        // A panic in the job body is caught by the worker loop; the thread
        // re-parks (with no completion delivered).
        let reused = set.submit(Box::new(|| -> Completion { panic!("job exploded") }));
        assert!(!reused);
        // Wait for the worker to re-park, then reuse it.
        for _ in 0..500 {
            if set.idle_count() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (reused, out) = run_on(&set, 21);
        assert!(reused, "worker should survive a panicking job");
        assert_eq!(out, 42);
    }

    #[test]
    fn concurrent_submits_get_distinct_workers() {
        let set = WorkerSet::new();
        let (gate_tx, gate_rx) = result_channel::<()>();
        let (done_tx, done_rx) = result_channel::<()>();
        // First job blocks until released, so the second must spawn fresh.
        let dt = done_tx.clone();
        set.submit(Box::new(move || {
            gate_rx.recv().expect("gate");
            Box::new(move || {
                let _ = dt.send(());
            })
        }));
        let reused = set.submit(Box::new(move || {
            Box::new(move || {
                let _ = done_tx.send(());
            })
        }));
        assert!(!reused, "busy worker must not be handed a second job");
        gate_tx.send(()).expect("release");
        done_rx.recv().expect("first done");
        done_rx.recv().expect("second done");
    }
}
