//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders entries
//! by `(time, sequence number)`. The sequence number is assigned at push
//! time, so two events scheduled for the same cycle are delivered in the
//! order they were scheduled. This is what makes whole-simulation runs
//! bit-for-bit reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycles;

struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A priority queue of timestamped events with FIFO tie-breaking.
///
/// # Example
///
/// ```rust
/// let mut q = ssm_engine::EventQueue::new();
/// q.push(3, 'x');
/// q.push(1, 'y');
/// assert_eq!(q.pop(), Some((1, 'y')));
/// assert_eq!(q.pop(), Some((3, 'x')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` for simulated cycle `time`.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, together with its time.
    ///
    /// Events with equal times come out in insertion order.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaves_pushes_and_pops() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "b");
        q.push(4, "c");
        assert_eq!(q.pop(), Some((4, "c")));
        q.push(5, "d");
        // "b" was pushed before "d": FIFO within time 5.
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "d")));
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(42, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(42));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
