//! Contended shared resources.
//!
//! The paper's simulator "models contention in great detail at all levels,
//! including the network end-points" (§3.1). Two kinds of contention arise:
//!
//! * **occupancy** — a serially-reusable unit (host CPU sending a message,
//!   the NI processor preparing a packet) is busy for a fixed time per
//!   operation; later requests queue behind earlier ones. Modelled by
//!   [`Resource`].
//! * **bandwidth** — a byte pipe (I/O bus, memory bus) moves data at a fixed
//!   rate; transfers serialize. Modelled by [`Pipe`], which keeps bandwidth
//!   as an exact rational (`bytes` per `cycles`) so the simulation stays
//!   deterministic and integer-only.
//!
//! Because the simulation is single-threaded (the engine's baton guarantees
//! it), reservation order equals simulation order and a simple
//! `busy_until` watermark implements FIFO queueing exactly.

use crate::Cycles;

/// A serially-reusable resource with FIFO queueing.
///
/// `acquire(now, duration)` reserves the resource for `duration` cycles at
/// the earliest time ≥ `now` it is free, and returns the cycle at which the
/// reservation *completes*.
///
/// # Example
///
/// ```rust
/// let mut ni = ssm_engine::Resource::new();
/// assert_eq!(ni.acquire(0, 100), 100);
/// assert_eq!(ni.acquire(50, 100), 200); // waits for the first packet
/// assert_eq!(ni.acquire(500, 100), 600); // idle gap: starts immediately
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: Cycles,
    /// Total cycles the resource was occupied (for utilization statistics).
    busy_cycles: Cycles,
}

impl Resource {
    /// Creates a resource that is free from cycle 0.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Reserves the resource at the earliest point ≥ `now`; returns the
    /// completion time. A zero `duration` returns `max(now, busy_until)`
    /// without occupying anything.
    pub fn acquire(&mut self, now: Cycles, duration: Cycles) -> Cycles {
        let start = self.busy_until.max(now);
        self.busy_until = start + duration;
        self.busy_cycles += duration;
        self.busy_until
    }

    /// Like [`Resource::acquire`] but also returns the start time, which is
    /// when the requester stops waiting in line and begins being served.
    pub fn acquire_span(&mut self, now: Cycles, duration: Cycles) -> (Cycles, Cycles) {
        let start = self.busy_until.max(now);
        self.busy_until = start + duration;
        self.busy_cycles += duration;
        (start, self.busy_until)
    }

    /// First cycle at which the resource is free.
    pub fn free_at(&self) -> Cycles {
        self.busy_until
    }

    /// Total occupied cycles so far.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }
}

/// A bandwidth-limited byte pipe with FIFO queueing.
///
/// Bandwidth is an exact rational `bytes_per_period / period`: e.g. the
/// paper's achievable I/O bus moves 0.5 bytes/cycle = 1 byte per 2 cycles,
/// and the "better than best" configuration moves 4 bytes/cycle. A `None`
/// rate means infinite bandwidth (transfers are free and instantaneous).
///
/// # Example
///
/// ```rust
/// use ssm_engine::Pipe;
/// // 0.5 bytes/cycle: a 4096-byte page occupies the bus for 8192 cycles.
/// let mut io_bus = Pipe::per_two_cycles(1);
/// assert_eq!(io_bus.transfer(0, 4096), 8192);
/// // Back-to-back transfers queue.
/// assert_eq!(io_bus.transfer(0, 32), 8192 + 64);
/// ```
#[derive(Debug, Clone)]
pub struct Pipe {
    /// `Some((bytes, cycles))`: moves `bytes` every `cycles`. `None`: infinite.
    rate: Option<(u64, u64)>,
    busy_until: Cycles,
    bytes_moved: u64,
    busy_cycles: Cycles,
}

impl Pipe {
    /// A pipe moving `bytes` every `cycles` (both must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` or `cycles` is zero; use [`Pipe::infinite`] for an
    /// uncontended pipe.
    pub fn new(bytes: u64, cycles: u64) -> Self {
        assert!(bytes > 0 && cycles > 0, "rate terms must be non-zero");
        Pipe {
            rate: Some((bytes, cycles)),
            busy_until: 0,
            bytes_moved: 0,
            busy_cycles: 0,
        }
    }

    /// Convenience: `bytes` per single cycle.
    pub fn per_cycle(bytes: u64) -> Self {
        Pipe::new(bytes, 1)
    }

    /// Convenience: `bytes` per two cycles (used for 0.5 bytes/cycle).
    pub fn per_two_cycles(bytes: u64) -> Self {
        Pipe::new(bytes, 2)
    }

    /// A pipe with infinite bandwidth: transfers complete instantly and
    /// never contend.
    pub fn infinite() -> Self {
        Pipe {
            rate: None,
            busy_until: 0,
            bytes_moved: 0,
            busy_cycles: 0,
        }
    }

    /// Cycles needed to move `bytes` through an idle pipe (ceiling division).
    pub fn latency_of(&self, bytes: u64) -> Cycles {
        match self.rate {
            None => 0,
            Some((b, c)) => (bytes * c).div_ceil(b),
        }
    }

    /// Moves `bytes` through the pipe starting no earlier than `now`;
    /// returns the completion time. Transfers are FIFO.
    pub fn transfer(&mut self, now: Cycles, bytes: u64) -> Cycles {
        self.bytes_moved += bytes;
        let dur = self.latency_of(bytes);
        let start = self.busy_until.max(now);
        self.busy_until = start + dur;
        self.busy_cycles += dur;
        self.busy_until
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total occupied cycles so far.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(10, 5), 15);
        assert_eq!(r.acquire(0, 5), 20); // earlier request time still queues
        assert_eq!(r.acquire(100, 1), 101);
        assert_eq!(r.busy_cycles(), 11);
    }

    #[test]
    fn resource_zero_duration() {
        let mut r = Resource::new();
        r.acquire(0, 10);
        assert_eq!(r.acquire(3, 0), 10);
        assert_eq!(r.free_at(), 10);
    }

    #[test]
    fn resource_span_reports_start() {
        let mut r = Resource::new();
        r.acquire(0, 100);
        let (start, end) = r.acquire_span(40, 10);
        assert_eq!((start, end), (100, 110));
    }

    #[test]
    fn pipe_exact_rational() {
        // 2 bytes / 3 cycles.
        let p = Pipe::new(2, 3);
        assert_eq!(p.latency_of(0), 0);
        assert_eq!(p.latency_of(1), 2); // ceil(3/2)
        assert_eq!(p.latency_of(2), 3);
        assert_eq!(p.latency_of(4096), 6144);
    }

    #[test]
    fn pipe_contention() {
        let mut p = Pipe::per_cycle(2); // memory-bus-like: 2 B/cycle
        assert_eq!(p.transfer(0, 32), 16);
        assert_eq!(p.transfer(10, 32), 32);
        assert_eq!(p.bytes_moved(), 64);
    }

    #[test]
    fn pipe_infinite() {
        let mut p = Pipe::infinite();
        assert_eq!(p.transfer(7, u64::MAX / 2), 7);
        assert_eq!(p.busy_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn pipe_rejects_zero_rate() {
        let _ = Pipe::new(0, 1);
    }
}
