//! Execution-driven application threads.
//!
//! The paper uses augmint to run real application code and intercept its
//! memory references. We achieve the same effect with a *baton* scheme:
//! every simulated processor's program runs on a real OS thread, but a
//! strict handover protocol guarantees that at most one of these threads —
//! or the simulator itself — executes at any instant:
//!
//! 1. the simulator calls [`ThreadPool::resume`] for the thread it wants to
//!    advance and then blocks;
//! 2. the application thread runs until it performs a simulated operation
//!    (a shared read/write, a lock, a barrier, a block of computation),
//!    which calls [`Yielder::yield_op`]; that hands the operation — and the
//!    baton — back to the simulator and blocks;
//! 3. the simulator models the operation in simulated time and later resumes
//!    the thread again.
//!
//! Consequences:
//!
//! * the interleaving of application threads is chosen entirely by the
//!   simulator (by simulated time), so runs are **deterministic**;
//! * application code may freely share a single data store without
//!   synchronization, because real-time concurrency never happens (the
//!   `ssm-proto` crate relies on this for its shared-memory store).
//!
//! Each handoff costs two OS context switches, which dominates host time
//! for fine-grained programs. Two mitigations live here:
//!
//! * **batched handoffs** — [`Yielder::yield_batch`] hands a whole *run* of
//!   operations to the simulator in one baton exchange ([`Resumed::Batch`]);
//!   the caller decides which operations may legally be grouped (see
//!   `ssm-proto`'s batching `Proc` and `ssm-core`'s driver, which replays a
//!   batch one operation per scheduling step, preserving exact simulated
//!   order);
//! * **worker recycling** — threads are leased from a [`WorkerSet`]
//!   (`ThreadPool::with_workers`), so consecutive simulations reuse parked
//!   OS threads instead of spawning fresh ones.
//!
//! Threads that return normally report [`Resumed::Finished`]; a panic inside
//! application code is captured and re-thrown in the simulator with the
//! thread's message, so test failures surface in the right place.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use crate::workers::{Completion, WorkerSet};

/// Identifies a thread within its [`ThreadPool`] (dense, starting at 0).
///
/// In this workspace thread `i` is simulated processor `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

enum Req<R> {
    Op(R),
    Batch(Vec<R>, u32),
    Finished,
    Panicked(String),
}

/// Sentinel unwind payload used to silently cancel a parked thread when the
/// pool is dropped early (e.g. a test aborts a simulation midway).
struct Canceled;

/// What a resumed thread did with its time slice.
#[derive(Debug, PartialEq, Eq)]
pub enum Resumed<R> {
    /// The thread yielded a simulated operation and is parked again.
    Op(R),
    /// The thread yielded a whole run of operations in one handoff and is
    /// parked again. The `u32` tag is opaque to the engine: the yielding
    /// layer uses it to record *why* the run ended (sync, miss, cap, …).
    Batch(Vec<R>, u32),
    /// The thread's closure returned; it must not be resumed again.
    Finished,
}

/// The application-side handle: lets application code hand operations to the
/// simulator. One `Yielder` is passed to each spawned closure.
pub struct Yielder<R> {
    tid: ThreadId,
    resume_rx: Receiver<()>,
    req_tx: Sender<(ThreadId, Req<R>)>,
}

impl<R> Yielder<R> {
    /// This thread's id (equals its simulated processor number).
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Hands `op` (and the baton) to the simulator; returns when the
    /// simulator resumes this thread.
    ///
    /// # Panics
    ///
    /// Panics (with a silent cancellation payload) if the pool was dropped;
    /// the unwind is caught by the pool's thread wrapper.
    pub fn yield_op(&self, op: R) {
        self.hand_over(Req::Op(op));
    }

    /// Hands a whole batch of operations (and the baton) to the simulator
    /// in **one** exchange; returns when the simulator, having processed
    /// every operation of the batch, resumes this thread. `tag` travels
    /// with the batch untouched (see [`Resumed::Batch`]).
    ///
    /// # Panics
    ///
    /// As [`Yielder::yield_op`].
    pub fn yield_batch(&self, ops: Vec<R>, tag: u32) {
        self.hand_over(Req::Batch(ops, tag));
    }

    fn hand_over(&self, req: Req<R>) {
        if self.req_tx.send((self.tid, req)).is_err() {
            panic::panic_any(Canceled);
        }
        if self.resume_rx.recv().is_err() {
            panic::panic_any(Canceled);
        }
    }
}

struct Slot {
    resume_tx: Sender<()>,
    finished: bool,
}

/// Tracks how many of this pool's jobs are still running on workers, so
/// `Drop` can quiesce before the pool's state goes away.
struct PendingJobs {
    count: Mutex<usize>,
    zero: Condvar,
}

impl PendingJobs {
    fn new() -> Arc<Self> {
        Arc::new(PendingJobs {
            count: Mutex::new(0),
            zero: Condvar::new(),
        })
    }

    fn inc(&self) {
        *self.count.lock().expect("pending jobs") += 1;
    }

    fn dec(&self) {
        let mut n = self.count.lock().expect("pending jobs");
        *n -= 1;
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut n = self.count.lock().expect("pending jobs");
        while *n > 0 {
            n = self.zero.wait(n).expect("pending jobs");
        }
    }
}

/// Owns the application threads and the baton.
///
/// # Example
///
/// ```rust
/// use ssm_engine::{ThreadPool, Resumed};
///
/// let mut pool: ThreadPool<u32> = ThreadPool::new();
/// let a = pool.spawn(|y| {
///     y.yield_op(1);
///     y.yield_batch(vec![2, 3], 7);
/// });
/// assert_eq!(pool.resume(a), Resumed::Op(1));
/// assert_eq!(pool.resume(a), Resumed::Batch(vec![2, 3], 7));
/// assert_eq!(pool.resume(a), Resumed::Finished);
/// ```
pub struct ThreadPool<R> {
    slots: Vec<Slot>,
    req_rx: Receiver<(ThreadId, Req<R>)>,
    req_tx: Sender<(ThreadId, Req<R>)>,
    workers: WorkerSet,
    pending: Arc<PendingJobs>,
    spawned: usize,
    reused: usize,
}

impl<R: Send + 'static> ThreadPool<R> {
    /// Creates an empty pool with a private [`WorkerSet`]. Application
    /// threads get an 8 MiB stack (recursive applications such as
    /// Barnes-Hut need more than the platform default for spawned
    /// threads).
    pub fn new() -> Self {
        Self::with_workers(WorkerSet::new())
    }

    /// Creates an empty pool that leases its OS threads from `workers`, so
    /// consecutive pools sharing one set recycle parked threads instead of
    /// spawning.
    pub fn with_workers(workers: WorkerSet) -> Self {
        let (req_tx, req_rx) = channel();
        ThreadPool {
            slots: Vec::new(),
            req_rx,
            req_tx,
            workers,
            pending: PendingJobs::new(),
            spawned: 0,
            reused: 0,
        }
    }

    /// Spawns `f` parked: it will not execute until first resumed.
    pub fn spawn<F>(&mut self, f: F) -> ThreadId
    where
        F: FnOnce(&Yielder<R>) + Send + 'static,
    {
        let tid = ThreadId(self.slots.len());
        let (resume_tx, resume_rx) = channel();
        let yielder = Yielder {
            tid,
            resume_rx,
            req_tx: self.req_tx.clone(),
        };
        let req_tx = self.req_tx.clone();
        let pending = self.pending.clone();
        pending.inc();
        let job = Box::new(move || -> Completion {
            // Park until the first resume; a closed channel means the pool
            // is gone and the job just retires.
            if yielder.resume_rx.recv().is_err() {
                return Box::new(move || pending.dec());
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&yielder)));
            let msg = match result {
                Ok(()) => Some(Req::Finished),
                Err(payload) => {
                    if payload.downcast_ref::<Canceled>().is_some() {
                        None // silent cancellation; nobody is listening
                    } else {
                        let text = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        Some(Req::Panicked(text))
                    }
                }
            };
            let tid = yielder.tid;
            // The worker runs this *after* re-parking itself, so whoever
            // receives the message can immediately reuse the worker.
            Box::new(move || {
                if let Some(msg) = msg {
                    let _ = req_tx.send((tid, msg));
                }
                pending.dec();
            })
        });
        if self.workers.submit(job) {
            self.reused += 1;
        } else {
            self.spawned += 1;
        }
        self.slots.push(Slot {
            resume_tx,
            finished: false,
        });
        tid
    }

    /// Number of threads spawned so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no threads were spawned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `tid` has finished (its closure returned).
    pub fn is_finished(&self, tid: ThreadId) -> bool {
        self.slots[tid.0].finished
    }

    /// How many of this pool's threads required a fresh OS thread spawn,
    /// and how many reused a parked worker from the pool's [`WorkerSet`].
    pub fn thread_stats(&self) -> (usize, usize) {
        (self.spawned, self.reused)
    }

    /// Hands the baton to thread `tid` and blocks until it yields an
    /// operation (or a batch) or finishes.
    ///
    /// # Panics
    ///
    /// * if `tid` already finished,
    /// * if the application thread panicked — the panic message is rethrown
    ///   here, prefixed with the thread id.
    pub fn resume(&mut self, tid: ThreadId) -> Resumed<R> {
        let slot = &mut self.slots[tid.0];
        assert!(!slot.finished, "resumed finished thread {tid}");
        slot.resume_tx
            .send(())
            .expect("simulated thread disappeared without reporting");
        let (from, req) = self
            .req_rx
            .recv()
            .expect("simulated thread disappeared without reporting");
        debug_assert_eq!(from, tid, "baton protocol violated: wrong thread ran");
        match req {
            Req::Op(op) => Resumed::Op(op),
            Req::Batch(ops, tag) => Resumed::Batch(ops, tag),
            Req::Finished => {
                self.slots[tid.0].finished = true;
                Resumed::Finished
            }
            Req::Panicked(msg) => panic!("simulated thread {tid} panicked: {msg}"),
        }
    }
}

impl<R: Send + 'static> Default for ThreadPool<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> Drop for ThreadPool<R> {
    fn drop(&mut self) {
        // Wake every parked thread with a closed channel so it cancels
        // itself, then wait for all of this pool's jobs to retire — after
        // that, every leased worker is back on the set's idle list and no
        // application code from this simulation is still running.
        for slot in &mut self.slots {
            // Dropping the sender closes the channel.
            let (dead_tx, _) = channel();
            slot.resume_tx = dead_tx;
        }
        self.pending.wait_zero();
    }
}

impl<R> std::fmt::Debug for ThreadPool<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.slots.len())
            .field(
                "finished",
                &self.slots.iter().filter(|s| s.finished).count(),
            )
            .field("spawned", &self.spawned)
            .field("reused", &self.reused)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_round_trip() {
        let mut pool: ThreadPool<u32> = ThreadPool::new();
        let t = pool.spawn(|y| {
            for i in 0..5 {
                y.yield_op(i);
            }
        });
        for i in 0..5 {
            assert_eq!(pool.resume(t), Resumed::Op(i));
        }
        assert_eq!(pool.resume(t), Resumed::Finished);
        assert!(pool.is_finished(t));
    }

    #[test]
    fn batched_yield_round_trip() {
        let mut pool: ThreadPool<u32> = ThreadPool::new();
        let t = pool.spawn(|y| {
            y.yield_batch(vec![1, 2, 3], 9);
            y.yield_op(4);
            y.yield_batch(Vec::new(), 0); // empty batches are legal
        });
        assert_eq!(pool.resume(t), Resumed::Batch(vec![1, 2, 3], 9));
        assert_eq!(pool.resume(t), Resumed::Op(4));
        assert_eq!(pool.resume(t), Resumed::Batch(Vec::new(), 0));
        assert_eq!(pool.resume(t), Resumed::Finished);
    }

    #[test]
    fn interleaving_is_simulator_controlled() {
        let mut pool: ThreadPool<(usize, u32)> = ThreadPool::new();
        let a = pool.spawn(|y| {
            for i in 0..3 {
                y.yield_op((0, i));
            }
        });
        let b = pool.spawn(|y| {
            for i in 0..3 {
                y.yield_op((1, i));
            }
        });
        // Alternate; the observed order is exactly the resume order.
        let mut seen = Vec::new();
        for i in 0..3 {
            if let Resumed::Op(op) = pool.resume(a) {
                seen.push(op);
            }
            if let Resumed::Op(op) = pool.resume(b) {
                seen.push(op);
            }
            let _ = i;
        }
        assert_eq!(seen, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn threads_share_state_without_locks() {
        // The baton means plain Arc<UnsafeCell>-style sharing is sound; here
        // we demonstrate with an AtomicU64 for the test's own sanity.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool: ThreadPool<()> = ThreadPool::new();
        let mut tids = Vec::new();
        for _ in 0..4 {
            let c = counter.clone();
            tids.push(pool.spawn(move |y| {
                for _ in 0..10 {
                    let v = c.load(Ordering::Relaxed);
                    y.yield_op(());
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        // Round-robin: the read-yield-write pattern would lose updates under
        // real concurrency, but the baton serializes fully only if we resume
        // one step at a time... here each thread reads, yields, then writes
        // when next resumed, so interleaved resumes DO overlap windows.
        // Resume each thread to completion sequentially instead: no overlap.
        for &t in &tids {
            loop {
                if pool.resume(t) == Resumed::Finished {
                    break;
                }
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn pools_sharing_a_worker_set_recycle_threads() {
        let workers = WorkerSet::new();
        let run_one = |ws: &WorkerSet| {
            let mut pool: ThreadPool<u32> = ThreadPool::with_workers(ws.clone());
            let tids: Vec<ThreadId> = (0..3).map(|i| pool.spawn(move |y| y.yield_op(i))).collect();
            for &t in &tids {
                let _ = pool.resume(t);
                assert_eq!(pool.resume(t), Resumed::Finished);
            }
            pool.thread_stats()
        };
        assert_eq!(run_one(&workers), (3, 0), "cold set spawns every thread");
        assert_eq!(run_one(&workers), (0, 3), "warm set spawns none");
        assert_eq!(run_one(&workers), (0, 3), "and stays warm");
    }

    #[test]
    fn canceled_threads_return_to_the_worker_set() {
        let workers = WorkerSet::new();
        {
            let mut pool: ThreadPool<()> = ThreadPool::with_workers(workers.clone());
            let t = pool.spawn(|y| {
                y.yield_op(());
                y.yield_op(());
            });
            let _ = pool.resume(t);
            // Dropped mid-simulation: the parked thread cancels, and the
            // drop quiesce guarantees its worker re-parked.
        }
        let mut pool: ThreadPool<()> = ThreadPool::with_workers(workers);
        let t = pool.spawn(|y| y.yield_op(()));
        let _ = pool.resume(t);
        assert_eq!(pool.resume(t), Resumed::Finished);
        assert_eq!(pool.thread_stats(), (0, 1), "canceled worker was reused");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn app_panic_propagates() {
        let mut pool: ThreadPool<()> = ThreadPool::new();
        let t = pool.spawn(|y| {
            y.yield_op(());
            panic!("boom");
        });
        let _ = pool.resume(t);
        let _ = pool.resume(t);
    }

    #[test]
    fn drop_with_parked_threads_does_not_hang() {
        let mut pool: ThreadPool<()> = ThreadPool::new();
        let t = pool.spawn(|y| {
            y.yield_op(());
            y.yield_op(());
        });
        let _ = pool.resume(t);
        drop(pool); // thread is parked inside the first yield: must not hang
    }

    #[test]
    fn spawn_does_not_run_until_resumed() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        let mut pool: ThreadPool<()> = ThreadPool::new();
        let t = pool.spawn(move |_| {
            r.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!ran.load(Ordering::SeqCst));
        assert_eq!(pool.resume(t), Resumed::Finished);
        assert!(ran.load(Ordering::SeqCst));
    }
}
