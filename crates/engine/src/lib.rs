//! Deterministic discrete-event simulation engine with execution-driven
//! application threads.
//!
//! This crate is the lowest layer of the `ssm` reproduction of *"Limits to
//! the Performance of Software Shared Memory: A Layered Approach"* (HPCA
//! 1999). It plays the role that **augmint** plays in the paper: it advances
//! a simulated clock, dispatches timestamped events deterministically, and
//! lets real application code drive the simulation by yielding memory and
//! synchronization operations to it.
//!
//! The engine knows nothing about caches, networks or coherence protocols —
//! those are built on top of three primitives provided here:
//!
//! * [`EventQueue`] — a priority queue of `(time, seq, event)` entries with
//!   deterministic FIFO tie-breaking for equal timestamps,
//! * [`Resource`] and [`Pipe`] — occupancy- and bandwidth-contended shared
//!   resources (a CPU, an NI processor, an I/O bus, a memory bus),
//! * [`ThreadPool`] — execution-driven application threads: each simulated
//!   processor's program runs on a real OS thread, but a strict baton
//!   guarantees that **at most one application thread executes at any
//!   instant**, which makes the whole simulation deterministic and makes a
//!   single shared data store safe to access without per-access locking.
//!
//! # Example
//!
//! ```rust
//! use ssm_engine::{EventQueue, Resource};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(10, "b");
//! q.push(5, "a");
//! q.push(10, "c"); // same time as "b": FIFO order preserved
//! let mut order = Vec::new();
//! while let Some((t, e)) = q.pop() {
//!     order.push((t, e));
//! }
//! assert_eq!(order, vec![(5, "a"), (10, "b"), (10, "c")]);
//!
//! let mut cpu = Resource::new();
//! let busy_until = cpu.acquire(100, 50); // request at t=100 for 50 cycles
//! assert_eq!(busy_until, 150);
//! let contended = cpu.acquire(120, 10); // queued behind the first use
//! assert_eq!(contended, 160);
//! ```

pub mod queue;
pub mod resource;
pub mod threads;
pub mod workers;

pub use queue::EventQueue;
pub use resource::{Pipe, Resource};
pub use threads::{Resumed, ThreadId, ThreadPool, Yielder};
pub use workers::{Completion, Job, WorkerSet, WORKER_THREAD_PREFIX};

/// Simulated time, in cycles of the modelled processor.
///
/// The paper normalizes every cost to cycles of a 1-IPC, 200 MHz processor;
/// we keep the same convention throughout the workspace.
pub type Cycles = u64;
