//! The execution-driven simulation loop.
//!
//! The driver owns the [`Machine`], the protocol and the application
//! threads, and advances them in simulated-time order: at every step it
//! resumes the *ready* processor with the smallest clock, hands the
//! operation it yields to the protocol, and attributes the elapsed window
//! to the right time bucket.
//!
//! # Window accounting
//!
//! For every operation window `[t0, t1]` the protocol has already charged
//! some cycles to this processor's buckets (protocol work, cache stalls).
//! The driver charges the *remainder* `t1 - t0 - charged` to the
//! operation's designated bucket (data wait for reads/writes, lock wait for
//! lock operations, barrier wait for barriers). Handler service performed
//! for other nodes lands in this processor's Protocol bucket at the moment
//! it executes, so bucket sums track wall time closely (small deviations
//! can occur when a handler slips into an already-closed window; the
//! remainder rule saturates at zero).

use ssm_engine::{Cycles, Resumed, ThreadId, ThreadPool};
use ssm_proto::{Machine, Op, Proc, Protocol as ProtocolTrait, Workload, World, WorldShape};
use ssm_stats::Bucket;

use crate::result::RunResult;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Ready,
    Blocked {
        since: Cycles,
        bucket_total_before: u64,
        bucket: Bucket,
    },
    Done,
}

/// Runs `workload` on `nprocs` simulated processors under `protocol`,
/// against an already-built [`Machine`]. Returns the measured result.
///
/// # Panics
///
/// * if the workload does not return exactly `nprocs` thread bodies,
/// * on deadlock (every unfinished processor blocked — e.g. a barrier that
///   not all processors reach),
/// * if an application thread panics.
pub fn run_simulation(
    protocol: &mut dyn ProtocolTrait,
    workload: &dyn Workload,
    nprocs: usize,
    mut machine: Machine,
) -> RunResult {
    assert_eq!(machine.nprocs(), nprocs, "machine size must match nprocs");
    let mut world = World::new(workload.mem_bytes());
    let bodies = workload.spawn(&mut world, nprocs);
    assert_eq!(
        bodies.len(),
        nprocs,
        "workload must produce one thread body per processor"
    );
    let shape = WorldShape {
        heap_bytes: world.used().max(1),
        nlocks: world.lock_count() as usize,
        nbarriers: world.barrier_count() as usize,
    };
    protocol.init(&machine, &shape);

    let mut pool: ThreadPool<Op> = ThreadPool::new();
    for (pid, body) in bodies.into_iter().enumerate() {
        pool.spawn(move |y| {
            let proc = Proc::new(y, pid, nprocs);
            body(&proc);
            proc.flush();
        });
    }

    let m = &mut machine;
    let mut state = vec![PState::Ready; nprocs];
    let mut done = 0usize;
    while done < nprocs {
        // Pick the ready processor with the smallest clock (determinism:
        // ties break toward the lower pid).
        let p = (0..nprocs)
            .filter(|&q| state[q] == PState::Ready)
            .min_by_key(|&q| (m.clock[q], q));
        let Some(p) = p else {
            let blocked: Vec<String> = (0..nprocs)
                .filter(|&q| !matches!(state[q], PState::Done))
                .map(|q| format!("P{q}@{}", m.clock[q]))
                .collect();
            panic!(
                "simulation deadlock in {}: all unfinished processors blocked: {}",
                workload.name(),
                blocked.join(", ")
            );
        };

        match pool.resume(ThreadId(p)) {
            Resumed::Finished => {
                protocol.finished(m, p);
                state[p] = PState::Done;
                done += 1;
            }
            Resumed::Op(op) => {
                let t0 = m.clock[p];
                let before = m.breakdowns()[p].total();
                match op {
                    Op::Compute(c) => {
                        let (_, end) = m.occupy_cpu(p, t0, c);
                        m.charge(p, Bucket::Busy, c);
                        m.clock[p] = end;
                    }
                    Op::Read { addr, bytes } => {
                        let t = protocol.read(m, p, addr, bytes);
                        settle(m, p, t0, t, before, Bucket::DataWait);
                    }
                    Op::Write { addr, bytes } => {
                        let t = protocol.write(m, p, addr, bytes);
                        settle(m, p, t0, t, before, Bucket::DataWait);
                    }
                    Op::Lock(l) => match protocol.lock(m, p, l) {
                        Some(t) => settle(m, p, t0, t, before, Bucket::LockWait),
                        None => {
                            state[p] = PState::Blocked {
                                since: t0,
                                bucket_total_before: before,
                                bucket: Bucket::LockWait,
                            }
                        }
                    },
                    Op::Unlock(l) => {
                        let t = protocol.unlock(m, p, l);
                        settle(m, p, t0, t, before, Bucket::LockWait);
                    }
                    Op::Barrier(b) => match protocol.barrier(m, p, b) {
                        Some(t) => settle(m, p, t0, t, before, Bucket::BarrierWait),
                        None => {
                            state[p] = PState::Blocked {
                                since: t0,
                                bucket_total_before: before,
                                bucket: Bucket::BarrierWait,
                            }
                        }
                    },
                }
            }
        }

        // Deliver protocol wakeups (lock grants, barrier releases).
        for (q, t) in m.take_wakeups() {
            let PState::Blocked {
                since,
                bucket_total_before,
                bucket,
            } = state[q]
            else {
                panic!("protocol woke P{q}, which is not blocked");
            };
            settle_window(m, q, since, t, bucket_total_before, bucket);
            state[q] = PState::Ready;
        }
    }

    let total_cycles = m.clock.iter().copied().max().unwrap_or(0);
    let activity = m
        .activities()
        .iter()
        .fold(ssm_stats::ProtoActivity::default(), |a, b| a.merge(b));
    let counters = m
        .counters()
        .iter()
        .fold(ssm_stats::Counters::default(), |a, b| a.merge(b));
    let trace = m.take_trace();
    RunResult {
        app: workload.name(),
        protocol: protocol.name().to_string(),
        nprocs,
        total_cycles,
        per_proc: m.breakdowns().to_vec(),
        activity,
        counters,
        verify_error: workload.verify().err(),
        trace,
    }
}

fn settle(m: &mut Machine, p: usize, t0: Cycles, t1: Cycles, before: u64, bucket: Bucket) {
    settle_window(m, p, t0, t1, before, bucket);
}

fn settle_window(m: &mut Machine, p: usize, t0: Cycles, t1: Cycles, before: u64, bucket: Bucket) {
    let t1 = t1.max(t0);
    let elapsed = t1 - t0;
    let charged = m.breakdowns()[p].total() - before;
    m.charge(p, bucket, elapsed.saturating_sub(charged));
    m.clock[p] = t1;
}
