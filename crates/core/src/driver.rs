//! The execution-driven simulation loop.
//!
//! The driver owns the [`Machine`], the protocol and the application
//! threads, and advances them in simulated-time order: at every step it
//! resumes the *ready* processor with the smallest clock, hands the
//! operation it yields to the protocol, and attributes the elapsed window
//! to the right time bucket.
//!
//! # Window accounting
//!
//! For every operation window `[t0, t1]` the protocol has already charged
//! some cycles to this processor's buckets (protocol work, cache stalls).
//! The driver charges the *remainder* `t1 - t0 - charged` to the
//! operation's designated bucket (data wait for reads/writes, lock wait for
//! lock operations, barrier wait for barriers). Handler service performed
//! for other nodes lands in this processor's Protocol bucket at the moment
//! it executes, so bucket sums track wall time closely (small deviations
//! can occur when a handler slips into an already-closed window; the
//! remainder rule saturates at zero).
//!
//! # Batched handoffs
//!
//! With batching enabled (the default), threads run against a
//! hint-carrying [`Proc`] that hands whole *runs* of operations to the
//! driver in one baton exchange. The driver queues each batch per
//! processor and replays it **one operation per scheduling step**: a step
//! either pops the next queued operation or — only when the queue is
//! empty — resumes the thread for more. The operation stream each
//! processor feeds the protocol, and the order the scheduler interleaves
//! the processors, are therefore exactly those of an unbatched run, and
//! every simulated result is byte-identical; only the handoff counters
//! differ. Hints are learned here (an access that sent zero messages
//! marks its pages local for that processor) and revoked by the machine
//! on protocol invalidation.

use std::collections::VecDeque;
use std::sync::Arc;

use ssm_engine::{Cycles, Resumed, ThreadId, ThreadPool, WorkerSet};
use ssm_proto::{
    HintBoard, Machine, Op, Proc, Protocol as ProtocolTrait, Workload, World, WorldShape,
    FLUSH_CAP, FLUSH_END, FLUSH_MISS, FLUSH_SYNC,
};
use ssm_stats::Bucket;

use crate::result::RunResult;

/// Host-side engine knobs. None of them affect simulated results — they
/// trade OS context switches and thread spawns for bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Recycle OS threads from this set instead of spawning per run.
    pub workers: Option<WorkerSet>,
    /// Accumulate hint-predicted-local operations into one baton handoff
    /// per run (see [`ssm_proto::vm`] module docs). On by default.
    pub batching: Batching,
}

/// Whether operation batching is enabled (newtype so the default is *on*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batching(pub bool);

impl Default for Batching {
    fn default() -> Self {
        Batching(true)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Ready,
    Blocked {
        since: Cycles,
        bucket_total_before: u64,
        bucket: Bucket,
    },
    Done,
}

/// Runs `workload` with default [`EngineOptions`] (batching on, private
/// thread pool). See [`run_simulation_with`].
pub fn run_simulation(
    protocol: &mut dyn ProtocolTrait,
    workload: &dyn Workload,
    nprocs: usize,
    machine: Machine,
) -> RunResult {
    run_simulation_with(
        protocol,
        workload,
        nprocs,
        machine,
        &EngineOptions::default(),
    )
}

/// Runs `workload` on `nprocs` simulated processors under `protocol`,
/// against an already-built [`Machine`]. Returns the measured result.
///
/// # Panics
///
/// * if the workload does not return exactly `nprocs` thread bodies,
/// * on deadlock (every unfinished processor blocked — e.g. a barrier that
///   not all processors reach),
/// * if an application thread panics.
pub fn run_simulation_with(
    protocol: &mut dyn ProtocolTrait,
    workload: &dyn Workload,
    nprocs: usize,
    mut machine: Machine,
    opts: &EngineOptions,
) -> RunResult {
    assert_eq!(machine.nprocs(), nprocs, "machine size must match nprocs");
    let mut world = World::new(workload.mem_bytes());
    let bodies = workload.spawn(&mut world, nprocs);
    assert_eq!(
        bodies.len(),
        nprocs,
        "workload must produce one thread body per processor"
    );
    let shape = WorldShape {
        heap_bytes: world.used().max(1),
        nlocks: world.lock_count() as usize,
        nbarriers: world.barrier_count() as usize,
    };
    protocol.init(&machine, &shape);

    let board = if opts.batching.0 {
        let board = Arc::new(HintBoard::new(nprocs));
        machine.set_hint_board(board.clone());
        Some(board)
    } else {
        None
    };

    let mut pool: ThreadPool<Op> = match &opts.workers {
        Some(ws) => ThreadPool::with_workers(ws.clone()),
        None => ThreadPool::new(),
    };
    for (pid, body) in bodies.into_iter().enumerate() {
        let board = board.clone();
        pool.spawn(move |y| {
            let proc = match board {
                Some(board) => Proc::batched(y, pid, nprocs, board),
                None => Proc::new(y, pid, nprocs),
            };
            body(&proc);
            proc.finish();
        });
    }

    let m = &mut machine;
    let mut state = vec![PState::Ready; nprocs];
    // Operations received in a batch but not yet replayed, per processor.
    let mut queued: Vec<VecDeque<Op>> = vec![VecDeque::new(); nprocs];
    let mut done = 0usize;
    while done < nprocs {
        // Pick the ready processor with the smallest clock (determinism:
        // ties break toward the lower pid).
        let p = (0..nprocs)
            .filter(|&q| state[q] == PState::Ready)
            .min_by_key(|&q| (m.clock[q], q));
        let Some(p) = p else {
            let blocked: Vec<String> = (0..nprocs)
                .filter(|&q| !matches!(state[q], PState::Done))
                .map(|q| format!("P{q}@{}", m.clock[q]))
                .collect();
            panic!(
                "simulation deadlock in {}: all unfinished processors blocked: {}",
                workload.name(),
                blocked.join(", ")
            );
        };

        // One operation per step: replay from the processor's queue, and
        // only hand the baton over when the queue is dry.
        let next = match queued[p].pop_front() {
            Some(op) => Some(op),
            None => {
                m.counters_mut(p).handoffs += 1;
                match pool.resume(ThreadId(p)) {
                    Resumed::Finished => None,
                    Resumed::Op(op) => Some(op),
                    Resumed::Batch(ops, cause) => {
                        let c = m.counters_mut(p);
                        c.ops_batched += ops.len() as u64;
                        match cause {
                            FLUSH_SYNC => c.flush_sync += 1,
                            FLUSH_MISS => c.flush_miss += 1,
                            FLUSH_CAP => c.flush_cap += 1,
                            FLUSH_END => c.flush_end += 1,
                            other => panic!("unknown batch-flush cause {other}"),
                        }
                        queued[p].extend(ops);
                        queued[p].pop_front()
                    }
                }
            }
        };

        match next {
            None => {
                protocol.finished(m, p);
                state[p] = PState::Done;
                done += 1;
            }
            Some(op) => {
                m.counters_mut(p).sim_ops += 1;
                let t0 = m.clock[p];
                let before = m.breakdowns()[p].total();
                let msgs_before = m.counters()[p].messages;
                match op {
                    Op::Compute(c) => {
                        let (_, end) = m.occupy_cpu(p, t0, c);
                        m.charge(p, Bucket::Busy, c);
                        m.clock[p] = end;
                    }
                    Op::Read { addr, bytes } => {
                        let t = protocol.read(m, p, addr, bytes);
                        settle(m, p, t0, t, before, Bucket::DataWait);
                        observe(&board, m, p, msgs_before, addr, bytes, false);
                    }
                    Op::Write { addr, bytes } => {
                        let t = protocol.write(m, p, addr, bytes);
                        settle(m, p, t0, t, before, Bucket::DataWait);
                        observe(&board, m, p, msgs_before, addr, bytes, true);
                    }
                    Op::Lock(l) => match protocol.lock(m, p, l) {
                        Some(t) => settle(m, p, t0, t, before, Bucket::LockWait),
                        None => {
                            state[p] = PState::Blocked {
                                since: t0,
                                bucket_total_before: before,
                                bucket: Bucket::LockWait,
                            }
                        }
                    },
                    Op::Unlock(l) => {
                        let t = protocol.unlock(m, p, l);
                        settle(m, p, t0, t, before, Bucket::LockWait);
                    }
                    Op::Barrier(b) => match protocol.barrier(m, p, b) {
                        Some(t) => settle(m, p, t0, t, before, Bucket::BarrierWait),
                        None => {
                            state[p] = PState::Blocked {
                                since: t0,
                                bucket_total_before: before,
                                bucket: Bucket::BarrierWait,
                            }
                        }
                    },
                }
            }
        }

        // Deliver protocol wakeups (lock grants, barrier releases).
        for (q, t) in m.take_wakeups() {
            let PState::Blocked {
                since,
                bucket_total_before,
                bucket,
            } = state[q]
            else {
                panic!("protocol woke P{q}, which is not blocked");
            };
            settle_window(m, q, since, t, bucket_total_before, bucket);
            state[q] = PState::Ready;
        }
    }

    let total_cycles = m.clock.iter().copied().max().unwrap_or(0);
    let activity = m
        .activities()
        .iter()
        .fold(ssm_stats::ProtoActivity::default(), |a, b| a.merge(b));
    let counters = m
        .counters()
        .iter()
        .fold(ssm_stats::Counters::default(), |a, b| a.merge(b));
    let trace = m.take_trace();
    let (threads_spawned, threads_reused) = pool.thread_stats();
    RunResult {
        app: workload.name(),
        protocol: protocol.name().to_string(),
        nprocs,
        total_cycles,
        per_proc: m.breakdowns().to_vec(),
        activity,
        counters,
        verify_error: workload.verify().err(),
        trace,
        threads_spawned: threads_spawned as u64,
        threads_reused: threads_reused as u64,
    }
}

/// Hint learning: an access that completed without `p` sending a single
/// message is local; mark its pages so the thread-side `Proc` can batch
/// the next access. (Pure host-time policy — see `ssm-proto::hint`.)
fn observe(
    board: &Option<Arc<HintBoard>>,
    m: &Machine,
    p: usize,
    msgs_before: u64,
    addr: u64,
    bytes: u64,
    write: bool,
) {
    if let Some(board) = board {
        if m.counters()[p].messages == msgs_before {
            board.observe_local(p, addr, bytes, write);
        }
    }
}

fn settle(m: &mut Machine, p: usize, t0: Cycles, t1: Cycles, before: u64, bucket: Bucket) {
    settle_window(m, p, t0, t1, before, bucket);
}

fn settle_window(m: &mut Machine, p: usize, t0: Cycles, t1: Cycles, before: u64, bucket: Bucket) {
    let t1 = t1.max(t0);
    let elapsed = t1 - t0;
    let charged = m.breakdowns()[p].total() - before;
    m.charge(p, bucket, elapsed.saturating_sub(charged));
    m.clock[p] = t1;
}
