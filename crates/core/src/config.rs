//! Layer-cost presets: the paper's named communication and protocol
//! parameter sets, and the composite configurations that label every bar
//! in Figures 3 and 4.

use ssm_net::CommParams;
use ssm_proto::ProtoCosts;

/// Named communication-layer parameter sets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommPreset {
    /// "A": achievable today (PentiumPro + Myrinet + VMMC).
    Achievable,
    /// "B": all parameterized costs zero (link latency remains).
    Best,
    /// "B+": better than best — free link, 4 bytes/cycle I/O bus.
    BetterThanBest,
    /// "H": halfway between achievable and best.
    Halfway,
    /// "W": all costs doubled relative to achievable (communication
    /// degrading against processor speed).
    Worse,
}

impl CommPreset {
    /// All presets in best-to-worst order.
    pub const ALL: [CommPreset; 5] = [
        CommPreset::BetterThanBest,
        CommPreset::Best,
        CommPreset::Halfway,
        CommPreset::Achievable,
        CommPreset::Worse,
    ];

    /// The parameter values for this preset.
    pub fn params(self) -> CommParams {
        match self {
            CommPreset::Achievable => CommParams::achievable(),
            CommPreset::Best => CommParams::best(),
            CommPreset::BetterThanBest => CommParams::better_than_best(),
            CommPreset::Halfway => CommParams::halfway(),
            CommPreset::Worse => CommParams::worse(),
        }
    }

    /// The paper's one-letter label.
    pub fn label(self) -> &'static str {
        match self {
            CommPreset::Achievable => "A",
            CommPreset::Best => "B",
            CommPreset::BetterThanBest => "B+",
            CommPreset::Halfway => "H",
            CommPreset::Worse => "W",
        }
    }

    /// Parses a preset from its paper label (`A`, `B`, `B+`, `H`, `W`).
    pub fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "A" => Ok(CommPreset::Achievable),
            "B" => Ok(CommPreset::Best),
            "B+" => Ok(CommPreset::BetterThanBest),
            "H" => Ok(CommPreset::Halfway),
            "W" => Ok(CommPreset::Worse),
            other => Err(format!("unknown comm preset {other:?}")),
        }
    }
}

/// Named protocol-layer cost sets (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoPreset {
    /// "O": the measured costs of the real implementation.
    Original,
    /// "B": all protocol actions free (idealized hardware support).
    Best,
    /// "H": halfway.
    Halfway,
}

impl ProtoPreset {
    /// All presets in best-to-worst order.
    pub const ALL: [ProtoPreset; 3] = [
        ProtoPreset::Best,
        ProtoPreset::Halfway,
        ProtoPreset::Original,
    ];

    /// The cost values for this preset.
    pub fn costs(self) -> ProtoCosts {
        match self {
            ProtoPreset::Original => ProtoCosts::original(),
            ProtoPreset::Best => ProtoCosts::best(),
            ProtoPreset::Halfway => ProtoCosts::halfway(),
        }
    }

    /// The paper's one-letter label.
    pub fn label(self) -> &'static str {
        match self {
            ProtoPreset::Original => "O",
            ProtoPreset::Best => "B",
            ProtoPreset::Halfway => "H",
        }
    }

    /// Parses a preset from its paper label (`O`, `H`, `B`).
    pub fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "O" => Ok(ProtoPreset::Original),
            "H" => Ok(ProtoPreset::Halfway),
            "B" => Ok(ProtoPreset::Best),
            other => Err(format!("unknown proto preset {other:?}")),
        }
    }
}

/// The typed bundle of everything below the application in the layer
/// stack: a `<communication><protocol>` configuration labelled as in the
/// paper ("AO" is the base system, "BB" idealizes both system layers,
/// "B+B" adds the better-than-best network, "WO" degrades communication
/// 2x), plus the fault-injection setting of the network underneath.
///
/// This is the one value benchmarks hand to [`crate::SimBuilder::layers`]
/// and to the sweep cell model instead of assembling `(CommPreset,
/// ProtoPreset, FaultSpec)` tuples by hand. Construct named points with
/// [`LayerConfig::of`] or [`LayerConfig::parse`] and refine with
/// [`LayerConfig::with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerConfig {
    /// Communication-layer preset.
    pub comm: CommPreset,
    /// Protocol-layer preset.
    pub proto: ProtoPreset,
    /// Fault injection beneath the communication layer (off by default;
    /// excluded from [`LayerConfig::label`], which names only the paper's
    /// two-letter vocabulary).
    pub faults: FaultSpec,
}

impl LayerConfig {
    /// The base system ("AO").
    pub fn base() -> Self {
        LayerConfig::of(CommPreset::Achievable, ProtoPreset::Original)
    }

    /// The configuration at a named communication/protocol preset pair,
    /// fault-free.
    pub fn of(comm: CommPreset, proto: ProtoPreset) -> Self {
        LayerConfig {
            comm,
            proto,
            faults: FaultSpec::none(),
        }
    }

    /// Parses a paper label ("AO", "BB", "B+B", "HO", …) into the named
    /// configuration: everything but the last character is the
    /// communication preset, the last character the protocol preset.
    pub fn parse(label: &str) -> Result<Self, String> {
        if label.len() < 2 {
            return Err(format!("layer config label too short: {label:?}"));
        }
        let (comm, proto) = label.split_at(label.len() - 1);
        Ok(LayerConfig::of(
            CommPreset::from_label(comm).map_err(|e| format!("in {label:?}: {e}"))?,
            ProtoPreset::from_label(proto).map_err(|e| format!("in {label:?}: {e}"))?,
        ))
    }

    /// Alias of [`LayerConfig::parse`], matching the `from_label` naming
    /// of [`CommPreset`], [`ProtoPreset`] and [`Protocol`].
    pub fn from_label(label: &str) -> Result<Self, String> {
        LayerConfig::parse(label)
    }

    /// The same configuration with deterministic fault injection set.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The configurations shown as bars in Figure 3, best to worst:
    /// B+B, BB, AB, BO, AO, WO. (HO/AH/HB are discussed in the text and
    /// available through [`LayerConfig::full_grid`].)
    pub fn figure3() -> Vec<LayerConfig> {
        ["B+B", "BB", "AB", "BO", "AO", "WO"]
            .into_iter()
            .map(|l| LayerConfig::parse(l).expect("known labels"))
            .collect()
    }

    /// Every combination of the five communication and three protocol
    /// presets (15 configurations).
    pub fn full_grid() -> Vec<LayerConfig> {
        let mut v = Vec::new();
        for comm in CommPreset::ALL {
            for proto in ProtoPreset::ALL {
                v.push(LayerConfig::of(comm, proto));
            }
        }
        v
    }

    /// The paper's two-letter label ("AO", "BB", "B+B", …). Fault
    /// injection is not part of the paper's vocabulary and is excluded;
    /// see [`FaultSpec::label`].
    pub fn label(self) -> String {
        format!("{}{}", self.comm.label(), self.proto.label())
    }
}

impl Default for LayerConfig {
    fn default() -> Self {
        LayerConfig::base()
    }
}

/// A deterministic fault-injection setting: the per-class rate handed to
/// [`ssm_net::FaultPlan::uniform`] plus the schedule seed. The default
/// (`none`) injects nothing and keeps every run on the exact fault-free
/// code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Per-transmission rate of *each* fault class (drop, duplicate,
    /// delay spike, NI stall), parts per million. 0 = faults off.
    pub rate_ppm: u32,
    /// Seed of the injected-fault schedule.
    pub seed: u64,
}

impl FaultSpec {
    /// The ceiling on `rate_ppm` (the four classes share one draw).
    pub const MAX_RATE_PPM: u32 = 250_000;

    /// No faults (the default everywhere).
    pub fn none() -> Self {
        FaultSpec {
            rate_ppm: 0,
            seed: 0,
        }
    }

    /// Faults at `rate_ppm` per class with the given schedule seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm` exceeds [`FaultSpec::MAX_RATE_PPM`].
    pub fn at(rate_ppm: u32, seed: u64) -> Self {
        assert!(
            rate_ppm <= Self::MAX_RATE_PPM,
            "fault rate {rate_ppm} ppm exceeds the {} ppm ceiling",
            Self::MAX_RATE_PPM
        );
        FaultSpec { rate_ppm, seed }
    }

    /// Whether this spec injects nothing.
    pub fn is_none(&self) -> bool {
        self.rate_ppm == 0
    }

    /// Display label, e.g. `f10000/s42` (or `f0`).
    pub fn label(&self) -> String {
        if self.is_none() {
            "f0".to_string()
        } else {
            format!("f{}/s{}", self.rate_ppm, self.seed)
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Which protocol runs the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Home-based lazy release consistency (page-grained SVM).
    Hlrc,
    /// AURC: HLRC with hardware automatic-update write propagation
    /// instead of twins/diffs (the paper's diff-elimination direction).
    Aurc,
    /// Fine/variable-grained sequentially-consistent DSM.
    Sc,
    /// Fine-grained delayed / eager-release consistency (the paper's
    /// footnote variant: "a little better than SC for most granularities
    /// smaller than a page").
    ScDelayed,
    /// One-sided RDMA / disaggregated-memory protocol: home memory served
    /// directly by the NI (no host involvement), write-back caching of
    /// remote lines with explicit invalidation, and synchronization-aware
    /// ownership handoff on lock transfer (GCS-style).
    Rdma,
    /// The idealized machine (free communication and protocol).
    Ideal,
}

impl Protocol {
    /// Every protocol, in the order the tables print them.
    pub const ALL: [Protocol; 6] = [
        Protocol::Hlrc,
        Protocol::Aurc,
        Protocol::Sc,
        Protocol::ScDelayed,
        Protocol::Rdma,
        Protocol::Ideal,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Hlrc => "HLRC",
            Protocol::Aurc => "AURC",
            Protocol::Sc => "SC",
            Protocol::ScDelayed => "SC-delayed",
            Protocol::Rdma => "RDMA",
            Protocol::Ideal => "IDEAL",
        }
    }

    /// Parses a display name back into the protocol.
    pub fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "HLRC" => Ok(Protocol::Hlrc),
            "AURC" => Ok(Protocol::Aurc),
            "SC" => Ok(Protocol::Sc),
            "SC-delayed" => Ok(Protocol::ScDelayed),
            "RDMA" => Ok(Protocol::Rdma),
            "IDEAL" => Ok(Protocol::Ideal),
            other => Err(format!("unknown protocol {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(LayerConfig::base().label(), "AO");
        let f3: Vec<String> = LayerConfig::figure3().iter().map(|c| c.label()).collect();
        assert_eq!(f3, vec!["B+B", "BB", "AB", "BO", "AO", "WO"]);
    }

    #[test]
    fn grid_is_complete() {
        let g = LayerConfig::full_grid();
        assert_eq!(g.len(), 15);
        let labels: std::collections::HashSet<String> = g.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 15);
        assert!(labels.contains("HB"));
        assert!(labels.contains("WO"));
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(CommPreset::Best.params().host_overhead, 0);
        assert_eq!(ProtoPreset::Halfway.costs().handler_base, 50);
        assert_eq!(Protocol::Hlrc.label(), "HLRC");
    }

    #[test]
    fn labels_round_trip() {
        for comm in CommPreset::ALL {
            assert_eq!(CommPreset::from_label(comm.label()), Ok(comm));
        }
        for proto in ProtoPreset::ALL {
            assert_eq!(ProtoPreset::from_label(proto.label()), Ok(proto));
        }
        // Exhaustive over Protocol::ALL so a new variant that misses a
        // from_label arm fails here rather than at sweep-cache load time.
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_label(p.label()), Ok(p));
        }
        assert_eq!(Protocol::from_label("RDMA"), Ok(Protocol::Rdma));
        for cfg in LayerConfig::full_grid() {
            assert_eq!(LayerConfig::parse(&cfg.label()), Ok(cfg));
            assert_eq!(LayerConfig::from_label(&cfg.label()), Ok(cfg));
        }
        assert_eq!(
            LayerConfig::parse("B+B"),
            Ok(LayerConfig::of(
                CommPreset::BetterThanBest,
                ProtoPreset::Best
            ))
        );
        assert!(LayerConfig::parse("XO").is_err());
        assert!(LayerConfig::parse("A").is_err());
    }

    #[test]
    fn layer_config_carries_faults() {
        let base = LayerConfig::base();
        assert!(base.faults.is_none());
        let faulty = base.with_faults(FaultSpec::at(10_000, 42));
        assert_eq!(faulty.faults.rate_ppm, 10_000);
        // The paper's label vocabulary is unaffected by fault injection.
        assert_eq!(faulty.label(), base.label());
        assert_eq!(LayerConfig::default(), base);
    }
}
