//! Layer-cost presets: the paper's named communication and protocol
//! parameter sets, and the composite configurations that label every bar
//! in Figures 3 and 4.

use ssm_net::CommParams;
use ssm_proto::ProtoCosts;

/// Named communication-layer parameter sets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommPreset {
    /// "A": achievable today (PentiumPro + Myrinet + VMMC).
    Achievable,
    /// "B": all parameterized costs zero (link latency remains).
    Best,
    /// "B+": better than best — free link, 4 bytes/cycle I/O bus.
    BetterThanBest,
    /// "H": halfway between achievable and best.
    Halfway,
    /// "W": all costs doubled relative to achievable (communication
    /// degrading against processor speed).
    Worse,
}

impl CommPreset {
    /// All presets in best-to-worst order.
    pub const ALL: [CommPreset; 5] = [
        CommPreset::BetterThanBest,
        CommPreset::Best,
        CommPreset::Halfway,
        CommPreset::Achievable,
        CommPreset::Worse,
    ];

    /// The parameter values for this preset.
    pub fn params(self) -> CommParams {
        match self {
            CommPreset::Achievable => CommParams::achievable(),
            CommPreset::Best => CommParams::best(),
            CommPreset::BetterThanBest => CommParams::better_than_best(),
            CommPreset::Halfway => CommParams::halfway(),
            CommPreset::Worse => CommParams::worse(),
        }
    }

    /// The paper's one-letter label.
    pub fn label(self) -> &'static str {
        match self {
            CommPreset::Achievable => "A",
            CommPreset::Best => "B",
            CommPreset::BetterThanBest => "B+",
            CommPreset::Halfway => "H",
            CommPreset::Worse => "W",
        }
    }
}

/// Named protocol-layer cost sets (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoPreset {
    /// "O": the measured costs of the real implementation.
    Original,
    /// "B": all protocol actions free (idealized hardware support).
    Best,
    /// "H": halfway.
    Halfway,
}

impl ProtoPreset {
    /// All presets in best-to-worst order.
    pub const ALL: [ProtoPreset; 3] = [
        ProtoPreset::Best,
        ProtoPreset::Halfway,
        ProtoPreset::Original,
    ];

    /// The cost values for this preset.
    pub fn costs(self) -> ProtoCosts {
        match self {
            ProtoPreset::Original => ProtoCosts::original(),
            ProtoPreset::Best => ProtoCosts::best(),
            ProtoPreset::Halfway => ProtoCosts::halfway(),
        }
    }

    /// The paper's one-letter label.
    pub fn label(self) -> &'static str {
        match self {
            ProtoPreset::Original => "O",
            ProtoPreset::Best => "B",
            ProtoPreset::Halfway => "H",
        }
    }
}

/// A `<communication><protocol>` configuration, labelled as in the paper:
/// "AO" is the base system, "BB" idealizes both system layers, "B+B" adds
/// the better-than-best network, "WO" degrades communication 2x.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerConfig {
    /// Communication-layer preset.
    pub comm: CommPreset,
    /// Protocol-layer preset.
    pub proto: ProtoPreset,
}

impl LayerConfig {
    /// The base system ("AO").
    pub fn base() -> Self {
        LayerConfig {
            comm: CommPreset::Achievable,
            proto: ProtoPreset::Original,
        }
    }

    /// The configurations shown as bars in Figure 3, best to worst:
    /// B+B, BB, AB, BO, AO, WO. (HO/AH/HB are discussed in the text and
    /// available through [`LayerConfig::full_grid`].)
    pub fn figure3() -> Vec<LayerConfig> {
        [
            (CommPreset::BetterThanBest, ProtoPreset::Best),
            (CommPreset::Best, ProtoPreset::Best),
            (CommPreset::Achievable, ProtoPreset::Best),
            (CommPreset::Best, ProtoPreset::Original),
            (CommPreset::Achievable, ProtoPreset::Original),
            (CommPreset::Worse, ProtoPreset::Original),
        ]
        .into_iter()
        .map(|(comm, proto)| LayerConfig { comm, proto })
        .collect()
    }

    /// Every combination of the five communication and three protocol
    /// presets (15 configurations).
    pub fn full_grid() -> Vec<LayerConfig> {
        let mut v = Vec::new();
        for comm in CommPreset::ALL {
            for proto in ProtoPreset::ALL {
                v.push(LayerConfig { comm, proto });
            }
        }
        v
    }

    /// The paper's two-letter label ("AO", "BB", "B+B", …).
    pub fn label(self) -> String {
        format!("{}{}", self.comm.label(), self.proto.label())
    }
}

/// A deterministic fault-injection setting: the per-class rate handed to
/// [`ssm_net::FaultPlan::uniform`] plus the schedule seed. The default
/// (`none`) injects nothing and keeps every run on the exact fault-free
/// code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Per-transmission rate of *each* fault class (drop, duplicate,
    /// delay spike, NI stall), parts per million. 0 = faults off.
    pub rate_ppm: u32,
    /// Seed of the injected-fault schedule.
    pub seed: u64,
}

impl FaultSpec {
    /// The ceiling on `rate_ppm` (the four classes share one draw).
    pub const MAX_RATE_PPM: u32 = 250_000;

    /// No faults (the default everywhere).
    pub fn none() -> Self {
        FaultSpec {
            rate_ppm: 0,
            seed: 0,
        }
    }

    /// Faults at `rate_ppm` per class with the given schedule seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm` exceeds [`FaultSpec::MAX_RATE_PPM`].
    pub fn at(rate_ppm: u32, seed: u64) -> Self {
        assert!(
            rate_ppm <= Self::MAX_RATE_PPM,
            "fault rate {rate_ppm} ppm exceeds the {} ppm ceiling",
            Self::MAX_RATE_PPM
        );
        FaultSpec { rate_ppm, seed }
    }

    /// Whether this spec injects nothing.
    pub fn is_none(&self) -> bool {
        self.rate_ppm == 0
    }

    /// Display label, e.g. `f10000/s42` (or `f0`).
    pub fn label(&self) -> String {
        if self.is_none() {
            "f0".to_string()
        } else {
            format!("f{}/s{}", self.rate_ppm, self.seed)
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// Which protocol runs the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Home-based lazy release consistency (page-grained SVM).
    Hlrc,
    /// AURC: HLRC with hardware automatic-update write propagation
    /// instead of twins/diffs (the paper's diff-elimination direction).
    Aurc,
    /// Fine/variable-grained sequentially-consistent DSM.
    Sc,
    /// Fine-grained delayed / eager-release consistency (the paper's
    /// footnote variant: "a little better than SC for most granularities
    /// smaller than a page").
    ScDelayed,
    /// The idealized machine (free communication and protocol).
    Ideal,
}

impl Protocol {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Hlrc => "HLRC",
            Protocol::Aurc => "AURC",
            Protocol::Sc => "SC",
            Protocol::ScDelayed => "SC-delayed",
            Protocol::Ideal => "IDEAL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(LayerConfig::base().label(), "AO");
        let f3: Vec<String> = LayerConfig::figure3().iter().map(|c| c.label()).collect();
        assert_eq!(f3, vec!["B+B", "BB", "AB", "BO", "AO", "WO"]);
    }

    #[test]
    fn grid_is_complete() {
        let g = LayerConfig::full_grid();
        assert_eq!(g.len(), 15);
        let labels: std::collections::HashSet<String> = g.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 15);
        assert!(labels.contains("HB"));
        assert!(labels.contains("WO"));
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(CommPreset::Best.params().host_overhead, 0);
        assert_eq!(ProtoPreset::Halfway.costs().handler_base, 50);
        assert_eq!(Protocol::Hlrc.label(), "HLRC");
    }
}
