//! The outcome of one simulated run.

use ssm_stats::{Breakdown, Bucket, Counters, ProtoActivity};

/// Everything measured during one run of one workload under one protocol
/// and one layer configuration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload display name.
    pub app: String,
    /// Protocol display name ("HLRC", "SC", "IDEAL").
    pub protocol: String,
    /// Processors simulated.
    pub nprocs: usize,
    /// Parallel execution time: the last processor's finish time, in
    /// cycles.
    pub total_cycles: u64,
    /// Per-processor execution-time breakdowns (Figure 4 raw data).
    pub per_proc: Vec<Breakdown>,
    /// Protocol-activity detail summed over processors (Table 4 raw data).
    pub activity: ProtoActivity,
    /// Event counters summed over processors.
    pub counters: Counters,
    /// Result of the workload's self-verification.
    pub verify_error: Option<String>,
    /// Protocol event trace (empty unless tracing was enabled on the
    /// builder).
    pub trace: Vec<ssm_proto::TraceEvent>,
    /// OS threads freshly spawned for this run (host-side; zero when the
    /// run recycled every thread from a shared [`ssm_engine::WorkerSet`]).
    pub threads_spawned: u64,
    /// OS threads recycled from a shared worker set for this run.
    pub threads_reused: u64,
}

impl RunResult {
    /// The all-processor average breakdown (how Figure 4 presents bars).
    pub fn avg_breakdown(&self) -> Breakdown {
        Breakdown::average(self.per_proc.iter())
    }

    /// Speedup relative to a sequential baseline time.
    ///
    /// # Panics
    ///
    /// Panics if this run recorded zero cycles.
    pub fn speedup(&self, sequential_cycles: u64) -> f64 {
        assert!(self.total_cycles > 0, "run recorded no time");
        sequential_cycles as f64 / self.total_cycles as f64
    }

    /// Fraction of average processor time spent in protocol activity
    /// (Table 4's "Total" column).
    pub fn protocol_fraction(&self) -> f64 {
        self.avg_breakdown().fraction(Bucket::Protocol)
    }

    /// Asserts the workload verified; returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics with the verification message if the run produced a wrong
    /// result.
    pub fn expect_verified(self) -> Self {
        if let Some(err) = &self.verify_error {
            panic!(
                "{} under {}: verification failed: {err}",
                self.app, self.protocol
            );
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        let mut b = Breakdown::new();
        b.add(Bucket::Busy, 60);
        b.add(Bucket::Protocol, 40);
        RunResult {
            app: "x".into(),
            protocol: "HLRC".into(),
            nprocs: 2,
            total_cycles: 500,
            per_proc: vec![b, b],
            activity: ProtoActivity::default(),
            counters: Counters::default(),
            verify_error: None,
            trace: Vec::new(),
            threads_spawned: 0,
            threads_reused: 0,
        }
    }

    #[test]
    fn speedup_is_ratio() {
        let r = result();
        assert!((r.speedup(1000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn protocol_fraction_from_average() {
        let r = result();
        assert!((r.protocol_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "verification failed")]
    fn expect_verified_panics_on_error() {
        let mut r = result();
        r.verify_error = Some("wrong sum".into());
        let _ = r.expect_verified();
    }
}
