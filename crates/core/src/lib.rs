//! Top-level simulation builder, layer-cost presets and result types for
//! the `ssm` reproduction of *"Limits to the Performance of Software Shared
//! Memory: A Layered Approach"* (HPCA 1999).
//!
//! This crate glues the stack together: it owns the driver loop
//! ([`driver::run_simulation`]), the paper's named parameter sets
//! ([`CommPreset`], [`ProtoPreset`], [`LayerConfig`]), and the
//! [`SimBuilder`] front door that examples, tests and the benchmark
//! harness use.
//!
//! # Example
//!
//! ```rust
//! use ssm_core::{LayerConfig, Protocol, SimBuilder};
//! use ssm_proto::{Proc, ThreadBody, Workload, World};
//!
//! // A toy workload: every processor increments its own counter slot.
//! struct Count;
//! impl Workload for Count {
//!     fn name(&self) -> String { "count".into() }
//!     fn mem_bytes(&self) -> usize { 1 << 16 }
//!     fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
//!         let v = world.alloc_vec::<u64>(nprocs * 512);
//!         (0..nprocs).map(|pid| {
//!             let v = v.clone();
//!             let b: ThreadBody = Box::new(move |p: &Proc<'_>| {
//!                 p.compute(100);
//!                 v.set(p, pid * 512, pid as u64);
//!             });
//!             b
//!         }).collect()
//!     }
//! }
//!
//! let r = SimBuilder::new(Protocol::Hlrc)
//!     .procs(4)
//!     .layers(LayerConfig::parse("AO").unwrap())
//!     .run(&Count);
//! assert_eq!(r.nprocs, 4);
//! assert!(r.total_cycles >= 100);
//! ```

pub mod config;
pub mod driver;
pub mod result;

pub use config::{CommPreset, FaultSpec, LayerConfig, ProtoPreset, Protocol};
pub use driver::{run_simulation, run_simulation_with, EngineOptions};
pub use result::RunResult;

use ssm_hlrc::Hlrc;
use ssm_mem::MemConfig;
use ssm_net::CommParams;
use ssm_proto::{HomePolicy, Machine, ProtoCosts, Workload};
use ssm_rdma::Rdma;
use ssm_sc::Sc;

/// Default processor count — the paper's 16-node scale.
pub const DEFAULT_PROCS: usize = 16;

/// Default SC coherence granularity (bytes) for irregular applications.
pub const DEFAULT_SC_BLOCK: u64 = 64;

/// Builds and runs one simulation.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    protocol: Protocol,
    nprocs: usize,
    comm: CommParams,
    costs: ProtoCosts,
    mem: MemConfig,
    sc_block: u64,
    homes: HomePolicy,
    trace: bool,
    faults: FaultSpec,
    workers: Option<ssm_engine::WorkerSet>,
    batching: bool,
}

impl SimBuilder {
    /// Starts a builder for `protocol` with the paper's base ("AO")
    /// parameters, 16 processors, and a 64-byte SC block.
    pub fn new(protocol: Protocol) -> Self {
        SimBuilder {
            protocol,
            nprocs: DEFAULT_PROCS,
            comm: CommParams::achievable(),
            costs: ProtoCosts::original(),
            mem: MemConfig::pentium_pro_like(),
            sc_block: DEFAULT_SC_BLOCK,
            homes: HomePolicy::RoundRobin,
            trace: false,
            faults: FaultSpec::none(),
            workers: None,
            batching: true,
        }
    }

    /// Sets the processor count.
    pub fn procs(mut self, n: usize) -> Self {
        self.nprocs = n;
        self
    }

    /// Sets the communication-layer parameters.
    pub fn comm(mut self, comm: CommParams) -> Self {
        self.comm = comm;
        self
    }

    /// Sets the protocol-layer costs.
    pub fn proto(mut self, costs: ProtoCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Sets both layer-cost presets *and* the fault-injection spec from a
    /// named configuration — the one-call path from a [`LayerConfig`]
    /// (e.g. `LayerConfig::parse("AO")`) to a configured builder.
    pub fn layers(self, cfg: LayerConfig) -> Self {
        self.comm(cfg.comm.params())
            .proto(cfg.proto.costs())
            .faults(cfg.faults)
    }

    /// Sets the node memory-hierarchy configuration.
    pub fn mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Sets the SC protocol's coherence granularity in bytes (ignored by
    /// HLRC and IDEAL). The paper uses each application's best granularity.
    pub fn sc_block(mut self, bytes: u64) -> Self {
        self.sc_block = bytes;
        self
    }

    /// Sets the page-to-home placement policy (round-robin is the paper's
    /// default; first-touch is a classic SVM alternative, ablated in the
    /// harness).
    pub fn home_policy(mut self, policy: HomePolicy) -> Self {
        self.homes = policy;
        self
    }

    /// Sets the deterministic fault-injection spec. `FaultSpec::none()`
    /// (the default) keeps the run on the exact fault-free code path; a
    /// nonzero rate installs a seeded [`ssm_net::FaultPlan`] plus the
    /// reliable-delivery sublayer that recovers from it. Ignored by the
    /// ideal machine (it never sends).
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = spec;
        self
    }

    /// Enables protocol-event tracing; the events land in
    /// [`RunResult::trace`]. Intended for debugging small runs (the trace
    /// grows with every message).
    pub fn trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }

    /// Leases application threads from a shared [`ssm_engine::WorkerSet`]
    /// so consecutive runs recycle parked OS threads instead of spawning
    /// (host-side only; results are unaffected).
    pub fn workers(mut self, workers: ssm_engine::WorkerSet) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Toggles batched baton handoffs (default on). Simulated results are
    /// byte-identical either way; off is useful for measuring the handoff
    /// reduction and for A/B tests.
    pub fn batching(mut self, enable: bool) -> Self {
        self.batching = enable;
        self
    }

    /// Runs `workload` and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock or an application-thread panic (see
    /// [`driver::run_simulation`]).
    pub fn run(&self, workload: &dyn Workload) -> RunResult {
        let mut machine = Machine::new(
            self.nprocs,
            self.comm.clone(),
            self.costs.clone(),
            self.mem.clone(),
        );
        if self.trace {
            machine.enable_trace();
        }
        if !self.faults.is_none() && self.protocol != Protocol::Ideal {
            machine.set_fault_plan(ssm_net::FaultPlan::uniform(
                self.faults.rate_ppm,
                self.faults.seed,
            ));
        }
        let opts = EngineOptions {
            workers: self.workers.clone(),
            batching: driver::Batching(self.batching),
        };
        match self.protocol {
            Protocol::Hlrc => {
                let mut p = Hlrc::new().with_homes(self.homes);
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
            Protocol::Aurc => {
                let mut p = Hlrc::aurc().with_homes(self.homes);
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
            Protocol::Sc => {
                let mut p = Sc::new(self.sc_block).with_homes(self.homes);
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
            Protocol::ScDelayed => {
                let mut p = Sc::delayed(self.sc_block).with_homes(self.homes);
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
            Protocol::Rdma => {
                // The one-sided protocol shares the SC granularity knob:
                // its line size is the application's best block size.
                let mut p = Rdma::new(self.sc_block).with_homes(self.homes);
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
            Protocol::Ideal => {
                let mut p = ssm_proto::Ideal::new();
                driver::run_simulation_with(&mut p, workload, self.nprocs, machine, &opts)
            }
        }
    }
}

/// Runs the best *sequential* version of `workload`: one processor on the
/// ideal machine (no protocol, no communication). This is the paper's
/// speedup baseline.
pub fn sequential_baseline(workload: &dyn Workload) -> RunResult {
    SimBuilder::new(Protocol::Ideal).procs(1).run(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_proto::{Proc, ThreadBody, World};
    use ssm_stats::Bucket;
    use std::cell::RefCell;

    /// Each processor writes a private page-aligned slot, then all barrier,
    /// then P0 sums everything.
    struct SumAll {
        expected: u64,
        handle: RefCell<Option<ssm_proto::SharedVec<u64>>>,
    }

    impl SumAll {
        fn new(nprocs: usize) -> Self {
            SumAll {
                expected: (0..nprocs as u64).map(|i| i + 1).sum(),
                handle: RefCell::new(None),
            }
        }
    }

    impl Workload for SumAll {
        fn name(&self) -> String {
            "sum-all".into()
        }
        fn mem_bytes(&self) -> usize {
            1 << 20
        }
        fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
            // One page-sized stride per processor so slots live on distinct
            // pages, plus a result slot at the end.
            let v = world.alloc_vec::<u64>(nprocs * 512 + 1);
            let bar = world.alloc_barrier();
            *self.handle.borrow_mut() = Some(v.clone());
            (0..nprocs)
                .map(|pid| {
                    let v = v.clone();
                    let b: ThreadBody = Box::new(move |p: &Proc<'_>| {
                        p.compute(1000);
                        v.set(p, pid * 512, pid as u64 + 1);
                        p.barrier(bar);
                        if pid == 0 {
                            let mut sum = 0;
                            for q in 0..p.nprocs() {
                                sum += v.get(p, q * 512);
                                p.compute(4);
                            }
                            v.set(p, p.nprocs() * 512, sum);
                        }
                        p.barrier(bar);
                    });
                    b
                })
                .collect()
        }
        fn verify(&self) -> Result<(), String> {
            let h = self.handle.borrow();
            let v = h.as_ref().expect("spawned");
            let got = v.get_direct(v.len() - 1);
            if got == self.expected {
                Ok(())
            } else {
                Err(format!("sum: got {got}, want {}", self.expected))
            }
        }
    }

    #[test]
    fn runs_on_all_protocols_and_verifies() {
        for proto in [
            Protocol::Ideal,
            Protocol::Hlrc,
            Protocol::Sc,
            Protocol::Rdma,
        ] {
            let w = SumAll::new(4);
            let r = SimBuilder::new(proto).procs(4).run(&w).expect_verified();
            assert_eq!(r.nprocs, 4);
            assert!(r.total_cycles >= 1000, "{proto:?} too fast");
            assert_eq!(r.counters.barriers, 2, "{proto:?} barrier count");
        }
    }

    #[test]
    fn faulty_runs_verify_and_are_deterministic() {
        for proto in [Protocol::Hlrc, Protocol::Sc, Protocol::Rdma] {
            let w = SumAll::new(4);
            let clean = SimBuilder::new(proto).procs(4).run(&w).expect_verified();
            let spec = FaultSpec::at(200_000, 42);
            let w = SumAll::new(4);
            let faulty = SimBuilder::new(proto)
                .procs(4)
                .faults(spec)
                .run(&w)
                .expect_verified();
            assert!(
                faulty.counters.faults_injected() > 0,
                "{proto:?}: no faults fired at 20% per class"
            );
            assert_eq!(
                faulty.counters.retransmissions, faulty.counters.faults_dropped,
                "{proto:?}: every drop is retransmitted exactly once per loss"
            );
            assert!(
                faulty.total_cycles >= clean.total_cycles,
                "{proto:?}: recovery cannot make the run faster"
            );
            let w = SumAll::new(4);
            let again = SimBuilder::new(proto)
                .procs(4)
                .faults(spec)
                .run(&w)
                .expect_verified();
            assert_eq!(
                faulty.total_cycles, again.total_cycles,
                "{proto:?}: same (rate, seed) must replay the same schedule"
            );
            assert_eq!(
                faulty.counters, again.counters,
                "{proto:?}: counters differ"
            );
        }
    }

    #[test]
    fn hlrc_slower_than_ideal_and_faster_when_best() {
        let w = SumAll::new(4);
        let ideal = SimBuilder::new(Protocol::Ideal)
            .procs(4)
            .run(&w)
            .total_cycles;
        let w = SumAll::new(4);
        let base = SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .run(&w)
            .total_cycles;
        let w = SumAll::new(4);
        let best = SimBuilder::new(Protocol::Hlrc)
            .procs(4)
            .comm(CommPreset::Best.params())
            .proto(ProtoPreset::Best.costs())
            .run(&w)
            .total_cycles;
        assert!(ideal < best, "ideal {ideal} < BB {best}");
        assert!(best < base, "BB {best} < AO {base}");
    }

    #[test]
    fn buckets_do_not_exceed_wall_time_materially() {
        let w = SumAll::new(4);
        let r = SimBuilder::new(Protocol::Hlrc).procs(4).run(&w);
        for (q, b) in r.per_proc.iter().enumerate() {
            let covered = b.total() as f64;
            let wall = r.total_cycles as f64;
            // Handler service can slip into already-settled windows (see
            // driver docs), so allow bounded overcount.
            assert!(
                covered <= wall * 1.25,
                "P{q} buckets {covered} exceed wall {wall}"
            );
        }
    }

    #[test]
    fn sequential_baseline_is_single_proc_ideal() {
        let w = SumAll::new(1);
        let r = sequential_baseline(&w);
        assert_eq!(r.nprocs, 1);
        assert_eq!(r.protocol, "IDEAL");
        assert!(r.verify_error.is_none());
    }

    #[test]
    fn speedup_emerges_with_more_procs() {
        // Pure compute scales linearly on the ideal machine.
        struct Busy(u64);
        impl Workload for Busy {
            fn name(&self) -> String {
                "busy".into()
            }
            fn mem_bytes(&self) -> usize {
                4096
            }
            fn spawn(&self, _world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
                let per = self.0 / nprocs as u64;
                (0..nprocs)
                    .map(|_| {
                        let b: ThreadBody = Box::new(move |p: &Proc<'_>| p.compute(per));
                        b
                    })
                    .collect()
            }
        }
        let seq = sequential_baseline(&Busy(64_000)).total_cycles;
        let par = SimBuilder::new(Protocol::Ideal)
            .procs(8)
            .run(&Busy(64_000))
            .total_cycles;
        assert_eq!(seq, 64_000);
        assert_eq!(par, 8_000);
    }

    #[test]
    fn lock_wait_attributed() {
        // Two processors contend on one lock with long critical sections.
        struct Contend;
        impl Workload for Contend {
            fn name(&self) -> String {
                "contend".into()
            }
            fn mem_bytes(&self) -> usize {
                4096
            }
            fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
                let l = world.alloc_lock();
                (0..nprocs)
                    .map(|_| {
                        let b: ThreadBody = Box::new(move |p: &Proc<'_>| {
                            p.lock(l);
                            p.compute(50_000);
                            p.unlock(l);
                        });
                        b
                    })
                    .collect()
            }
        }
        let r = SimBuilder::new(Protocol::Hlrc).procs(2).run(&Contend);
        let total_lock_wait: u64 = r.per_proc.iter().map(|b| b.get(Bucket::LockWait)).sum();
        assert!(
            total_lock_wait >= 50_000,
            "second acquirer must wait out the first critical section, got {total_lock_wait}"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_barriers_deadlock() {
        struct Broken;
        impl Workload for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn mem_bytes(&self) -> usize {
                4096
            }
            fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
                let bar = world.alloc_barrier();
                (0..nprocs)
                    .map(|pid| {
                        let b: ThreadBody = Box::new(move |p: &Proc<'_>| {
                            if pid == 0 {
                                p.barrier(bar); // only P0 arrives
                            }
                        });
                        b
                    })
                    .collect()
            }
        }
        let _ = SimBuilder::new(Protocol::Ideal).procs(2).run(&Broken);
    }
}
