//! Driver edge cases: wrong thread counts, single-processor worlds,
//! trivial workloads, and machine-size mismatches.

use ssm_core::{run_simulation, Protocol, SimBuilder};
use ssm_mem::MemConfig;
use ssm_net::CommParams;
use ssm_proto::{Ideal, Machine, Proc, ProtoCosts, ThreadBody, Workload, World};

struct WrongCount;
impl Workload for WrongCount {
    fn name(&self) -> String {
        "wrong-count".into()
    }
    fn mem_bytes(&self) -> usize {
        4096
    }
    fn spawn(&self, _w: &mut World, _nprocs: usize) -> Vec<ThreadBody> {
        vec![Box::new(|_p: &Proc<'_>| {})] // always one body
    }
}

#[test]
#[should_panic(expected = "one thread body per processor")]
fn wrong_body_count_is_rejected() {
    let _ = SimBuilder::new(Protocol::Ideal).procs(3).run(&WrongCount);
}

struct Empty;
impl Workload for Empty {
    fn name(&self) -> String {
        "empty".into()
    }
    fn mem_bytes(&self) -> usize {
        4096
    }
    fn spawn(&self, _w: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        (0..nprocs)
            .map(|_| Box::new(|_p: &Proc<'_>| {}) as ThreadBody)
            .collect()
    }
}

#[test]
fn empty_workload_finishes_at_time_zero() {
    for proto in [
        Protocol::Ideal,
        Protocol::Hlrc,
        Protocol::Aurc,
        Protocol::Sc,
    ] {
        let r = SimBuilder::new(proto).procs(4).run(&Empty);
        assert_eq!(r.total_cycles, 0, "{proto:?}");
        assert_eq!(r.counters.messages, 0, "{proto:?}");
    }
}

#[test]
#[should_panic(expected = "machine size must match")]
fn machine_size_mismatch_is_rejected() {
    let machine = Machine::new(
        2,
        CommParams::achievable(),
        ProtoCosts::original(),
        MemConfig::pentium_pro_like(),
    );
    let mut p = Ideal::new();
    let _ = run_simulation(&mut p, &Empty, 4, machine);
}

#[test]
fn single_processor_lock_and_barrier_are_cheap_on_ideal() {
    struct OneProcSync;
    impl Workload for OneProcSync {
        fn name(&self) -> String {
            "one-proc-sync".into()
        }
        fn mem_bytes(&self) -> usize {
            4096
        }
        fn spawn(&self, w: &mut World, nprocs: usize) -> Vec<ThreadBody> {
            assert_eq!(nprocs, 1);
            let l = w.alloc_lock();
            let b = w.alloc_barrier();
            vec![Box::new(move |p: &Proc<'_>| {
                for _ in 0..100 {
                    p.lock(l);
                    p.unlock(l);
                    p.barrier(b);
                }
            })]
        }
    }
    let r = SimBuilder::new(Protocol::Ideal).procs(1).run(&OneProcSync);
    assert_eq!(r.total_cycles, 0, "ideal sync is free");
    assert_eq!(r.counters.lock_acquires, 100);
    assert_eq!(r.counters.barriers, 100);
}

#[test]
fn huge_compute_blocks_do_not_overflow_accounting() {
    struct Big;
    impl Workload for Big {
        fn name(&self) -> String {
            "big".into()
        }
        fn mem_bytes(&self) -> usize {
            4096
        }
        fn spawn(&self, _w: &mut World, nprocs: usize) -> Vec<ThreadBody> {
            (0..nprocs)
                .map(|_| {
                    Box::new(|p: &Proc<'_>| {
                        p.compute(1 << 40);
                    }) as ThreadBody
                })
                .collect()
        }
    }
    let r = SimBuilder::new(Protocol::Hlrc).procs(2).run(&Big);
    assert_eq!(r.total_cycles, 1 << 40);
}
