//! Water-Spatial — cutoff molecular dynamics with a spatial cell
//! decomposition, following the SPLASH-2 Water-Spatial sharing structure.
//!
//! Space is divided into a 3-D grid of cells (cell side ≥ cutoff);
//! processors own contiguous *slabs* of cells. Each timestep a processor:
//!
//! 1. reads the position array (read-mostly, coarse) and selects the
//!    molecules currently inside its slab — ownership follows the
//!    molecules, so load balance shifts as they move;
//! 2. computes cutoff-limited forces for its molecules against molecules
//!    in the 27-cell neighbourhood (neighbourhood sharing, far fewer
//!    remote molecules than Water-Nsquared);
//! 3. integrates its molecules and, when one crosses a cell boundary,
//!    updates the shared per-cell occupancy counters **under the cell's
//!    lock** (the remaining — much lighter — lock traffic of this
//!    application).
//!
//! Verification compares final positions against a sequential reference
//! within floating-point tolerance.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{block_range, read_block, write_block, FLOP};

/// Integration step.
const DT: f64 = 1e-3;
/// Force softening.
const SOFT: f64 = 0.05;
/// Cutoff radius (unit box).
const CUTOFF: f64 = 0.30;
/// Cells per box side. The cell side (1/CELLS) must be at least the
/// cutoff; 3 cells/side gives 27 cells so a 16-processor run keeps every
/// processor busy.
const CELLS: usize = 3;

/// Deterministic initial position (unit box, away from walls so a few
/// steps never escape).
fn pos_init(i: usize, c: usize) -> f64 {
    let h = (i * 3 + c).wrapping_mul(2654435761) & 0xfffff;
    0.1 + 0.8 * (h as f64 / 1048576.0)
}

/// Cutoff pair force of `b` on `a` (zero outside the cutoff).
fn pair_force(a: [f64; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 > CUTOFF * CUTOFF {
        return None;
    }
    let r2s = r2 + SOFT;
    let inv = 1.0 / (r2s * r2s.sqrt());
    Some([d[0] * inv, d[1] * inv, d[2] * inv])
}

/// Cell index of a position (clamped to the box).
fn cell_of(x: [f64; 3]) -> usize {
    let c = |v: f64| ((v * CELLS as f64) as isize).clamp(0, CELLS as isize - 1) as usize;
    (c(x[0]) * CELLS + c(x[1])) * CELLS + c(x[2])
}

/// The Water-Spatial workload: `n` molecules, `steps` timesteps.
#[derive(Debug)]
pub struct WaterSp {
    n: usize,
    steps: usize,
    state: RefCell<Option<SharedVec<f64>>>,
}

impl WaterSp {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `steps == 0`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(n >= 4 && steps > 0);
        WaterSp {
            n,
            steps,
            state: RefCell::new(None),
        }
    }

    /// Molecule count.
    pub fn molecules(&self) -> usize {
        self.n
    }

    /// Sequential reference with the identical force law and update order
    /// (forces for molecule `i` are accumulated over `j` in index order).
    #[allow(clippy::needless_range_loop)] // indexed loops mirror the kernel
    fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let mut pos: Vec<f64> = (0..n * 3).map(|k| pos_init(k / 3, k % 3)).collect();
        let mut vel = vec![0.0f64; n * 3];
        for _ in 0..self.steps {
            let mut force = vec![0.0f64; n * 3];
            for i in 0..n {
                let a = [pos[i * 3], pos[i * 3 + 1], pos[i * 3 + 2]];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let b = [pos[j * 3], pos[j * 3 + 1], pos[j * 3 + 2]];
                    if let Some(f) = pair_force(a, b) {
                        for c in 0..3 {
                            force[i * 3 + c] += f[c];
                        }
                    }
                }
            }
            for k in 0..n * 3 {
                vel[k] += force[k] * DT;
                pos[k] += vel[k] * DT;
            }
        }
        pos
    }
}

impl Workload for WaterSp {
    fn name(&self) -> String {
        format!("Water-Spatial(n={})", self.n)
    }

    fn mem_bytes(&self) -> usize {
        self.n * 3 * 8 * 3 + CELLS * CELLS * CELLS * 8 + 128 * 1024
    }

    #[allow(clippy::needless_range_loop)] // indexed loops mirror the SPLASH-2 kernels
    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let n = self.n;
        let ncells = CELLS * CELLS * CELLS;
        let pos = world.alloc_vec::<f64>(n * 3);
        let vel = world.alloc_vec::<f64>(n * 3);
        let occupancy = world.alloc_vec::<u32>(ncells);
        let cell_locks = world.alloc_locks(ncells);
        let bar = world.alloc_barrier();
        let mut occ = vec![0u32; ncells];
        for i in 0..n {
            let x = [pos_init(i, 0), pos_init(i, 1), pos_init(i, 2)];
            for c in 0..3 {
                pos.set_direct(i * 3 + c, x[c]);
            }
            occ[cell_of(x)] += 1;
        }
        for (c, &v) in occ.iter().enumerate() {
            occupancy.set_direct(c, v);
        }
        *self.state.borrow_mut() = Some(pos.clone());
        let steps = self.steps;
        (0..nprocs)
            .map(|pid| {
                let pos = pos.clone();
                let vel = vel.clone();
                let occupancy = occupancy.clone();
                let cell_locks = cell_locks.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    // Slab ownership: contiguous range of cell indices.
                    let (c0, c1) = block_range(ncells, p.nprocs(), pid);
                    for _ in 0..steps {
                        // Phase 1: read all positions (read-mostly sharing)
                        // and pick my molecules by current cell.
                        let all_pos = read_block(p, &pos, 0, n * 3);
                        let mine: Vec<usize> = (0..n)
                            .filter(|&i| {
                                let x = [all_pos[i * 3], all_pos[i * 3 + 1], all_pos[i * 3 + 2]];
                                let c = cell_of(x);
                                c >= c0 && c < c1
                            })
                            .collect();
                        p.compute(n as u64 * 4);
                        // Phase 2: cutoff forces for my molecules (j in
                        // index order to match the reference exactly).
                        let mut forces = vec![[0.0f64; 3]; mine.len()];
                        let mut interactions = 0u64;
                        for (t, &i) in mine.iter().enumerate() {
                            let a = [all_pos[i * 3], all_pos[i * 3 + 1], all_pos[i * 3 + 2]];
                            for j in 0..n {
                                if i == j {
                                    continue;
                                }
                                let b = [all_pos[j * 3], all_pos[j * 3 + 1], all_pos[j * 3 + 2]];
                                // Cell-distance prefilter (the cell lists):
                                // only the 27-neighbourhood is examined.
                                if !cells_adjacent(cell_of(a), cell_of(b)) {
                                    continue;
                                }
                                interactions += 1;
                                if let Some(f) = pair_force(a, b) {
                                    for c in 0..3 {
                                        forces[t][c] += f[c];
                                    }
                                }
                            }
                        }
                        // Same per-interaction cost rationale as Water-Nsquared: a real
                        // water-water interaction is hundreds of flops.
                        p.compute(interactions * 600 * FLOP);
                        p.barrier(bar);
                        // Phase 3: integrate my molecules; update cell
                        // occupancy under locks on boundary crossings.
                        for (t, &i) in mine.iter().enumerate() {
                            let mut v = read_block(p, &vel, i * 3, 3);
                            let mut x = read_block(p, &pos, i * 3, 3);
                            let before = cell_of([x[0], x[1], x[2]]);
                            for c in 0..3 {
                                v[c] += forces[t][c] * DT;
                                x[c] += v[c] * DT;
                            }
                            p.compute(12 * FLOP);
                            write_block(p, &vel, i * 3, &v);
                            write_block(p, &pos, i * 3, &x);
                            let after = cell_of([x[0], x[1], x[2]]);
                            if before != after {
                                let (lo, hi) = (before.min(after), before.max(after));
                                p.lock(cell_locks[lo]);
                                p.lock(cell_locks[hi]);
                                let b = occupancy.get(p, before);
                                occupancy.set(p, before, b.saturating_sub(1));
                                let a = occupancy.get(p, after);
                                occupancy.set(p, after, a + 1);
                                p.unlock(cell_locks[hi]);
                                p.unlock(cell_locks[lo]);
                            }
                        }
                        p.barrier(bar);
                    }
                });
                body
            })
            .collect()
    }

    #[allow(clippy::needless_range_loop)] // k indexes both got and want
    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let pos = guard.as_ref().ok_or("spawn() was never called")?;
        let want = self.reference();
        for k in 0..self.n * 3 {
            let got = pos.get_direct(k);
            if (got - want[k]).abs() > 1e-9 {
                return Err(format!(
                    "pos[{k}] = {got}, want {} (|err| = {:.2e})",
                    want[k],
                    (got - want[k]).abs()
                ));
            }
        }
        Ok(())
    }
}

/// Whether two cells are within one step of each other in every dimension.
fn cells_adjacent(a: usize, b: usize) -> bool {
    let unpack = |c: usize| {
        let z = c % CELLS;
        let y = (c / CELLS) % CELLS;
        let x = c / (CELLS * CELLS);
        (x as isize, y as isize, z as isize)
    };
    let (ax, ay, az) = unpack(a);
    let (bx, by, bz) = unpack(b);
    (ax - bx).abs() <= 1 && (ay - by).abs() <= 1 && (az - bz).abs() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn cell_mapping_is_in_range() {
        for i in 0..100 {
            let x = [pos_init(i, 0), pos_init(i, 1), pos_init(i, 2)];
            assert!(cell_of(x) < CELLS * CELLS * CELLS);
        }
    }

    #[test]
    fn adjacency_is_reflexive_and_symmetric() {
        let nc = CELLS * CELLS * CELLS;
        for a in 0..nc {
            assert!(cells_adjacent(a, a));
            for b in 0..nc {
                assert_eq!(cells_adjacent(a, b), cells_adjacent(b, a));
            }
        }
    }

    #[test]
    fn cutoff_prefilter_is_safe() {
        // Any pair within the cutoff must be in adjacent cells (cell side
        // 1/CELLS ≥ CUTOFF).
        assert!(1.0 / CELLS as f64 >= CUTOFF);
    }

    #[test]
    fn sequential_water_spatial_verifies() {
        let w = WaterSp::new(32, 2);
        let r = sequential_baseline(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn parallel_water_spatial_verifies() {
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            let w = WaterSp::new(32, 2);
            let r = SimBuilder::new(proto).procs(4).run(&w);
            assert!(r.verify_error.is_none(), "{proto:?}: {:?}", r.verify_error);
        }
    }

    #[test]
    fn spatial_locks_less_than_nsquared() {
        let nsq = crate::water_nsq::WaterNsq::new(32, 2);
        let r1 = SimBuilder::new(Protocol::Hlrc).procs(4).run(&nsq);
        let sp = WaterSp::new(32, 2);
        let r2 = SimBuilder::new(Protocol::Hlrc).procs(4).run(&sp);
        assert!(
            r2.counters.lock_acquires < r1.counters.lock_acquires / 2,
            "spatial {} vs nsquared {}",
            r2.counters.lock_acquires,
            r1.counters.lock_acquires
        );
    }
}
