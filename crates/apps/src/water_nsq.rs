//! Water-Nsquared — O(n²) pairwise molecular dynamics with per-molecule
//! force locks, following the SPLASH-2 Water-Nsquared sharing structure.
//!
//! Each processor owns a contiguous band of molecules. Every timestep:
//!
//! 1. owners zero their molecules' forces (local, coarse);
//! 2. each processor computes the pair interactions `(i, j)` for its
//!    molecules `i` against the *next n/2 molecules* (each pair computed
//!    exactly once), accumulating contributions in a private array; at the
//!    end of the phase it merges every non-zero partial sum into the
//!    shared force array **under that molecule's lock** (the SPLASH-2
//!    structure) — the migratory, lock-heavy traffic the paper calls out
//!    ("Water-Nsquared … computes many diffs for a lot of migratory data
//!    when it is updating forces");
//! 3. owners integrate their molecules (local).
//!
//! The physics is a softened inverse-square pair force (the water-specific
//! intra-molecular terms do not change the sharing structure; see
//! DESIGN.md §3 on substitutions). Verification compares positions against
//! a sequential reference within a floating-point-reassociation tolerance.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{block_range, read_block, write_block, FLOP};

/// Integration step.
const DT: f64 = 1e-3;
/// Force softening (avoids singular close pairs).
const SOFT: f64 = 0.05;

/// Deterministic initial position component `c` of molecule `i` in a unit
/// box.
fn pos_init(i: usize, c: usize) -> f64 {
    let h = (i * 3 + c).wrapping_mul(2654435761) & 0xfffff;
    h as f64 / 1048576.0
}

/// Softened inverse-square pair force of `b` on `a`.
fn pair_force(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFT;
    let inv = 1.0 / (r2 * r2.sqrt());
    [d[0] * inv, d[1] * inv, d[2] * inv]
}

/// Cycles for one pair interaction. A real SPLASH-2 water-water
/// interaction evaluates all O-O/O-H/H-H terms — several hundred floating
/// point operations — so the charged cost reflects that, even though the
/// substituted physics (DESIGN.md §3) computes a single softened pair
/// force. This keeps the computation-to-communication ratio of the
/// original application.
const PAIR_COST: u64 = 600 * FLOP;

/// The Water-Nsquared workload: `n` molecules, `steps` timesteps.
#[derive(Debug)]
pub struct WaterNsq {
    n: usize,
    steps: usize,
    state: RefCell<Option<SharedVec<f64>>>,
}

impl WaterNsq {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `steps == 0`.
    pub fn new(n: usize, steps: usize) -> Self {
        assert!(n >= 4 && steps > 0);
        WaterNsq {
            n,
            steps,
            state: RefCell::new(None),
        }
    }

    /// Molecule count.
    pub fn molecules(&self) -> usize {
        self.n
    }

    /// Sequential reference: same force law, same pair set, deterministic
    /// order. Returns final positions.
    fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let mut pos: Vec<f64> = (0..n * 3).map(|k| pos_init(k / 3, k % 3)).collect();
        let mut vel = vec![0.0f64; n * 3];
        for _ in 0..self.steps {
            let mut force = vec![0.0f64; n * 3];
            for i in 0..n {
                for half in 1..=n / 2 {
                    let j = (i + half) % n;
                    // Each unordered pair once: skip the double-counted
                    // half when n is even.
                    if n.is_multiple_of(2) && half == n / 2 && i >= n / 2 {
                        continue;
                    }
                    let a = [pos[i * 3], pos[i * 3 + 1], pos[i * 3 + 2]];
                    let b = [pos[j * 3], pos[j * 3 + 1], pos[j * 3 + 2]];
                    let f = pair_force(a, b);
                    for c in 0..3 {
                        force[i * 3 + c] += f[c];
                        force[j * 3 + c] -= f[c];
                    }
                }
            }
            for k in 0..n * 3 {
                vel[k] += force[k] * DT;
                pos[k] += vel[k] * DT;
            }
        }
        pos
    }
}

impl Workload for WaterNsq {
    fn name(&self) -> String {
        format!("Water-Nsquared(n={})", self.n)
    }

    fn mem_bytes(&self) -> usize {
        self.n * 3 * 8 * 3 + 128 * 1024
    }

    #[allow(clippy::needless_range_loop)] // indexed loops mirror the SPLASH-2 kernels
    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let n = self.n;
        let pos = world.alloc_vec::<f64>(n * 3);
        let vel = world.alloc_vec::<f64>(n * 3);
        let force = world.alloc_vec::<f64>(n * 3);
        let locks = world.alloc_locks(n);
        let bar = world.alloc_barrier();
        for i in 0..n {
            for c in 0..3 {
                pos.set_direct(i * 3 + c, pos_init(i, c));
            }
        }
        *self.state.borrow_mut() = Some(pos.clone());
        let steps = self.steps;
        (0..nprocs)
            .map(|pid| {
                let pos = pos.clone();
                let vel = vel.clone();
                let force = force.clone();
                let locks = locks.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let (m0, m1) = block_range(n, p.nprocs(), pid);
                    for _ in 0..steps {
                        // Phase 1: zero my forces.
                        write_block(p, &force, m0 * 3, &vec![0.0; (m1 - m0) * 3]);
                        p.barrier(bar);
                        // Phase 2: pair forces. Read all positions coarsely
                        // (read-mostly), accumulate my own contributions
                        // privately, push contributions to others under
                        // their molecule lock.
                        let all_pos = read_block(p, &pos, 0, n * 3);
                        let mut partial = vec![0.0f64; n * 3];
                        let mut touched = vec![false; n];
                        for i in m0..m1 {
                            for half in 1..=n / 2 {
                                let j = (i + half) % n;
                                if n.is_multiple_of(2) && half == n / 2 && i >= n / 2 {
                                    continue;
                                }
                                let a = [all_pos[i * 3], all_pos[i * 3 + 1], all_pos[i * 3 + 2]];
                                let b = [all_pos[j * 3], all_pos[j * 3 + 1], all_pos[j * 3 + 2]];
                                let f = pair_force(a, b);
                                p.compute(PAIR_COST);
                                for c in 0..3 {
                                    partial[i * 3 + c] += f[c];
                                    partial[j * 3 + c] -= f[c];
                                }
                                touched[i] = true;
                                touched[j] = true;
                            }
                        }
                        // Merge phase: every non-zero partial sum goes into
                        // the shared array under the molecule's lock (the
                        // molecule records are the paper's migratory data).
                        for j in 0..n {
                            if !touched[j] {
                                continue;
                            }
                            p.lock(locks[j]);
                            let cur = read_block(p, &force, j * 3, 3);
                            write_block(
                                p,
                                &force,
                                j * 3,
                                &[
                                    cur[0] + partial[j * 3],
                                    cur[1] + partial[j * 3 + 1],
                                    cur[2] + partial[j * 3 + 2],
                                ],
                            );
                            p.unlock(locks[j]);
                        }
                        p.barrier(bar);
                        // Phase 3: integrate my molecules.
                        let f = read_block(p, &force, m0 * 3, (m1 - m0) * 3);
                        let mut v = read_block(p, &vel, m0 * 3, (m1 - m0) * 3);
                        let mut x = read_block(p, &pos, m0 * 3, (m1 - m0) * 3);
                        for k in 0..(m1 - m0) * 3 {
                            v[k] += f[k] * DT;
                            x[k] += v[k] * DT;
                        }
                        p.compute(((m1 - m0) * 3) as u64 * 4 * FLOP);
                        write_block(p, &vel, m0 * 3, &v);
                        write_block(p, &pos, m0 * 3, &x);
                        p.barrier(bar);
                    }
                });
                body
            })
            .collect()
    }

    #[allow(clippy::needless_range_loop)] // k indexes both got and want
    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let pos = guard.as_ref().ok_or("spawn() was never called")?;
        let want = self.reference();
        for k in 0..self.n * 3 {
            let got = pos.get_direct(k);
            // Accumulation order differs across processors; tolerate
            // floating-point reassociation only.
            if (got - want[k]).abs() > 1e-9 {
                return Err(format!(
                    "pos[{k}] = {got}, want {} (|err| = {:.2e})",
                    want[k],
                    (got - want[k]).abs()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn pair_force_is_antisymmetric_in_use() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.7, 0.5, 0.9];
        let f_ab = pair_force(a, b);
        let f_ba = pair_force(b, a);
        for c in 0..3 {
            assert!((f_ab[c] + f_ba[c]).abs() < 1e-15);
        }
    }

    #[test]
    fn every_pair_computed_exactly_once() {
        // The (i, i+half) enumeration over all i must cover each unordered
        // pair exactly once, for even and odd n.
        for n in [6usize, 7, 8, 9] {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                for half in 1..=n / 2 {
                    let j = (i + half) % n;
                    if n % 2 == 0 && half == n / 2 && i >= n / 2 {
                        continue;
                    }
                    let key = (i.min(j), i.max(j));
                    assert!(seen.insert(key), "pair {key:?} duplicated (n={n})");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn sequential_water_verifies() {
        let w = WaterNsq::new(16, 2);
        let r = sequential_baseline(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn parallel_water_verifies_and_locks() {
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            let w = WaterNsq::new(16, 2);
            let r = SimBuilder::new(proto).procs(4).run(&w);
            assert!(r.verify_error.is_none(), "{proto:?}: {:?}", r.verify_error);
            // Each processor merges up to n molecules per step: with
            // n=16, 2 steps, 4 procs that is ~128 lock acquires.
            assert!(
                r.counters.lock_acquires > 40,
                "{proto:?}: expected per-molecule merge locking, got {}",
                r.counters.lock_acquires
            );
        }
    }
}
