//! Shared helpers for the application suite: work partitioning, cycle-cost
//! constants, complex arithmetic, and coarse-grained shared-array I/O.
//!
//! # Cost model
//!
//! The paper's simulator counts retired x86 instructions at 1 IPC. Our
//! applications charge explicit cycle costs per arithmetic operation
//! instead (see DESIGN.md §3); the constants below fold in the loads,
//! stores and loop overhead surrounding each floating-point operation, so
//! computation-to-communication ratios stay realistic.

use ssm_proto::{Proc, Scalar, SharedVec};

/// Cycles charged per floating-point operation (with surrounding loads,
/// stores and address arithmetic at 1 IPC).
pub const FLOP: u64 = 8;

/// Cycles charged per integer/bookkeeping operation.
pub const INT_OP: u64 = 2;

/// Cycles charged per element copied between buffers.
pub const COPY: u64 = 4;

/// A small, fast, seeded pseudo-random generator (SplitMix64 state
/// advance + xorshift-style output mixing). This replaces the external
/// `rand` crate so the workspace builds with no registry access; it is
/// deterministic by construction, which the simulator requires anyway
/// (identical seeds must reproduce identical workloads and results).
///
/// # Example
///
/// ```rust
/// use ssm_apps::common::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// let f = a.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction (Lemire); the tiny modulo bias of
        // the plain form is irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher-Yates shuffle of `xs`.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Splits `n` items over `nprocs` processors; returns `[start, end)` for
/// `pid`. Remainders go to the lowest-numbered processors, so sizes differ
/// by at most one.
///
/// # Example
///
/// ```rust
/// use ssm_apps::common::block_range;
/// assert_eq!(block_range(10, 4, 0), (0, 3));
/// assert_eq!(block_range(10, 4, 1), (3, 6));
/// assert_eq!(block_range(10, 4, 3), (8, 10));
/// ```
pub fn block_range(n: usize, nprocs: usize, pid: usize) -> (usize, usize) {
    assert!(pid < nprocs && nprocs > 0);
    let base = n / nprocs;
    let rem = n % nprocs;
    let start = pid * base + pid.min(rem);
    let len = base + usize::from(pid < rem);
    (start, start + len)
}

/// Reads `len` consecutive elements starting at `i` with a single simulated
/// coarse access, returning the values. This is how the suite models the
/// blocked/staged copies SPLASH-2 applications use.
pub fn read_block<T: Scalar>(p: &Proc<'_>, v: &SharedVec<T>, i: usize, len: usize) -> Vec<T> {
    v.touch_range_read(p, i, len);
    (i..i + len).map(|j| v.get_direct(j)).collect()
}

/// Writes `vals` to consecutive elements starting at `i` with a single
/// simulated coarse access.
pub fn write_block<T: Scalar>(p: &Proc<'_>, v: &SharedVec<T>, i: usize, vals: &[T]) {
    if vals.is_empty() {
        return;
    }
    v.touch_range_write(p, i, vals.len());
    for (k, &val) in vals.iter().enumerate() {
        v.set_direct(i + k, val);
    }
}

/// A complex number (interleaved re/im storage in shared arrays).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cx {
    /// `re + im*i`.
    pub fn new(re: f64, im: f64) -> Self {
        Cx { re, im }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Cx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Cx {
    type Output = Cx;
    fn add(self, o: Cx) -> Cx {
        Cx::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Cx {
    type Output = Cx;
    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Cx {
    type Output = Cx;
    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 FFT (Cooley-Tukey with bit reversal).
/// `inverse` flips the transform direction (no 1/n scaling applied).
///
/// # Panics
///
/// Panics if `a.len()` is not a power of two.
pub fn fft_in_place(a: &mut [Cx], inverse: bool) {
    let n = a.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = Cx::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Cx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = a[start + k];
                let v = a[start + k + len / 2] * w;
                a[start + k] = u + v;
                a[start + k + len / 2] = u - v;
                w = w * wl;
            }
        }
        len <<= 1;
    }
}

/// Cycles an `n`-point in-place FFT costs (5 n log2 n flops, the standard
/// count).
pub fn fft_cycles(n: usize) -> u64 {
    let logn = n.trailing_zeros() as u64;
    5 * n as u64 * logn * FLOP
}

/// Naive DFT used by verification code.
pub fn dft_reference(x: &[Cx]) -> Vec<Cx> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut s = Cx::default();
            for (j, &xj) in x.iter().enumerate() {
                let w = Cx::cis(-2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64);
                s = s + xj * w;
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_exactly() {
        for n in [0usize, 1, 7, 16, 100] {
            for np in [1usize, 2, 3, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for pid in 0..np {
                    let (s, e) = block_range(n, np, pid);
                    assert_eq!(s, prev_end);
                    prev_end = e;
                    covered += e - s;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let x: Vec<Cx> = (0..n)
            .map(|i| Cx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let want = dft_reference(&x);
        let mut got = x.clone();
        fft_in_place(&mut got, false);
        for k in 0..n {
            assert!(
                (got[k] - want[k]).norm2() < 1e-18,
                "bin {k}: {:?} vs {:?}",
                got[k],
                want[k]
            );
        }
    }

    #[test]
    fn fft_round_trip() {
        let n = 64;
        let x: Vec<Cx> = (0..n).map(|i| Cx::new(i as f64, -(i as f64))).collect();
        let mut y = x.clone();
        fft_in_place(&mut y, false);
        fft_in_place(&mut y, true);
        for k in 0..n {
            let back = Cx::new(y[k].re / n as f64, y[k].im / n as f64);
            assert!((back - x[k]).norm2() < 1e-16);
        }
    }

    #[test]
    fn complex_algebra() {
        let a = Cx::new(1.0, 2.0);
        let b = Cx::new(3.0, -1.0);
        assert_eq!(a * b, Cx::new(5.0, 5.0));
        assert_eq!(a + b, Cx::new(4.0, 1.0));
        assert!((Cx::cis(0.0).re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fft_cycles_scale() {
        assert!(fft_cycles(64) > fft_cycles(32) * 2);
    }

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rng_range_and_unit_interval_bounds() {
        let mut r = Rng::new(123);
        for _ in 0..1000 {
            assert!(r.gen_range(17) < 17);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.gen_range(0), 0);
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn rng_shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<usize> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..64).collect::<Vec<_>>(),
            "64! leaves ~no chance of identity"
        );
    }
}
