//! The application catalog: the paper's Table 1 (applications, problem
//! sizes, Shasta instrumentation costs) plus factories that build each
//! workload at one of three scales.
//!
//! * [`Scale::Test`] — seconds-fast sizes for unit/integration tests;
//! * [`Scale::Bench`] — the default harness sizes (minutes for the full
//!   figure sweeps; the *shape* of the results is what the reproduction
//!   targets, per DESIGN.md);
//! * [`Scale::Full`] — the paper's own problem sizes (hours; provided for
//!   completeness).

use ssm_proto::Workload;

use crate::barnes::Barnes;
use crate::fft::Fft;
use crate::lu::Lu;
use crate::ocean::Ocean;
use crate::radix::Radix;
use crate::raytrace::Raytrace;
use crate::volrend::Volrend;
use crate::water_nsq::WaterNsq;
use crate::water_sp::WaterSp;

/// Problem-size scale for a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: for tests.
    Test,
    /// Default benchmark-harness size.
    Bench,
    /// The paper's size.
    Full,
}

/// One application in the suite (a row of Table 1).
pub struct AppSpec {
    /// Display name as the paper uses it.
    pub name: &'static str,
    /// The paper's problem size (Table 1).
    pub paper_size: &'static str,
    /// Shasta software access-control instrumentation cost, % (Table 1).
    /// Values the OCR dropped are reconstructed and flagged in DESIGN.md.
    pub instrumentation_pct: u32,
    /// The best SC coherence granularity for this application (bytes) —
    /// the paper's per-application choice (§2).
    pub sc_block: u64,
    /// Whether this entry is a restructured variant, and of which app.
    pub restructured_of: Option<&'static str>,
    make: fn(Scale) -> Box<dyn Workload>,
}

impl AppSpec {
    /// Builds the workload at the given scale.
    pub fn build(&self, scale: Scale) -> Box<dyn Workload> {
        (self.make)(scale)
    }
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("paper_size", &self.paper_size)
            .finish()
    }
}

/// The full suite, originals first, each restructured variant directly
/// after its original (the paper's bar-ordering convention).
pub fn suite() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "FFT",
            paper_size: "1M points",
            instrumentation_pct: 29,
            sc_block: 4096,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Fft::new(256),
                    Scale::Bench => Fft::new(1 << 20),
                    Scale::Full => Fft::new(1 << 20),
                })
            },
        },
        AppSpec {
            name: "LU-Contiguous",
            paper_size: "512x512 matrix",
            instrumentation_pct: 29,
            sc_block: 4096,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Lu::new(32, 8),
                    Scale::Bench => Lu::new(256, 16),
                    Scale::Full => Lu::new(512, 16),
                })
            },
        },
        AppSpec {
            name: "Ocean-Contiguous",
            paper_size: "514x514 grid",
            instrumentation_pct: 40,
            sc_block: 1024,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Ocean::contiguous(16, 2),
                    Scale::Bench => Ocean::contiguous(258, 4),
                    Scale::Full => Ocean::contiguous(512, 10),
                })
            },
        },
        AppSpec {
            name: "Ocean-rowwise",
            paper_size: "514x514 grid",
            instrumentation_pct: 40,
            sc_block: 1024,
            restructured_of: Some("Ocean-Contiguous"),
            make: |s| {
                Box::new(match s {
                    Scale::Test => Ocean::rowwise(16, 2),
                    Scale::Bench => Ocean::rowwise(258, 4),
                    Scale::Full => Ocean::rowwise(512, 10),
                })
            },
        },
        AppSpec {
            name: "Radix",
            paper_size: "1M keys",
            instrumentation_pct: 33,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Radix::original(512),
                    Scale::Bench => Radix::original(1 << 18),
                    Scale::Full => Radix::original(1 << 20),
                })
            },
        },
        AppSpec {
            name: "Radix-Local",
            paper_size: "1M keys",
            instrumentation_pct: 33,
            sc_block: 64,
            restructured_of: Some("Radix"),
            make: |s| {
                Box::new(match s {
                    Scale::Test => Radix::local(512),
                    Scale::Bench => Radix::local(1 << 18),
                    Scale::Full => Radix::local(1 << 20),
                })
            },
        },
        AppSpec {
            name: "Barnes-original",
            paper_size: "16K particles",
            instrumentation_pct: 24,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Barnes::original(32, 1),
                    Scale::Bench => Barnes::original(512, 2),
                    Scale::Full => Barnes::original(16384, 4),
                })
            },
        },
        AppSpec {
            name: "Barnes-Spatial",
            paper_size: "16K particles",
            instrumentation_pct: 24,
            sc_block: 64,
            restructured_of: Some("Barnes-original"),
            make: |s| {
                Box::new(match s {
                    Scale::Test => Barnes::spatial(32, 1),
                    Scale::Bench => Barnes::spatial(512, 2),
                    Scale::Full => Barnes::spatial(16384, 4),
                })
            },
        },
        AppSpec {
            name: "Raytrace",
            paper_size: "car scene",
            instrumentation_pct: 29,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Raytrace::new(16, 24),
                    Scale::Bench => Raytrace::new(64, 256),
                    Scale::Full => Raytrace::new(256, 2048),
                })
            },
        },
        AppSpec {
            name: "Volrend",
            paper_size: "256^3 CT head",
            instrumentation_pct: 24,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => Volrend::original(16),
                    Scale::Bench => Volrend::original(64),
                    Scale::Full => Volrend::original(256),
                })
            },
        },
        AppSpec {
            name: "Volrend-rest",
            paper_size: "256^3 CT head",
            instrumentation_pct: 24,
            sc_block: 64,
            restructured_of: Some("Volrend"),
            make: |s| {
                Box::new(match s {
                    Scale::Test => Volrend::restructured(16),
                    Scale::Bench => Volrend::restructured(64),
                    Scale::Full => Volrend::restructured(256),
                })
            },
        },
        AppSpec {
            name: "Water-Nsquared",
            paper_size: "512 molecules",
            instrumentation_pct: 15,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => WaterNsq::new(16, 2),
                    Scale::Bench => WaterNsq::new(512, 2),
                    Scale::Full => WaterNsq::new(512, 3),
                })
            },
        },
        AppSpec {
            name: "Water-Spatial",
            paper_size: "512 molecules",
            instrumentation_pct: 15,
            sc_block: 64,
            restructured_of: None,
            make: |s| {
                Box::new(match s {
                    Scale::Test => WaterSp::new(32, 2),
                    Scale::Bench => WaterSp::new(512, 2),
                    Scale::Full => WaterSp::new(512, 3),
                })
            },
        },
    ]
}

/// Only the original (non-restructured) applications.
pub fn originals() -> Vec<AppSpec> {
    suite()
        .into_iter()
        .filter(|a| a.restructured_of.is_none())
        .collect()
}

/// Looks an application up by name.
pub fn by_name(name: &str) -> Option<AppSpec> {
    suite().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape() {
        let s = suite();
        assert_eq!(s.len(), 13);
        assert_eq!(originals().len(), 9);
        // Every restructured entry points at a real original.
        for a in &s {
            if let Some(base) = a.restructured_of {
                assert!(by_name(base).is_some(), "{base} missing for {}", a.name);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> = suite().iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn every_app_builds_and_names_itself_at_test_scale() {
        for spec in suite() {
            let w = spec.build(Scale::Test);
            assert!(!w.name().is_empty());
            assert!(w.mem_bytes() > 0);
        }
    }

    #[test]
    fn regular_apps_use_coarse_sc_blocks() {
        assert_eq!(by_name("FFT").expect("FFT").sc_block, 4096);
        assert_eq!(by_name("Ocean-Contiguous").expect("ocean").sc_block, 1024);
        assert_eq!(by_name("Barnes-original").expect("barnes").sc_block, 64);
    }
}
