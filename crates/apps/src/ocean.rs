//! Ocean — the regular nearest-neighbour grid solver (red-black
//! Gauss-Seidel on the SPLASH-2 Ocean pattern), in two versions:
//!
//! * **Ocean-Contiguous** (original): processors own 2-D subgrids stored
//!   block-contiguously. North/south boundary exchanges are contiguous row
//!   segments (coarse), but east/west exchanges read a *column* of the
//!   neighbour's block — one word per row. This is the fine-grained
//!   "message per word of useful data" behaviour the paper highlights for
//!   Ocean-Contiguous (§4.3).
//! * **Ocean-rowwise** (restructured): processors own horizontal strips of
//!   a row-major grid, so every boundary exchange is one contiguous row.
//!   This "greatly reduces the number of messages" (§4.5), trading surface-
//!   to-volume ratio for coarse access.
//!
//! The solver runs a fixed number of red-black sweeps with barriers between
//! half-sweeps; both variants compute bit-identical results to a sequential
//! reference, which `verify` checks exactly.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{block_range, read_block, FLOP, INT_OP};

/// Fixed boundary value at grid point `(i, j)`.
fn boundary(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 97) as f64 / 97.0
}

/// Source term at grid point `(i, j)`.
fn source(i: usize, j: usize) -> f64 {
    ((i * 131 + j * 101) % 256) as f64 / 256.0 - 0.5
}

/// Which layout/decomposition variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OceanVariant {
    /// Original: 2-D block decomposition, block-contiguous storage.
    Contiguous,
    /// Restructured: row-strip decomposition, row-major storage.
    Rowwise,
}

/// The Ocean workload: an `(n+2) x (n+2)` grid (n interior points per
/// side), `iters` red-black iterations.
#[derive(Debug)]
pub struct Ocean {
    n: usize,
    iters: usize,
    variant: OceanVariant,
    state: RefCell<Option<(SharedVec<f64>, Layout)>>,
}

/// How grid point `(i, j)` maps to an index in the shared array.
#[derive(Debug, Clone)]
enum Layout {
    /// Row-major over the full `(n+2)^2` grid.
    RowMajor { total: usize },
    /// Block-contiguous: `rows[i]`/`cols[j]` give each block's spans;
    /// `bases[i * pc + j]` its starting index.
    Blocked {
        rows: Vec<(usize, usize)>,
        cols: Vec<(usize, usize)>,
        bases: Vec<usize>,
    },
}

impl Layout {
    fn index(&self, i: usize, j: usize) -> usize {
        match self {
            Layout::RowMajor { total } => i * total + j,
            Layout::Blocked { rows, cols, bases } => {
                let bi = rows
                    .iter()
                    .position(|&(s, e)| i >= s && i < e)
                    .expect("row in range");
                let bj = cols
                    .iter()
                    .position(|&(s, e)| j >= s && j < e)
                    .expect("col in range");
                let (r0, _) = rows[bi];
                let (c0, c1) = cols[bj];
                bases[bi * cols.len() + bj] + (i - r0) * (c1 - c0) + (j - c0)
            }
        }
    }
}

/// Near-square factorization of the processor count.
fn proc_grid(nprocs: usize) -> (usize, usize) {
    let mut pr = (nprocs as f64).sqrt() as usize;
    while !nprocs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr, nprocs / pr)
}

impl Ocean {
    /// Original Ocean-Contiguous with `n` interior points per side.
    pub fn contiguous(n: usize, iters: usize) -> Self {
        Ocean::new(n, iters, OceanVariant::Contiguous)
    }

    /// Restructured Ocean-rowwise.
    pub fn rowwise(n: usize, iters: usize) -> Self {
        Ocean::new(n, iters, OceanVariant::Rowwise)
    }

    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `iters == 0`.
    pub fn new(n: usize, iters: usize, variant: OceanVariant) -> Self {
        assert!(n >= 4 && iters > 0);
        Ocean {
            n,
            iters,
            variant,
            state: RefCell::new(None),
        }
    }

    /// Interior grid dimension.
    pub fn interior(&self) -> usize {
        self.n
    }

    fn total(&self) -> usize {
        self.n + 2
    }

    fn build_layout(&self, nprocs: usize) -> Layout {
        match self.variant {
            OceanVariant::Rowwise => Layout::RowMajor {
                total: self.total(),
            },
            OceanVariant::Contiguous => {
                let (pr, pc) = proc_grid(nprocs);
                let total = self.total();
                let rows: Vec<(usize, usize)> =
                    (0..pr).map(|i| block_range(total, pr, i)).collect();
                let cols: Vec<(usize, usize)> =
                    (0..pc).map(|j| block_range(total, pc, j)).collect();
                let mut bases = Vec::with_capacity(pr * pc);
                let mut next = 0usize;
                for &(r0, r1) in &rows {
                    for &(c0, c1) in &cols {
                        bases.push(next);
                        next += (r1 - r0) * (c1 - c0);
                    }
                }
                Layout::Blocked { rows, cols, bases }
            }
        }
    }

    /// Sequential reference with identical arithmetic and sweep structure.
    fn reference(&self) -> Vec<f64> {
        let total = self.total();
        let mut u = vec![0.0f64; total * total];
        for i in 0..total {
            for j in 0..total {
                if i == 0 || j == 0 || i == total - 1 || j == total - 1 {
                    u[i * total + j] = boundary(i, j);
                }
            }
        }
        for _ in 0..self.iters {
            for color in 0..2usize {
                let old = u.clone();
                for i in 1..total - 1 {
                    for j in 1..total - 1 {
                        if (i + j) % 2 == color {
                            u[i * total + j] = 0.25
                                * (old[(i - 1) * total + j]
                                    + old[(i + 1) * total + j]
                                    + old[i * total + j - 1]
                                    + old[i * total + j + 1]
                                    + source(i, j));
                        }
                    }
                }
            }
        }
        u
    }
}

impl Workload for Ocean {
    fn name(&self) -> String {
        match self.variant {
            OceanVariant::Contiguous => format!("Ocean-Contiguous(n={})", self.n),
            OceanVariant::Rowwise => format!("Ocean-rowwise(n={})", self.n),
        }
    }

    fn mem_bytes(&self) -> usize {
        self.total() * self.total() * 8 + 64 * 1024
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let total = self.total();
        let grid = world.alloc_vec::<f64>(total * total);
        let bar = world.alloc_barrier();
        let layout = self.build_layout(nprocs);
        for i in 0..total {
            for j in 0..total {
                let v = if i == 0 || j == 0 || i == total - 1 || j == total - 1 {
                    boundary(i, j)
                } else {
                    0.0
                };
                grid.set_direct(layout.index(i, j), v);
            }
        }
        *self.state.borrow_mut() = Some((grid.clone(), layout.clone()));
        let iters = self.iters;
        let variant = self.variant;
        let (pr, pc) = proc_grid(nprocs);
        (0..nprocs)
            .map(|pid| {
                let grid = grid.clone();
                let layout = layout.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    // My owned span of the FULL grid (boundary cells
                    // included; they are never updated). In the blocked
                    // layout this is exactly my contiguous block.
                    let (r0, r1, c0, c1) = match variant {
                        OceanVariant::Rowwise => {
                            let (a, b) = block_range(total, p.nprocs(), pid);
                            (a, b, 0, total)
                        }
                        OceanVariant::Contiguous => {
                            let bi = pid / pc;
                            let bj = pid % pc;
                            let (a, b) = block_range(total, pr, bi);
                            let (c, d) = block_range(total, pc, bj);
                            (a, b, c, d)
                        }
                    };
                    let h = r1 - r0;
                    let w = c1 - c0;
                    if h == 0 || w == 0 {
                        for _ in 0..iters * 2 {
                            p.barrier(bar);
                        }
                        return;
                    }
                    // Local mirror of my span plus a halo ring.
                    let mut local = vec![0.0f64; (h + 2) * (w + 2)];
                    let lw = w + 2;
                    for _ in 0..iters {
                        for color in 0..2usize {
                            // Refresh my span: one coarse read in the
                            // blocked layout, per-row in rowwise.
                            match variant {
                                OceanVariant::Contiguous => {
                                    let base = layout.index(r0, c0);
                                    let blk = read_block(p, &grid, base, h * w);
                                    for r in 0..h {
                                        for c in 0..w {
                                            local[(r + 1) * lw + c + 1] = blk[r * w + c];
                                        }
                                    }
                                }
                                OceanVariant::Rowwise => {
                                    let base = layout.index(r0, 0);
                                    let blk = read_block(p, &grid, base, h * total);
                                    for r in 0..h {
                                        for c in 0..w {
                                            local[(r + 1) * lw + c + 1] = blk[r * total + c];
                                        }
                                    }
                                }
                            }
                            // Halo: north & south neighbour rows —
                            // contiguous runs in the underlying layout
                            // (coarse reads).
                            let row_halo =
                                |p: &Proc<'_>, local: &mut Vec<f64>, dst_r: usize, src_i: usize| {
                                    let mut j = c0;
                                    while j < c1 {
                                        let start_idx = layout.index(src_i, j);
                                        let mut len = 1usize;
                                        while j + len < c1
                                            && layout.index(src_i, j + len) == start_idx + len
                                        {
                                            len += 1;
                                        }
                                        let seg = read_block(p, &grid, start_idx, len);
                                        for (t, v) in seg.into_iter().enumerate() {
                                            local[dst_r * lw + (j - c0) + 1 + t] = v;
                                        }
                                        j += len;
                                    }
                                };
                            if r0 > 0 {
                                row_halo(p, &mut local, 0, r0 - 1);
                            }
                            if r1 < total {
                                row_halo(p, &mut local, h + 1, r1);
                            }
                            // Halo: west & east neighbour columns — one
                            // word per row (the fine-grained accesses the
                            // paper calls out for Ocean-Contiguous).
                            if c0 > 0 {
                                for r in 0..h {
                                    let idx = layout.index(r0 + r, c0 - 1);
                                    grid.touch_range_read(p, idx, 1);
                                    local[(r + 1) * lw] = grid.get_direct(idx);
                                }
                            }
                            if c1 < total {
                                for r in 0..h {
                                    let idx = layout.index(r0 + r, c1);
                                    grid.touch_range_read(p, idx, 1);
                                    local[(r + 1) * lw + w + 1] = grid.get_direct(idx);
                                }
                            }
                            // Update my interior cells of this color.
                            let mut updates: Vec<(usize, f64)> = Vec::new();
                            for r in 0..h {
                                for c in 0..w {
                                    let (gi, gj) = (r0 + r, c0 + c);
                                    if gi == 0
                                        || gj == 0
                                        || gi == total - 1
                                        || gj == total - 1
                                        || (gi + gj) % 2 != color
                                    {
                                        continue;
                                    }
                                    let v = 0.25
                                        * (local[r * lw + c + 1]
                                            + local[(r + 2) * lw + c + 1]
                                            + local[(r + 1) * lw + c]
                                            + local[(r + 1) * lw + c + 2]
                                            + source(gi, gj));
                                    updates.push((layout.index(gi, gj), v));
                                }
                            }
                            p.compute(updates.len() as u64 * (5 * FLOP + 2 * INT_OP));
                            // Word-granularity writes (red-black cells
                            // alternate; there is no contiguous run to
                            // batch).
                            for (idx, v) in updates {
                                grid.touch_range_write(p, idx, 1);
                                grid.set_direct(idx, v);
                            }
                            p.barrier(bar);
                        }
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let (grid, layout) = guard.as_ref().ok_or("spawn() was never called")?;
        let want = self.reference();
        let total = self.total();
        for i in 0..total {
            for j in 0..total {
                let got = grid.get_direct(layout.index(i, j));
                let w = want[i * total + j];
                if (got - w).abs() > 1e-12 {
                    return Err(format!("grid[{i}][{j}] = {got}, want {w}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn sequential_both_variants_verify() {
        for v in [OceanVariant::Contiguous, OceanVariant::Rowwise] {
            let w = Ocean::new(8, 2, v);
            let r = sequential_baseline(&w);
            assert!(r.verify_error.is_none(), "{v:?}: {:?}", r.verify_error);
        }
    }

    #[test]
    fn parallel_contiguous_verifies_under_hlrc() {
        let w = Ocean::contiguous(16, 2);
        let r = SimBuilder::new(Protocol::Hlrc).procs(4).run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
        assert_eq!(r.counters.barriers as usize, 4);
    }

    #[test]
    fn parallel_rowwise_verifies_under_sc() {
        let w = Ocean::rowwise(16, 2);
        let r = SimBuilder::new(Protocol::Sc)
            .procs(4)
            .sc_block(1024)
            .run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn rowwise_sends_fewer_messages_than_contiguous() {
        // The restructuring's whole point (paper §4.5): fewer, coarser
        // messages. At fine granularity (SC, 64 B) the contiguous variant's
        // per-word column exchanges dominate; rowwise strips have no
        // east/west boundaries at all.
        let orig = Ocean::contiguous(24, 2);
        let ro = SimBuilder::new(Protocol::Sc)
            .procs(4)
            .sc_block(64)
            .run(&orig);
        let rest = Ocean::rowwise(24, 2);
        let rr = SimBuilder::new(Protocol::Sc)
            .procs(4)
            .sc_block(64)
            .run(&rest);
        assert!(ro.verify_error.is_none() && rr.verify_error.is_none());
        assert!(
            rr.counters.messages < ro.counters.messages,
            "rowwise {} should send fewer messages than contiguous {}",
            rr.counters.messages,
            ro.counters.messages
        );
    }

    #[test]
    fn layout_blocked_is_bijective() {
        let o = Ocean::contiguous(6, 1);
        let l = o.build_layout(4);
        let total = 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            for j in 0..total {
                assert!(seen.insert(l.index(i, j)), "duplicate index at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), total * total);
        assert!(seen.iter().max() == Some(&(total * total - 1)));
    }
}
