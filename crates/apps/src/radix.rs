//! Radix — the SPLASH-2 parallel radix sort, the paper's stress case for
//! page-based SVM.
//!
//! Each pass histograms one digit, computes global write offsets, then
//! **permutes** every key to its destination. In the original version each
//! key is written directly into the (mostly remote) destination array: an
//! all-to-all scatter of 4-byte writes that causes massive page-level false
//! sharing and bandwidth demand — the reason the paper's Radix speedup is
//! 0.x on the base system and needs the "better-than-best" network to
//! recover.
//!
//! **Radix-Local** (restructured) first writes each processor's keys,
//! sorted by digit, into its *own* contiguous buffer region (local, coarse,
//! single-writer), and then each processor **gathers** its destination
//! range with contiguous remote *reads*. Converting the all-to-all from
//! scattered remote writes into coarse remote reads eliminates the
//! write-write false sharing and most of the diff traffic — the paper's
//! "writing to a local buffer first in Radix".

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{block_range, read_block, write_block, INT_OP};

/// Digit width in bits (radix 256).
const DIGIT_BITS: u32 = 8;
/// Radix (buckets per pass).
const R: usize = 1 << DIGIT_BITS;
/// Key width in bits: two passes of radix 256.
const KEY_BITS: u32 = 16;

/// Deterministic pseudo-random 16-bit key.
fn key_init(i: usize) -> u32 {
    let mut x = i as u64 + 0x9e3779b97f4a7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    (x as u32) & ((1 << KEY_BITS) - 1)
}

/// Which permutation-write strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixVariant {
    /// Original: scatter each key with an individual (word) write.
    Original,
    /// Restructured: buffer locally, write one contiguous run per digit.
    Local,
}

/// The radix-sort workload over `n` keys.
#[derive(Debug)]
pub struct Radix {
    n: usize,
    variant: RadixVariant,
    state: RefCell<Option<SharedVec<u32>>>,
}

impl Radix {
    /// Original Radix over `n` keys.
    pub fn original(n: usize) -> Self {
        Radix::new(n, RadixVariant::Original)
    }

    /// Restructured Radix-Local over `n` keys.
    pub fn local(n: usize) -> Self {
        Radix::new(n, RadixVariant::Local)
    }

    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, variant: RadixVariant) -> Self {
        assert!(n >= 2);
        Radix {
            n,
            variant,
            state: RefCell::new(None),
        }
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.n
    }
}

impl Workload for Radix {
    fn name(&self) -> String {
        match self.variant {
            RadixVariant::Original => format!("Radix(n={})", self.n),
            RadixVariant::Local => format!("Radix-Local(n={})", self.n),
        }
    }

    fn mem_bytes(&self) -> usize {
        // src + dst + digit-sorted staging buffer + per-proc histograms
        // (allow up to 64 procs).
        self.n * 12 + 64 * R * 4 + 192 * 1024
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let src = world.alloc_vec::<u32>(self.n);
        let dst = world.alloc_vec::<u32>(self.n);
        let buf = world.alloc_vec::<u32>(self.n);
        let hist = world.alloc_vec::<u32>(nprocs * R);
        let bar = world.alloc_barrier();
        for i in 0..self.n {
            src.set_direct(i, key_init(i));
        }
        *self.state.borrow_mut() = Some(src.clone());
        let n = self.n;
        let variant = self.variant;
        (0..nprocs)
            .map(|pid| {
                let src = src.clone();
                let dst = dst.clone();
                let buf = buf.clone();
                let hist = hist.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let np = p.nprocs();
                    let (k0, k1) = block_range(n, np, pid);
                    let mut arrays = [&src, &dst];
                    let passes = KEY_BITS / DIGIT_BITS;
                    for pass in 0..passes {
                        let shift = pass * DIGIT_BITS;
                        let (from, to) = (arrays[0], arrays[1]);
                        // Phase 1: local histogram of my segment.
                        let mine = read_block(p, from, k0, k1 - k0);
                        let mut counts = vec![0u32; R];
                        for &k in &mine {
                            counts[((k >> shift) as usize) & (R - 1)] += 1;
                        }
                        p.compute(mine.len() as u64 * INT_OP);
                        write_block(p, &hist, pid * R, &counts);
                        p.barrier(bar);
                        // Phase 2: read all histograms, compute my bases.
                        let mut all = Vec::with_capacity(np);
                        for q in 0..np {
                            all.push(read_block(p, &hist, q * R, R));
                        }
                        p.compute((np * R) as u64 * INT_OP);
                        let mut base = vec![0u32; R];
                        let mut running = 0u32;
                        for d in 0..R {
                            let mut mine_base = running;
                            for (q, h) in all.iter().enumerate() {
                                if q < pid {
                                    mine_base += h[d];
                                }
                                running += h[d];
                            }
                            base[d] = mine_base;
                        }
                        p.barrier(bar);
                        // Phase 3: permutation.
                        match variant {
                            RadixVariant::Original => {
                                // Scatter: one word write per key, mostly
                                // into remote processors' regions.
                                let mut next = base;
                                for &k in &mine {
                                    let d = ((k >> shift) as usize) & (R - 1);
                                    let pos = next[d] as usize;
                                    next[d] += 1;
                                    to.set(p, pos, k);
                                    p.compute(2 * INT_OP);
                                }
                            }
                            RadixVariant::Local => {
                                // 3a: digit-sort my keys into MY buffer
                                // region (local, coarse, single-writer).
                                let mut sorted = Vec::with_capacity(mine.len());
                                for d in 0..R {
                                    for &k in &mine {
                                        if ((k >> shift) as usize) & (R - 1) == d {
                                            sorted.push(k);
                                        }
                                    }
                                }
                                p.compute(mine.len() as u64 * 3 * INT_OP);
                                write_block(p, &buf, k0, &sorted);
                                p.barrier(bar);
                                // 3b: gather my destination range with
                                // contiguous remote reads. Bucket (q, d)
                                // lives at q's segment start plus the
                                // prefix of q's counts below d; globally
                                // the destination is ordered by (d, q).
                                let seg_start: Vec<usize> =
                                    (0..np).map(|q| block_range(n, np, q).0).collect();
                                let mut bucket_at: Vec<Vec<usize>> = vec![vec![0; R + 1]; np];
                                for q in 0..np {
                                    let mut acc = seg_start[q];
                                    for d in 0..R {
                                        bucket_at[q][d] = acc;
                                        acc += all[q][d] as usize;
                                    }
                                    bucket_at[q][R] = acc;
                                }
                                p.compute((np * R) as u64 * INT_OP);
                                let mut g = 0usize; // global output position
                                let mut out: Vec<u32> = Vec::with_capacity(k1 - k0);
                                for d in 0..R {
                                    for q in 0..np {
                                        let len = all[q][d] as usize;
                                        if len == 0 {
                                            continue;
                                        }
                                        let lo = g.max(k0);
                                        let hi = (g + len).min(k1);
                                        if lo < hi {
                                            let off = bucket_at[q][d] + (lo - g);
                                            let vals = read_block(p, &buf, off, hi - lo);
                                            out.extend_from_slice(&vals);
                                        }
                                        g += len;
                                    }
                                }
                                p.compute(out.len() as u64 * INT_OP);
                                write_block(p, to, k0, &out);
                            }
                        }
                        p.barrier(bar);
                        arrays.swap(0, 1);
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let src = guard.as_ref().ok_or("spawn() was never called")?;
        // Two passes: the sorted result lands back in `src`.
        let mut prev = 0u32;
        let mut got_sum = 0u64;
        for i in 0..self.n {
            let k = src.get_direct(i);
            if k < prev {
                return Err(format!("keys[{i}] = {k} < keys[{}] = {prev}", i - 1));
            }
            prev = k;
            got_sum += k as u64;
        }
        let want_sum: u64 = (0..self.n).map(|i| key_init(i) as u64).sum();
        if got_sum != want_sum {
            return Err(format!(
                "key multiset changed: sum {got_sum}, want {want_sum}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn sequential_radix_sorts() {
        for v in [RadixVariant::Original, RadixVariant::Local] {
            let w = Radix::new(512, v);
            let r = sequential_baseline(&w);
            assert!(r.verify_error.is_none(), "{v:?}: {:?}", r.verify_error);
        }
    }

    #[test]
    fn parallel_radix_sorts_under_hlrc_and_sc() {
        for v in [RadixVariant::Original, RadixVariant::Local] {
            for proto in [Protocol::Hlrc, Protocol::Sc] {
                let w = Radix::new(512, v);
                let r = SimBuilder::new(proto).procs(4).run(&w);
                assert!(
                    r.verify_error.is_none(),
                    "{v:?}/{proto:?}: {:?}",
                    r.verify_error
                );
            }
        }
    }

    #[test]
    fn local_variant_is_coarser() {
        // Needs a realistic size: with only a page or two of keys the
        // restructuring's constant overheads dominate.
        let orig = Radix::original(16384);
        let ro = SimBuilder::new(Protocol::Hlrc).procs(4).run(&orig);
        let rest = Radix::local(16384);
        let rr = SimBuilder::new(Protocol::Hlrc).procs(4).run(&rest);
        // The restructured version twins far fewer pages repeatedly and
        // sends fewer messages overall.
        assert!(
            rr.counters.messages < ro.counters.messages,
            "local {} vs original {}",
            rr.counters.messages,
            ro.counters.messages
        );
        // And it is faster on the base system (the paper's ~66% effect).
        assert!(
            rr.total_cycles < ro.total_cycles,
            "local {} should beat original {}",
            rr.total_cycles,
            ro.total_cycles
        );
    }

    #[test]
    fn keys_cover_the_space() {
        let ks: std::collections::HashSet<u32> = (0..4096).map(key_init).collect();
        assert!(ks.len() > 3000, "keys should be well spread");
        assert!(ks.iter().all(|&k| k < 1 << KEY_BITS));
    }
}
