//! LU-Contiguous — the SPLASH-2 blocked dense LU factorization with
//! block-contiguous allocation.
//!
//! The n x n matrix is stored as B x B blocks, each contiguous in memory,
//! owned by processors in a 2-D scatter. Each elimination step factorizes
//! the diagonal block, updates the perimeter (block row/column), then the
//! interior, with barriers between phases. Like FFT, this is the paper's
//! coarse-grained **single-writer** case: every block has one writer, remote
//! reads are 2 KB block transfers, and there is almost no lock activity.
//!
//! No pivoting: the generated matrix is made diagonally dominant, which is
//! also what SPLASH-2 LU assumes.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{read_block, write_block, FLOP};

/// Deterministic matrix entry (regenerable by verification).
fn a_init(n: usize, i: usize, j: usize) -> f64 {
    let h = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503)) & 0xffff;
    let frac = h as f64 / 65536.0;
    if i == j {
        n as f64 + frac
    } else {
        frac - 0.5
    }
}

/// The LU workload: `n x n` matrix in `b x b` blocks.
#[derive(Debug)]
pub struct Lu {
    n: usize,
    b: usize,
    nb: usize,
    data: RefCell<Option<SharedVec<f64>>>,
}

impl Lu {
    /// Creates an `n x n` LU factorization with `b x b` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `b` divides `n` and both are at least 2.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(
            n >= 2 && b >= 2 && n.is_multiple_of(b),
            "block size must divide n"
        );
        Lu {
            n,
            b,
            nb: n / b,
            data: RefCell::new(None),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn block_base(&self, bi: usize, bj: usize) -> usize {
        (bi * self.nb + bj) * self.b * self.b
    }
}

/// Owner of block `(bi, bj)` on a `pr x pc` processor grid.
fn owner(bi: usize, bj: usize, pr: usize, pc: usize) -> usize {
    (bi % pr) * pc + (bj % pc)
}

/// Near-square factorization of the processor count.
fn proc_grid(nprocs: usize) -> (usize, usize) {
    let mut pr = (nprocs as f64).sqrt() as usize;
    while !nprocs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr, nprocs / pr)
}

/// In-place LU of the diagonal block (unit lower, upper in place).
fn lu0(a: &mut [f64], b: usize) {
    for k in 0..b {
        let pivot = a[k * b + k];
        for i in k + 1..b {
            a[i * b + k] /= pivot;
            let l = a[i * b + k];
            for j in k + 1..b {
                a[i * b + j] -= l * a[k * b + j];
            }
        }
    }
}

/// `x := x * U^{-1}` for a sub-diagonal block (right-solve with the upper
/// triangle of `diag`).
fn bdiv(x: &mut [f64], diag: &[f64], b: usize) {
    for r in 0..b {
        for j in 0..b {
            let mut s = x[r * b + j];
            for t in 0..j {
                s -= x[r * b + t] * diag[t * b + j];
            }
            x[r * b + j] = s / diag[j * b + j];
        }
    }
}

/// `x := L^{-1} * x` for a right-of-diagonal block (left-solve with the
/// unit-lower triangle of `diag`).
fn bmodd(x: &mut [f64], diag: &[f64], b: usize) {
    for c in 0..b {
        for i in 0..b {
            let mut s = x[i * b + c];
            for t in 0..i {
                s -= diag[i * b + t] * x[t * b + c];
            }
            x[i * b + c] = s;
        }
    }
}

/// `x := x - l * u` (interior update).
fn bmod(x: &mut [f64], l: &[f64], u: &[f64], b: usize) {
    for i in 0..b {
        for j in 0..b {
            let mut s = 0.0;
            for t in 0..b {
                s += l[i * b + t] * u[t * b + j];
            }
            x[i * b + j] -= s;
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> String {
        format!("LU(n={},b={})", self.n, self.b)
    }

    fn mem_bytes(&self) -> usize {
        self.n * self.n * 8 + 64 * 1024
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let a = world.alloc_vec::<f64>(self.n * self.n);
        let bar = world.alloc_barrier();
        // Block-contiguous initialization.
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                let base = self.block_base(bi, bj);
                for r in 0..self.b {
                    for c in 0..self.b {
                        a.set_direct(
                            base + r * self.b + c,
                            a_init(self.n, bi * self.b + r, bj * self.b + c),
                        );
                    }
                }
            }
        }
        *self.data.borrow_mut() = Some(a.clone());
        let (b, nb) = (self.b, self.nb);
        let (pr, pc) = proc_grid(nprocs);
        let bsz = b * b;
        let flops_block = (b * b * b) as u64 * FLOP;
        (0..nprocs)
            .map(|pid| {
                let a = a.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let base_of = |bi: usize, bj: usize| (bi * nb + bj) * bsz;
                    for k in 0..nb {
                        // Phase 1: factor the diagonal block.
                        if owner(k, k, pr, pc) == pid {
                            let mut d = read_block(p, &a, base_of(k, k), bsz);
                            lu0(&mut d, b);
                            p.compute(2 * flops_block / 3);
                            write_block(p, &a, base_of(k, k), &d);
                        }
                        p.barrier(bar);
                        // Phase 2: perimeter updates.
                        let mut diag: Option<Vec<f64>> = None;
                        for i in k + 1..nb {
                            if owner(i, k, pr, pc) == pid {
                                if diag.is_none() {
                                    diag = Some(read_block(p, &a, base_of(k, k), bsz));
                                }
                                let mut x = read_block(p, &a, base_of(i, k), bsz);
                                bdiv(&mut x, diag.as_ref().expect("diag loaded"), b);
                                p.compute(flops_block);
                                write_block(p, &a, base_of(i, k), &x);
                            }
                            if owner(k, i, pr, pc) == pid {
                                if diag.is_none() {
                                    diag = Some(read_block(p, &a, base_of(k, k), bsz));
                                }
                                let mut x = read_block(p, &a, base_of(k, i), bsz);
                                bmodd(&mut x, diag.as_ref().expect("diag loaded"), b);
                                p.compute(flops_block);
                                write_block(p, &a, base_of(k, i), &x);
                            }
                        }
                        p.barrier(bar);
                        // Phase 3: interior updates.
                        let mut lcache: Option<(usize, Vec<f64>)> = None;
                        for i in k + 1..nb {
                            for j in k + 1..nb {
                                if owner(i, j, pr, pc) != pid {
                                    continue;
                                }
                                // Cache the row's L block across j.
                                if lcache.as_ref().map(|(li, _)| *li) != Some(i) {
                                    lcache = Some((i, read_block(p, &a, base_of(i, k), bsz)));
                                }
                                let u = read_block(p, &a, base_of(k, j), bsz);
                                let mut x = read_block(p, &a, base_of(i, j), bsz);
                                bmod(&mut x, &lcache.as_ref().expect("L cached").1, &u, b);
                                p.compute(2 * flops_block);
                                write_block(p, &a, base_of(i, j), &x);
                            }
                        }
                        p.barrier(bar);
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.data.borrow();
        let a = guard.as_ref().ok_or("spawn() was never called")?;
        let n = self.n;
        // Read the factored matrix back into dense element order.
        let mut f = vec![0.0f64; n * n];
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                let base = self.block_base(bi, bj);
                for r in 0..self.b {
                    for c in 0..self.b {
                        f[(bi * self.b + r) * n + bj * self.b + c] =
                            a.get_direct(base + r * self.b + c);
                    }
                }
            }
        }
        // Check L*U == A on a deterministic sample of entries (full check
        // is O(n^3); the sample covers every block row/column).
        let step = (self.b / 2).max(1);
        let idx: Vec<usize> = (0..n).step_by(step).collect();
        for &i in &idx {
            for &j in &idx {
                let mut s = 0.0;
                for t in 0..n {
                    let l = if t < i {
                        f[i * n + t]
                    } else if t == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if t <= j { f[t * n + j] } else { 0.0 };
                    s += l * u;
                }
                let want = a_init(n, i, j);
                if (s - want).abs() > 1e-6 * n as f64 {
                    return Err(format!("(L*U)[{i}][{j}] = {s}, want {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn kernels_factor_a_small_matrix() {
        // Dense LU via lu0 on a whole 4x4 (b = n) and check L*U = A.
        let n = 4;
        let a: Vec<f64> = (0..16).map(|k| a_init(n, k / 4, k % 4)).collect();
        let mut m = a.clone();
        lu0(&mut m, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for t in 0..n {
                    let l = if t < i {
                        m[i * n + t]
                    } else if t == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if t <= j { m[t * n + j] } else { 0.0 };
                    s += l * u;
                }
                assert!((s - a[i * n + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blocked_kernels_consistent_with_dense() {
        // Factor an 8x8 with b=4 blocks using the block kernels directly
        // and compare against dense lu0.
        let n = 8;
        let b = 4;
        let mut dense: Vec<f64> = (0..n * n).map(|k| a_init(n, k / n, k % n)).collect();
        let orig = dense.clone();
        lu0(&mut dense, n);
        // Blocked path.
        let get = |m: &Vec<f64>, bi: usize, bj: usize| -> Vec<f64> {
            let mut out = vec![0.0; b * b];
            for r in 0..b {
                for c in 0..b {
                    out[r * b + c] = m[(bi * b + r) * n + bj * b + c];
                }
            }
            out
        };
        let put = |m: &mut Vec<f64>, bi: usize, bj: usize, blk: &[f64]| {
            for r in 0..b {
                for c in 0..b {
                    m[(bi * b + r) * n + bj * b + c] = blk[r * b + c];
                }
            }
        };
        let mut m = orig.clone();
        for k in 0..2 {
            let mut d = get(&m, k, k);
            lu0(&mut d, b);
            put(&mut m, k, k, &d);
            for i in k + 1..2 {
                let mut x = get(&m, i, k);
                bdiv(&mut x, &d, b);
                put(&mut m, i, k, &x);
                let mut y = get(&m, k, i);
                bmodd(&mut y, &d, b);
                put(&mut m, k, i, &y);
            }
            for i in k + 1..2 {
                for j in k + 1..2 {
                    let l = get(&m, i, k);
                    let u = get(&m, k, j);
                    let mut x = get(&m, i, j);
                    bmod(&mut x, &l, &u, b);
                    put(&mut m, i, j, &x);
                }
            }
        }
        for k in 0..n * n {
            assert!(
                (m[k] - dense[k]).abs() < 1e-9,
                "element {k}: blocked {} vs dense {}",
                m[k],
                dense[k]
            );
        }
    }

    #[test]
    fn sequential_lu_verifies() {
        let w = Lu::new(32, 8);
        let r = sequential_baseline(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn parallel_lu_verifies_under_hlrc_and_sc() {
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            let w = Lu::new(32, 8);
            let r = SimBuilder::new(proto).procs(4).sc_block(512).run(&w);
            assert!(r.verify_error.is_none(), "{proto:?}: {:?}", r.verify_error);
            assert!(r.counters.fetches > 0);
        }
    }

    #[test]
    fn proc_grid_is_exact() {
        assert_eq!(proc_grid(16), (4, 4));
        assert_eq!(proc_grid(8), (2, 4));
        assert_eq!(proc_grid(1), (1, 1));
        assert_eq!(proc_grid(7), (1, 7));
    }
}
