//! FFT — the SPLASH-2 radix-√n six-step 1-D FFT.
//!
//! The n-point dataset is viewed as a √n x √n complex matrix; each
//! processor owns a contiguous band of rows. The computation alternates
//! row-local FFTs with three all-to-all **transposes**, which are the only
//! communication phases: coarse-grained, single-writer, barrier-separated —
//! exactly the behaviour the paper relies on when it calls FFT a
//! "coarse-grained-access, single-writer application" with little protocol
//! activity but real bandwidth demands.

use std::cell::RefCell;
use std::f64::consts::PI;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{
    block_range, fft_cycles, fft_in_place, read_block, write_block, Cx, COPY, FLOP,
};

/// The FFT workload. `n` complex points (a power of four so the matrix is
/// square).
#[derive(Debug)]
pub struct Fft {
    n: usize,
    m: usize,
    result: RefCell<Option<SharedVec<f64>>>,
}

/// Spectral spike used for initialization/verification: the input is a sum
/// of two complex exponentials, so the spectrum is known analytically.
const K0: usize = 5;
const A0: Cx = Cx { re: 1.0, im: 0.5 };
const A1: Cx = Cx { re: -0.75, im: 2.0 };

impl Fft {
    /// Creates an `n`-point FFT.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of four (so √n is a power of two) and
    /// at least 16.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 16 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
            "n must be a power of four >= 16 (square matrix form)"
        );
        let m = 1usize << (n.trailing_zeros() / 2);
        Fft {
            n,
            m,
            result: RefCell::new(None),
        }
    }

    /// Number of points.
    pub fn points(&self) -> usize {
        self.n
    }

    fn second_spike(&self) -> usize {
        self.n / 3 + 1
    }

    fn input(&self, j: usize) -> Cx {
        let n = self.n as f64;
        let w0 = Cx::cis(2.0 * PI * (K0 * j % self.n) as f64 / n);
        let w1 = Cx::cis(2.0 * PI * (self.second_spike() * j % self.n) as f64 / n);
        A0 * w0 + A1 * w1
    }
}

/// One processor's transpose: `dst` rows `r0..r1` receive `src` columns
/// `r0..r1` (reads grouped into the contiguous per-source-row segments the
/// blocked SPLASH-2 transpose uses).
fn transpose_band(
    p: &Proc<'_>,
    src: &SharedVec<f64>,
    dst: &SharedVec<f64>,
    m: usize,
    r0: usize,
    r1: usize,
) {
    let width = r1 - r0;
    if width == 0 {
        return;
    }
    let mut bands: Vec<Vec<Cx>> = vec![Vec::with_capacity(m); width];
    for j in 0..m {
        let seg = read_block(p, src, (j * m + r0) * 2, width * 2);
        p.compute(width as u64 * COPY);
        for t in 0..width {
            bands[t].push(Cx::new(seg[2 * t], seg[2 * t + 1]));
        }
    }
    for (t, r) in (r0..r1).enumerate() {
        let flat: Vec<f64> = bands[t].iter().flat_map(|c| [c.re, c.im]).collect();
        write_block(p, dst, r * m * 2, &flat);
    }
}

/// One processor's row-FFT pass over its band, optionally applying the
/// six-step twiddle factors `W_n^{j2*k1}` after the transform.
fn fft_band(
    p: &Proc<'_>,
    v: &SharedVec<f64>,
    n: usize,
    m: usize,
    r0: usize,
    r1: usize,
    twiddle: bool,
) {
    for r in r0..r1 {
        let seg = read_block(p, v, r * m * 2, m * 2);
        let mut row: Vec<Cx> = (0..m)
            .map(|i| Cx::new(seg[2 * i], seg[2 * i + 1]))
            .collect();
        fft_in_place(&mut row, false);
        p.compute(fft_cycles(m));
        if twiddle {
            for (k1, c) in row.iter_mut().enumerate() {
                let w = Cx::cis(-2.0 * PI * ((r * k1) % n) as f64 / n as f64);
                *c = *c * w;
            }
            p.compute(m as u64 * 6 * FLOP);
        }
        let flat: Vec<f64> = row.iter().flat_map(|c| [c.re, c.im]).collect();
        write_block(p, v, r * m * 2, &flat);
    }
}

impl Workload for Fft {
    fn name(&self) -> String {
        format!("FFT(n={})", self.n)
    }

    fn mem_bytes(&self) -> usize {
        // data + scratch (+ page slack for alignment).
        self.n * 16 * 2 + 64 * 1024
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        assert!(
            nprocs <= self.m,
            "need at least one matrix row per processor"
        );
        let data = world.alloc_vec::<f64>(self.n * 2);
        let scratch = world.alloc_vec::<f64>(self.n * 2);
        let bar = world.alloc_barrier();
        for j in 0..self.n {
            let c = self.input(j);
            data.set_direct(2 * j, c.re);
            data.set_direct(2 * j + 1, c.im);
        }
        *self.result.borrow_mut() = Some(scratch.clone());
        let (n, m) = (self.n, self.m);
        (0..nprocs)
            .map(|pid| {
                let data = data.clone();
                let scratch = scratch.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let (r0, r1) = block_range(m, p.nprocs(), pid);
                    // Step 1: transpose data -> scratch.
                    transpose_band(p, &data, &scratch, m, r0, r1);
                    p.barrier(bar);
                    // Step 2+3: row FFTs on scratch with twiddles.
                    fft_band(p, &scratch, n, m, r0, r1, true);
                    p.barrier(bar);
                    // Step 4: transpose scratch -> data.
                    transpose_band(p, &scratch, &data, m, r0, r1);
                    p.barrier(bar);
                    // Step 5: row FFTs on data.
                    fft_band(p, &data, n, m, r0, r1, false);
                    p.barrier(bar);
                    // Step 6: final transpose data -> scratch (natural order).
                    transpose_band(p, &data, &scratch, m, r0, r1);
                    p.barrier(bar);
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.result.borrow();
        let out = guard.as_ref().ok_or("spawn() was never called")?;
        let n = self.n as f64;
        let read = |k: usize| Cx::new(out.get_direct(2 * k), out.get_direct(2 * k + 1));
        let close = |got: Cx, want: Cx, k: usize| -> Result<(), String> {
            let err = (got - want).norm2().sqrt();
            if err > 1e-6 * n {
                Err(format!(
                    "bin {k}: got ({:.3},{:.3}), want ({:.3},{:.3})",
                    got.re, got.im, want.re, want.im
                ))
            } else {
                Ok(())
            }
        };
        // Spikes at K0 and second_spike with amplitude a*n; near-zero
        // elsewhere.
        close(read(K0), Cx::new(A0.re * n, A0.im * n), K0)?;
        let k1 = self.second_spike();
        close(read(k1), Cx::new(A1.re * n, A1.im * n), k1)?;
        for probe in [0usize, 1, self.n / 2, self.n - 1] {
            if probe != K0 && probe != k1 {
                close(read(probe), Cx::default(), probe)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn sequential_fft_verifies() {
        let w = Fft::new(256);
        let r = sequential_baseline(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn parallel_fft_verifies_under_hlrc() {
        let w = Fft::new(256);
        let r = SimBuilder::new(Protocol::Hlrc).procs(4).run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
        assert_eq!(r.counters.barriers, 5);
        assert!(r.counters.fetches > 0, "transposes must communicate");
    }

    #[test]
    fn parallel_fft_verifies_under_sc_coarse() {
        let w = Fft::new(256);
        let r = SimBuilder::new(Protocol::Sc)
            .procs(4)
            .sc_block(4096)
            .run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn parallel_beats_sequential_on_ideal() {
        let w = Fft::new(1024);
        let seq = sequential_baseline(&w).total_cycles;
        let w = Fft::new(1024);
        let par = SimBuilder::new(Protocol::Ideal)
            .procs(4)
            .run(&w)
            .total_cycles;
        assert!(
            (seq as f64 / par as f64) > 2.0,
            "ideal speedup too low: {seq}/{par}"
        );
    }

    #[test]
    #[should_panic(expected = "power of four")]
    fn rejects_non_square_sizes() {
        let _ = Fft::new(512);
    }
}
