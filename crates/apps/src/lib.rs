//! The application suite of the `ssm` reproduction: Rust reimplementations
//! of the paper's SPLASH-2(-derived) workloads, original **and**
//! restructured variants, written against the `ssm-proto` programming
//! model.
//!
//! | module | application | restructured variant |
//! |---|---|---|
//! | [`fft`] | radix-√n six-step FFT | — |
//! | [`lu`] | blocked dense LU (contiguous blocks) | — |
//! | [`ocean`] | red-black SOR grid solver | Ocean-rowwise |
//! | [`radix`] | parallel radix sort | Radix-Local |
//! | [`barnes`] | Barnes-Hut N-body | Barnes-Spatial |
//! | [`raytrace`] | ray tracer with task stealing | — |
//! | [`volrend`] | volume renderer with task stealing | Volrend-restructured |
//! | [`water_nsq`] | n² pairwise molecular dynamics | — |
//! | [`water_sp`] | cell-list molecular dynamics | — |
//!
//! Every workload computes a real, self-verified result (see each module's
//! `verify`); sizes are constructor parameters, with the paper-scaled
//! defaults listed in [`catalog`].

pub mod barnes;
pub mod catalog;
pub mod common;
pub mod fft;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod raytrace;
pub mod taskq;
pub mod volrend;
pub mod water_nsq;
pub mod water_sp;

pub use ssm_proto::Workload;
