//! Distributed task queues with stealing — the work-distribution substrate
//! of Raytrace and Volrend.
//!
//! One queue per processor lives in shared memory (page-aligned so each
//! queue's header and items start on the owner's pages), guarded by one
//! lock per queue. A processor pops from the *head* of its own queue and,
//! when empty, steals from the *tail* of the other queues. Stealing is
//! intentionally expensive under software shared memory — each steal is a
//! lock acquire plus remote reads and writes — which is exactly the effect
//! the paper discusses for Volrend ("task stealing … is now very expensive
//! due to synchronization and protocol activity").

use ssm_proto::{LockId, Proc, SharedVec, World};

use crate::common::INT_OP;

/// Per-queue header+item layout inside one `u32` stride:
/// `[head, tail, item0, item1, …]`.
const HDR: usize = 2;

/// A set of per-processor task queues in shared memory.
#[derive(Debug, Clone)]
pub struct TaskQueues {
    store: SharedVec<u32>,
    locks: Vec<LockId>,
    stride: usize,
    nprocs: usize,
}

impl TaskQueues {
    /// Allocates queues for `nprocs` processors, each holding up to `cap`
    /// tasks.
    pub fn alloc(world: &mut World, nprocs: usize, cap: usize) -> Self {
        // Pad the stride to a page (1024 u32) so queues do not share pages.
        let stride = (HDR + cap).next_multiple_of(1024);
        let store = world.alloc_vec::<u32>(stride * nprocs);
        let locks = world.alloc_locks(nprocs);
        TaskQueues {
            store,
            locks,
            stride,
            nprocs,
        }
    }

    /// Untimed initial assignment: appends `task` to `pid`'s queue (used
    /// during workload setup, like SPLASH-2's static initial partitions).
    pub fn seed(&self, pid: usize, task: u32) {
        let base = pid * self.stride;
        let tail = self.store.get_direct(base + 1) as usize;
        self.store.set_direct(base + HDR + tail, task);
        self.store.set_direct(base + 1, tail as u32 + 1);
    }

    /// Pops a task for processor `p`: its own queue first (from the head),
    /// then stealing from the busiest end (tail) of the other queues in
    /// round-robin order. Returns `(task, stolen)` or `None` when every
    /// queue was observed empty.
    pub fn pop(&self, p: &Proc<'_>) -> Option<(u32, bool)> {
        let me = p.pid();
        for k in 0..self.nprocs {
            let victim = (me + k) % self.nprocs;
            let base = victim * self.stride;
            p.lock(self.locks[victim]);
            // Head and tail live together: one fine-grained read.
            self.store.touch_range_read(p, base, 2);
            let head = self.store.get_direct(base) as usize;
            let tail = self.store.get_direct(base + 1) as usize;
            let got = if head < tail {
                if victim == me {
                    // Own queue: take from the head.
                    self.store.touch_range_read(p, base + HDR + head, 1);
                    let t = self.store.get_direct(base + HDR + head);
                    self.store.touch_range_write(p, base, 1);
                    self.store.set_direct(base, head as u32 + 1);
                    Some((t, false))
                } else {
                    // Steal from the tail.
                    self.store.touch_range_read(p, base + HDR + tail - 1, 1);
                    let t = self.store.get_direct(base + HDR + tail - 1);
                    self.store.touch_range_write(p, base + 1, 1);
                    self.store.set_direct(base + 1, tail as u32 - 1);
                    Some((t, true))
                }
            } else {
                None
            };
            p.compute(4 * INT_OP);
            p.unlock(self.locks[victim]);
            if got.is_some() {
                return got;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{Protocol, SimBuilder};
    use ssm_proto::{ThreadBody, Workload};
    use std::cell::RefCell;
    use std::collections::HashSet;

    /// All processors drain the queues; every task must be executed exactly
    /// once, across own-pops and steals.
    struct Drain {
        tasks_per_proc: usize,
        done: RefCell<Option<SharedVec<u32>>>,
    }

    impl Workload for Drain {
        fn name(&self) -> String {
            "drain".into()
        }
        fn mem_bytes(&self) -> usize {
            1 << 20
        }
        fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
            let q = TaskQueues::alloc(world, nprocs, self.tasks_per_proc * nprocs);
            let total = self.tasks_per_proc * nprocs;
            let done = world.alloc_vec::<u32>(total);
            // Imbalanced seed: everything starts on P0.
            for t in 0..total {
                q.seed(0, t as u32);
            }
            *self.done.borrow_mut() = Some(done.clone());
            (0..nprocs)
                .map(|_| {
                    let q = q.clone();
                    let done = done.clone();
                    let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                        while let Some((t, _stolen)) = q.pop(p) {
                            p.compute(500);
                            done.set(p, t as usize, 1);
                        }
                    });
                    body
                })
                .collect()
        }
        fn verify(&self) -> Result<(), String> {
            let guard = self.done.borrow();
            let done = guard.as_ref().ok_or("not spawned")?;
            let missing: Vec<usize> = (0..done.len())
                .filter(|&i| done.get_direct(i) != 1)
                .collect();
            if missing.is_empty() {
                Ok(())
            } else {
                Err(format!("tasks never executed: {missing:?}"))
            }
        }
    }

    #[test]
    fn all_tasks_execute_exactly_once_with_stealing() {
        let w = Drain {
            tasks_per_proc: 8,
            done: RefCell::new(None),
        };
        let r = SimBuilder::new(Protocol::Hlrc).procs(4).run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
        // Stealing implies lock traffic well beyond one acquire per task.
        assert!(r.counters.lock_acquires >= 32);
    }

    #[test]
    fn seed_and_headers_are_consistent() {
        let mut world = World::new(1 << 20);
        let q = TaskQueues::alloc(&mut world, 2, 16);
        q.seed(1, 7);
        q.seed(1, 9);
        let base = q.stride;
        assert_eq!(q.store.get_direct(base), 0); // head
        assert_eq!(q.store.get_direct(base + 1), 2); // tail
        assert_eq!(q.store.get_direct(base + HDR), 7);
        assert_eq!(q.store.get_direct(base + HDR + 1), 9);
    }

    #[test]
    fn queues_do_not_share_pages() {
        let mut world = World::new(1 << 20);
        let q = TaskQueues::alloc(&mut world, 4, 3);
        let a0 = q.store.addr_of(0);
        let a1 = q.store.addr_of(q.stride);
        assert_ne!(a0 / 4096, a1 / 4096);
    }

    #[test]
    fn tasks_unique_even_under_ideal_concurrency() {
        let w = Drain {
            tasks_per_proc: 16,
            done: RefCell::new(None),
        };
        let r = SimBuilder::new(Protocol::Ideal).procs(8).run(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
        let _ = HashSet::<u32>::new();
    }
}
