//! Barnes — the Barnes-Hut hierarchical N-body application, in the two
//! versions the paper studies:
//!
//! * **Barnes-original** (SPLASH-2 structure): all processors insert their
//!   bodies into one shared octree concurrently, taking a **per-cell lock**
//!   around every examine/modify step of the descent. The tree-building
//!   phase is the paper's canonical example of fine-grained locking that
//!   cripples SVM ("the many critical sections in its tree-building phase
//!   each incur not one but several page faults", §4.4).
//! * **Barnes-Spatial** (restructured): space is pre-split into the eight
//!   top-level octants; each processor builds the subtrees of the octants
//!   assigned to it **without any locks**, at the price of load imbalance
//!   (the clustered body distribution concentrates work in a few octants)
//!   — the paper's "reducing locking … at perhaps some cost in load
//!   balance" (§4.2).
//!
//! Both variants then run the same center-of-mass and force-computation
//! phases (irregular fine-grained reads of tree cells) and integrate.
//! Verification compares the tree-computed accelerations of every body
//! against a direct O(n²) sum — the Barnes-Hut approximation must land
//! within the θ-controlled error bound — and checks that every body is in
//! the final tree exactly once.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{block_range, read_block, write_block, FLOP, INT_OP};

/// Opening criterion (cell used whole if `size/dist < THETA`).
const THETA: f64 = 0.5;
/// Gravitational softening.
const SOFT: f64 = 1e-4;
/// Integration step.
const DT: f64 = 0.03;

/// Child-slot encoding in the shared tree: empty, a cell, or a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Cell(usize),
    Body(usize),
}

fn decode(v: i64) -> Slot {
    match v {
        0 => Slot::Empty,
        c if c > 0 => Slot::Cell((c - 1) as usize),
        b => Slot::Body((-b - 1) as usize),
    }
}

fn encode(s: Slot) -> i64 {
    match s {
        Slot::Empty => 0,
        Slot::Cell(c) => c as i64 + 1,
        Slot::Body(b) => -(b as i64) - 1,
    }
}

/// Deterministic clustered ("Plummer-like") body position.
fn body_pos(i: usize) -> [f64; 3] {
    let h = |k: usize| (((i * 3 + k).wrapping_mul(2654435761) >> 4) & 0xfffff) as f64 / 1048576.0;
    let u = h(0);
    let radius = 0.45 * u * u.sqrt(); // clustered toward the centre
    let theta = h(1) * std::f64::consts::PI;
    let phi = h(2) * 2.0 * std::f64::consts::PI;
    [
        (0.5 + radius * theta.sin() * phi.cos()).clamp(0.02, 0.98),
        (0.5 + radius * theta.sin() * phi.sin()).clamp(0.02, 0.98),
        (0.5 + radius * theta.cos()).clamp(0.02, 0.98),
    ]
}

/// Octant of `x` within a cell centred at `c`.
fn octant(x: &[f64], c: &[f64]) -> usize {
    (usize::from(x[0] >= c[0]) << 2) | (usize::from(x[1] >= c[1]) << 1) | usize::from(x[2] >= c[2])
}

/// Which tree-build strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarnesVariant {
    /// Shared concurrent build with per-cell locks.
    Original,
    /// Lock-free per-octant build (restructured).
    Spatial,
}

/// The Barnes-Hut workload: `n` bodies, `steps` timesteps.
#[derive(Debug)]
pub struct Barnes {
    n: usize,
    steps: usize,
    variant: BarnesVariant,
    state: RefCell<Option<Handles>>,
}

#[derive(Debug, Clone)]
struct Handles {
    pos: SharedVec<f64>,
    acc: SharedVec<f64>,
    child: SharedVec<i64>,
}

impl Barnes {
    /// Barnes-original.
    pub fn original(n: usize, steps: usize) -> Self {
        Barnes::new(n, steps, BarnesVariant::Original)
    }

    /// Barnes-Spatial (restructured).
    pub fn spatial(n: usize, steps: usize) -> Self {
        Barnes::new(n, steps, BarnesVariant::Spatial)
    }

    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `steps == 0`.
    pub fn new(n: usize, steps: usize, variant: BarnesVariant) -> Self {
        assert!(n >= 8 && steps > 0);
        Barnes {
            n,
            steps,
            variant,
            state: RefCell::new(None),
        }
    }

    /// Body count.
    pub fn bodies(&self) -> usize {
        self.n
    }

    /// Prints per-body force-error diagnostics (debugging aid).
    #[doc(hidden)]
    pub fn debug_errors(&self) {
        let guard = self.state.borrow();
        let h = guard.as_ref().expect("spawned");
        let n = self.n;
        let body_mass = 1.0 / n as f64;
        let mut rows: Vec<(f64, f64, usize)> = Vec::new();
        for i in 0..n {
            let x = [
                h.pos.get_direct(i * 3),
                h.pos.get_direct(i * 3 + 1),
                h.pos.get_direct(i * 3 + 2),
            ];
            let mut direct = [0.0f64; 3];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let y = [
                    h.pos.get_direct(j * 3),
                    h.pos.get_direct(j * 3 + 1),
                    h.pos.get_direct(j * 3 + 2),
                ];
                add_grav(&mut direct, &x, &y, body_mass);
            }
            let got = [
                h.acc.get_direct(i * 3),
                h.acc.get_direct(i * 3 + 1),
                h.acc.get_direct(i * 3 + 2),
            ];
            let dn = (direct[0].powi(2) + direct[1].powi(2) + direct[2].powi(2)).sqrt();
            let en = ((got[0] - direct[0]).powi(2)
                + (got[1] - direct[1]).powi(2)
                + (got[2] - direct[2]).powi(2))
            .sqrt();
            rows.push((en / dn.max(1e-9), dn, i));
        }
        rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let mean_f: f64 = rows.iter().map(|r| r.1).sum::<f64>() / n as f64;
        println!("mean |direct| = {mean_f:.4}");
        for r in rows.iter().take(5) {
            println!("body {}: rel={:.4} |direct|={:.4}", r.2, r.0, r.1);
        }
    }

    fn cap(&self) -> usize {
        8 * self.n
    }
}

/// All the shared-tree plumbing one thread needs.
struct Tree {
    child: SharedVec<i64>,
    center: SharedVec<f64>,
    half: SharedVec<f64>,
    com: SharedVec<f64>,
    cmass: SharedVec<f64>,
}

impl Tree {
    /// Creates a cell `nc` under (`parent_center`, `parent_half`) at
    /// `octant` (timed writes by `p`).
    fn create_cell(
        &self,
        p: &Proc<'_>,
        nc: usize,
        parent_center: &[f64; 3],
        parent_half: f64,
        oct: usize,
    ) -> ([f64; 3], f64) {
        let h = parent_half / 2.0;
        let c = [
            parent_center[0] + if oct & 4 != 0 { h } else { -h },
            parent_center[1] + if oct & 2 != 0 { h } else { -h },
            parent_center[2] + if oct & 1 != 0 { h } else { -h },
        ];
        write_block(p, &self.center, nc * 3, &c);
        self.half.touch_range_write(p, nc, 1);
        self.half.set_direct(nc, h);
        write_block(p, &self.child, nc * 8, &[0i64; 8]);
        p.compute(8 * INT_OP);
        (c, h)
    }

    fn read_cell_geom(&self, p: &Proc<'_>, cell: usize) -> ([f64; 3], f64) {
        let c = read_block(p, &self.center, cell * 3, 3);
        self.half.touch_range_read(p, cell, 1);
        let h = self.half.get_direct(cell);
        ([c[0], c[1], c[2]], h)
    }

    /// Inserts body `b` at `x` into the subtree rooted at `root`,
    /// allocating cells from `pool` (a `(next, end)` cursor). `lock_cells`
    /// selects the Barnes-original per-cell locking discipline.
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &self,
        p: &Proc<'_>,
        pos: &SharedVec<f64>,
        locks: &[ssm_proto::LockId],
        b: usize,
        x: [f64; 3],
        root: usize,
        pool: &mut (usize, usize),
        lock_cells: bool,
    ) {
        let mut cur = root;
        loop {
            if lock_cells {
                p.lock(locks[cur]);
            }
            let (c, h) = self.read_cell_geom(p, cur);
            let oct = octant(&x, &c);
            p.compute(6 * INT_OP);
            self.child.touch_range_read(p, cur * 8 + oct, 1);
            match decode(self.child.get_direct(cur * 8 + oct)) {
                Slot::Empty => {
                    self.child.touch_range_write(p, cur * 8 + oct, 1);
                    self.child.set_direct(cur * 8 + oct, encode(Slot::Body(b)));
                    if lock_cells {
                        p.unlock(locks[cur]);
                    }
                    return;
                }
                Slot::Cell(next) => {
                    if lock_cells {
                        p.unlock(locks[cur]);
                    }
                    cur = next;
                }
                Slot::Body(b2) => {
                    // Split: create a child cell holding b2, publish it,
                    // then keep descending with b.
                    let nc = pool.0;
                    assert!(nc < pool.1, "cell pool exhausted");
                    pool.0 += 1;
                    let (ncenter, _nh) = self.create_cell(p, nc, &c, h, oct);
                    let b2pos = read_block(p, pos, b2 * 3, 3);
                    let o2 = octant(&b2pos, &ncenter);
                    self.child.touch_range_write(p, nc * 8 + o2, 1);
                    self.child.set_direct(nc * 8 + o2, encode(Slot::Body(b2)));
                    self.child.touch_range_write(p, cur * 8 + oct, 1);
                    self.child.set_direct(cur * 8 + oct, encode(Slot::Cell(nc)));
                    if lock_cells {
                        p.unlock(locks[cur]);
                    }
                    cur = nc;
                }
            }
        }
    }

    /// Post-order center-of-mass computation for the subtree at `cell`.
    /// Returns `(mass, weighted position)`.
    fn compute_com(
        &self,
        p: &Proc<'_>,
        pos: &SharedVec<f64>,
        body_mass: f64,
        cell: usize,
    ) -> (f64, [f64; 3]) {
        let kids = read_block(p, &self.child, cell * 8, 8);
        let mut mass = 0.0;
        let mut w = [0.0f64; 3];
        for &k in &kids {
            match decode(k) {
                Slot::Empty => {}
                Slot::Body(b) => {
                    let bp = read_block(p, pos, b * 3, 3);
                    mass += body_mass;
                    for c in 0..3 {
                        w[c] += body_mass * bp[c];
                    }
                }
                Slot::Cell(sub) => {
                    let (m, sw) = self.compute_com(p, pos, body_mass, sub);
                    mass += m;
                    for c in 0..3 {
                        w[c] += sw[c];
                    }
                }
            }
            p.compute(8 * FLOP);
        }
        let com = if mass > 0.0 {
            [w[0] / mass, w[1] / mass, w[2] / mass]
        } else {
            [0.0; 3]
        };
        write_block(p, &self.com, cell * 3, &com);
        self.cmass.touch_range_write(p, cell, 1);
        self.cmass.set_direct(cell, mass);
        (mass, w)
    }

    /// Barnes-Hut force on the body at `x` (excluding itself), traversing
    /// from `root`. Returns the acceleration and the interaction count.
    fn force_on(
        &self,
        p: &Proc<'_>,
        pos: &SharedVec<f64>,
        body_mass: f64,
        me: usize,
        x: [f64; 3],
        root: usize,
    ) -> ([f64; 3], u64) {
        let mut acc = [0.0f64; 3];
        let mut interactions = 0u64;
        let mut stack = vec![Slot::Cell(root)];
        while let Some(node) = stack.pop() {
            match node {
                Slot::Empty => {}
                Slot::Body(b) => {
                    if b == me {
                        continue;
                    }
                    let bp = read_block(p, pos, b * 3, 3);
                    add_grav(&mut acc, &x, &[bp[0], bp[1], bp[2]], body_mass);
                    interactions += 1;
                }
                Slot::Cell(cell) => {
                    self.cmass.touch_range_read(p, cell, 1);
                    let m = self.cmass.get_direct(cell);
                    if m <= 0.0 {
                        continue;
                    }
                    let com = read_block(p, &self.com, cell * 3, 3);
                    self.half.touch_range_read(p, cell, 1);
                    let h = self.half.get_direct(cell);
                    let d = [com[0] - x[0], com[1] - x[1], com[2] - x[2]];
                    let dist2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFT;
                    let size = 4.0 * h * h; // (2 * half)^2
                    if size < THETA * THETA * dist2 {
                        add_grav(&mut acc, &x, &[com[0], com[1], com[2]], m);
                        interactions += 1;
                    } else {
                        let kids = read_block(p, &self.child, cell * 8, 8);
                        for &k in &kids {
                            let s = decode(k);
                            if s != Slot::Empty {
                                stack.push(s);
                            }
                        }
                    }
                }
            }
        }
        (acc, interactions)
    }
}

/// Accumulates the softened gravitational pull of mass `m` at `src` on a
/// body at `x`.
fn add_grav(acc: &mut [f64; 3], x: &[f64; 3], src: &[f64; 3], m: f64) {
    let d = [src[0] - x[0], src[1] - x[1], src[2] - x[2]];
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFT;
    let inv = m / (r2 * r2.sqrt());
    acc[0] += d[0] * inv;
    acc[1] += d[1] * inv;
    acc[2] += d[2] * inv;
}

impl Workload for Barnes {
    fn name(&self) -> String {
        match self.variant {
            BarnesVariant::Original => format!("Barnes-original(n={})", self.n),
            BarnesVariant::Spatial => format!("Barnes-Spatial(n={})", self.n),
        }
    }

    fn mem_bytes(&self) -> usize {
        let cap = self.cap();
        self.n * 3 * 8 * 3 + cap * (8 * 8 + 3 * 8 + 8 + 3 * 8 + 8) + (1 << 21)
    }

    #[allow(clippy::needless_range_loop)] // indexed loops mirror the SPLASH-2 kernels
    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let n = self.n;
        let cap = self.cap();
        let pos = world.alloc_vec::<f64>(n * 3);
        let vel = world.alloc_vec::<f64>(n * 3);
        let acc = world.alloc_vec::<f64>(n * 3);
        let child = world.alloc_vec::<i64>(cap * 8);
        let center = world.alloc_vec::<f64>(cap * 3);
        let half = world.alloc_vec::<f64>(cap);
        let com = world.alloc_vec::<f64>(cap * 3);
        let cmass = world.alloc_vec::<f64>(cap);
        let cell_locks = world.alloc_locks(cap);
        let bar = world.alloc_barrier();
        for i in 0..n {
            let x = body_pos(i);
            for c in 0..3 {
                pos.set_direct(i * 3 + c, x[c]);
                vel.set_direct(i * 3 + c, 0.0);
            }
        }
        *self.state.borrow_mut() = Some(Handles {
            pos: pos.clone(),
            acc: acc.clone(),
            child: child.clone(),
        });
        let steps = self.steps;
        let variant = self.variant;
        let body_mass = 1.0 / n as f64;
        (0..nprocs)
            .map(|pid| {
                let pos = pos.clone();
                let vel = vel.clone();
                let acc = acc.clone();
                let tree = Tree {
                    child: child.clone(),
                    center: center.clone(),
                    half: half.clone(),
                    com: com.clone(),
                    cmass: cmass.clone(),
                };
                let cell_locks = cell_locks.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let np = p.nprocs();
                    let (b0, b1) = block_range(n, np, pid);
                    // Per-processor cell pool; the first 9 global slots
                    // (root + 8 top octant cells) come off P0's pool.
                    let pool_lo = pid * (cap / np) + if pid == 0 { 9 } else { 0 };
                    let pool_hi = (pid + 1) * (cap / np);
                    for step in 0..steps {
                        let mut pool = (pool_lo, pool_hi);
                        // --- Build phase ---
                        if pid == 0 {
                            // Reset the root (and, for the spatial variant,
                            // the eight top-level octant cells).
                            write_block(p, &tree.center, 0, &[0.5, 0.5, 0.5]);
                            tree.half.touch_range_write(p, 0, 1);
                            tree.half.set_direct(0, 0.5);
                            write_block(p, &tree.child, 0, &[0i64; 8]);
                            if variant == BarnesVariant::Spatial {
                                for o in 0..8usize {
                                    tree.create_cell(p, 1 + o, &[0.5, 0.5, 0.5], 0.5, o);
                                    tree.child.touch_range_write(p, o, 1);
                                    tree.child.set_direct(o, encode(Slot::Cell(1 + o)));
                                }
                            }
                        }
                        p.barrier(bar);
                        match variant {
                            BarnesVariant::Original => {
                                // Concurrent locked insertion of my bodies.
                                for b in b0..b1 {
                                    let bp = read_block(p, &pos, b * 3, 3);
                                    tree.insert(
                                        p,
                                        &pos,
                                        &cell_locks,
                                        b,
                                        [bp[0], bp[1], bp[2]],
                                        0,
                                        &mut pool,
                                        true,
                                    );
                                }
                            }
                            BarnesVariant::Spatial => {
                                // Lock-free build of my octants: read every
                                // position coarsely, insert the bodies that
                                // fall in octants assigned to me.
                                let all = read_block(p, &pos, 0, n * 3);
                                p.compute(n as u64 * 2 * INT_OP);
                                for b in 0..n {
                                    let x = [all[b * 3], all[b * 3 + 1], all[b * 3 + 2]];
                                    let o = octant(&x, &[0.5, 0.5, 0.5]);
                                    if o % np == pid {
                                        tree.insert(
                                            p,
                                            &pos,
                                            &cell_locks,
                                            b,
                                            x,
                                            1 + o,
                                            &mut pool,
                                            false,
                                        );
                                    }
                                }
                            }
                        }
                        p.barrier(bar);
                        // --- Center-of-mass phase: one top-level subtree
                        // per processor (round-robin). ---
                        for o in 0..8usize {
                            if o % np != pid {
                                continue;
                            }
                            tree.child.touch_range_read(p, o, 1);
                            if let Slot::Cell(c) = decode(tree.child.get_direct(o)) {
                                tree.compute_com(p, &pos, body_mass, c);
                            }
                        }
                        p.barrier(bar);
                        if pid == 0 {
                            // Root COM from its children.
                            let kids = read_block(p, &tree.child, 0, 8);
                            let mut mass = 0.0;
                            let mut w = [0.0f64; 3];
                            for &k in &kids {
                                match decode(k) {
                                    Slot::Empty => {}
                                    Slot::Body(b) => {
                                        let bp = read_block(p, &pos, b * 3, 3);
                                        mass += body_mass;
                                        for c in 0..3 {
                                            w[c] += body_mass * bp[c];
                                        }
                                    }
                                    Slot::Cell(sub) => {
                                        tree.cmass.touch_range_read(p, sub, 1);
                                        let m = tree.cmass.get_direct(sub);
                                        let sc = read_block(p, &tree.com, sub * 3, 3);
                                        mass += m;
                                        for c in 0..3 {
                                            w[c] += m * sc[c];
                                        }
                                    }
                                }
                                p.compute(8 * FLOP);
                            }
                            let root_com = if mass > 0.0 {
                                [w[0] / mass, w[1] / mass, w[2] / mass]
                            } else {
                                [0.0; 3]
                            };
                            write_block(p, &tree.com, 0, &root_com);
                            tree.cmass.touch_range_write(p, 0, 1);
                            tree.cmass.set_direct(0, mass);
                        }
                        p.barrier(bar);
                        // --- Force phase ---
                        for b in b0..b1 {
                            let bp = read_block(p, &pos, b * 3, 3);
                            let (a, inter) =
                                tree.force_on(p, &pos, body_mass, b, [bp[0], bp[1], bp[2]], 0);
                            p.compute(inter * 20 * FLOP);
                            write_block(p, &acc, b * 3, &a);
                        }
                        p.barrier(bar);
                        // --- Integration (skipped on the last step so the
                        // accelerations correspond to the final positions
                        // for verification) ---
                        if step + 1 < steps {
                            let f = read_block(p, &acc, b0 * 3, (b1 - b0) * 3);
                            let mut v = read_block(p, &vel, b0 * 3, (b1 - b0) * 3);
                            let mut x = read_block(p, &pos, b0 * 3, (b1 - b0) * 3);
                            for k in 0..(b1 - b0) * 3 {
                                v[k] += f[k] * DT;
                                x[k] = (x[k] + v[k] * DT).clamp(0.02, 0.98);
                            }
                            p.compute(((b1 - b0) * 3) as u64 * 4 * FLOP);
                            write_block(p, &vel, b0 * 3, &v);
                            write_block(p, &pos, b0 * 3, &x);
                        }
                        p.barrier(bar);
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let h = guard.as_ref().ok_or("spawn() was never called")?;
        let n = self.n;
        let body_mass = 1.0 / n as f64;
        // 1. Structural: every body appears in the final tree exactly once.
        let mut seen = vec![0u32; n];
        let mut stack = vec![0usize];
        while let Some(cell) = stack.pop() {
            for o in 0..8 {
                match decode(h.child.get_direct(cell * 8 + o)) {
                    Slot::Empty => {}
                    Slot::Body(b) => seen[b] += 1,
                    Slot::Cell(c) => stack.push(c),
                }
            }
        }
        if let Some(b) = seen.iter().position(|&c| c != 1) {
            return Err(format!("body {b} appears {} times in the tree", seen[b]));
        }
        // 2. Physics: tree accelerations track the direct O(n^2) sum.
        // Relative error is floored by a fraction of the mean force
        // magnitude: bodies whose net force nearly cancels otherwise make
        // the *relative* error meaningless.
        let mut errs: Vec<(f64, f64)> = Vec::with_capacity(n);
        for i in 0..n {
            let x = [
                h.pos.get_direct(i * 3),
                h.pos.get_direct(i * 3 + 1),
                h.pos.get_direct(i * 3 + 2),
            ];
            let mut direct = [0.0f64; 3];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let y = [
                    h.pos.get_direct(j * 3),
                    h.pos.get_direct(j * 3 + 1),
                    h.pos.get_direct(j * 3 + 2),
                ];
                add_grav(&mut direct, &x, &y, body_mass);
            }
            let got = [
                h.acc.get_direct(i * 3),
                h.acc.get_direct(i * 3 + 1),
                h.acc.get_direct(i * 3 + 2),
            ];
            let dn = (direct[0] * direct[0] + direct[1] * direct[1] + direct[2] * direct[2]).sqrt();
            let en = ((got[0] - direct[0]).powi(2)
                + (got[1] - direct[1]).powi(2)
                + (got[2] - direct[2]).powi(2))
            .sqrt();
            errs.push((en, dn));
        }
        let mean_dn = errs.iter().map(|e| e.1).sum::<f64>() / n as f64;
        let worst = errs
            .iter()
            .map(|&(en, dn)| en / dn.max(0.5 * mean_dn))
            .fold(0.0f64, f64::max);
        if worst > 0.2 {
            return Err(format!(
                "Barnes-Hut force error too large: worst floored relative error {worst:.3}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn slot_encoding_round_trips() {
        for s in [
            Slot::Empty,
            Slot::Cell(0),
            Slot::Cell(17),
            Slot::Body(0),
            Slot::Body(9),
        ] {
            assert_eq!(decode(encode(s)), s);
        }
    }

    #[test]
    fn octants_partition_space() {
        let c = [0.5, 0.5, 0.5];
        assert_eq!(octant(&[0.1, 0.1, 0.1], &c), 0);
        assert_eq!(octant(&[0.9, 0.9, 0.9], &c), 7);
        assert_eq!(octant(&[0.9, 0.1, 0.1], &c), 4);
    }

    #[test]
    fn bodies_are_distinct_and_clustered() {
        let ps: Vec<[f64; 3]> = (0..64).map(body_pos).collect();
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                let d: f64 = (0..3).map(|c| (ps[i][c] - ps[j][c]).powi(2)).sum();
                assert!(d > 1e-12, "bodies {i} and {j} collide");
            }
        }
        // Clustered: most bodies within 0.3 of the centre.
        let near = ps
            .iter()
            .filter(|p| {
                let d: f64 = (0..3).map(|c| (p[c] - 0.5).powi(2)).sum();
                d.sqrt() < 0.3
            })
            .count();
        assert!(near * 2 > ps.len(), "only {near}/64 near the centre");
    }

    #[test]
    fn sequential_barnes_verifies() {
        for v in [BarnesVariant::Original, BarnesVariant::Spatial] {
            let w = Barnes::new(32, 1, v);
            let r = sequential_baseline(&w);
            assert!(r.verify_error.is_none(), "{v:?}: {:?}", r.verify_error);
        }
    }

    #[test]
    fn parallel_barnes_verifies() {
        for variant in [BarnesVariant::Original, BarnesVariant::Spatial] {
            for proto in [Protocol::Hlrc, Protocol::Sc] {
                let w = Barnes::new(32, 2, variant);
                let r = SimBuilder::new(proto).procs(4).run(&w);
                assert!(
                    r.verify_error.is_none(),
                    "{variant:?}/{proto:?}: {:?}",
                    r.verify_error
                );
            }
        }
    }

    #[test]
    fn spatial_variant_locks_less() {
        let orig = Barnes::original(64, 1);
        let ro = SimBuilder::new(Protocol::Hlrc).procs(4).run(&orig);
        let sp = Barnes::spatial(64, 1);
        let rs = SimBuilder::new(Protocol::Hlrc).procs(4).run(&sp);
        assert!(ro.verify_error.is_none() && rs.verify_error.is_none());
        assert!(
            rs.counters.lock_acquires * 4 < ro.counters.lock_acquires,
            "spatial {} vs original {}",
            rs.counters.lock_acquires,
            ro.counters.lock_acquires
        );
    }
}
