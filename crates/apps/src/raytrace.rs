//! Raytrace — a ray tracer with the SPLASH-2 Raytrace sharing structure:
//! a read-mostly scene accessed *irregularly and at fine grain* through a
//! uniform-grid acceleration structure, distributed task queues with
//! stealing, and per-pixel image writes.
//!
//! The paper's car scene is proprietary input; the substitute is a
//! procedurally generated field of spheres (DESIGN.md §3). What matters
//! for the study is preserved: rays walk the spatial grid cell by cell
//! (many small dependent reads — Raytrace has "a very large number of
//! fine-grained messages due to irregular access", §4.3), intersect a
//! data-dependent subset of spheres, and write one word per pixel.
//!
//! Rendering is deterministic, so `verify` compares the image word for
//! word against a sequential in-memory reference.

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{read_block, FLOP, INT_OP};
use crate::taskq::TaskQueues;

/// Grid resolution per axis of the acceleration structure.
const GRID: usize = 4;
/// Pixel tile edge for the task decomposition.
const TILE: usize = 4;
/// Light direction (normalized below).
const LIGHT: [f64; 3] = [0.4, 0.7, -0.6];

/// A sphere of the procedural scene.
#[derive(Debug, Clone, Copy)]
struct Sphere {
    c: [f64; 3],
    r: f64,
    shade: f64,
}

/// Deterministic procedural scene: `ns` spheres jittered over the box.
fn make_scene(ns: usize) -> Vec<Sphere> {
    (0..ns)
        .map(|i| {
            let h = |k: usize| ((i * 5 + k).wrapping_mul(2654435761) & 0xffff) as f64 / 65536.0;
            Sphere {
                c: [h(0), h(1), 0.2 + 0.6 * h(2)],
                r: 0.04 + 0.08 * h(3),
                shade: 0.3 + 0.7 * h(4),
            }
        })
        .collect()
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    [v[0] / n, v[1] / n, v[2] / n]
}

/// Ray-sphere intersection: distance along the ray, if any.
fn hit_sphere(o: [f64; 3], d: [f64; 3], s: &Sphere) -> Option<f64> {
    let oc = [o[0] - s.c[0], o[1] - s.c[1], o[2] - s.c[2]];
    let b = oc[0] * d[0] + oc[1] * d[1] + oc[2] * d[2];
    let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - s.r * s.r;
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let t = -b - disc.sqrt();
    if t > 1e-9 {
        Some(t)
    } else {
        None
    }
}

/// Grid cell of a point (clamped).
fn cell_of(x: [f64; 3]) -> (usize, usize, usize) {
    let c = |v: f64| ((v * GRID as f64) as isize).clamp(0, GRID as isize - 1) as usize;
    (c(x[0]), c(x[1]), c(x[2]))
}

fn cell_index(c: (usize, usize, usize)) -> usize {
    (c.0 * GRID + c.1) * GRID + c.2
}

/// Builds the uniform grid: cell -> sphere-index list (CSR form).
fn build_grid(scene: &[Sphere]) -> (Vec<u32>, Vec<u32>) {
    let ncells = GRID * GRID * GRID;
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); ncells];
    for (si, s) in scene.iter().enumerate() {
        let lo = cell_of([s.c[0] - s.r, s.c[1] - s.r, s.c[2] - s.r]);
        let hi = cell_of([s.c[0] + s.r, s.c[1] + s.r, s.c[2] + s.r]);
        for x in lo.0..=hi.0 {
            for y in lo.1..=hi.1 {
                for z in lo.2..=hi.2 {
                    lists[cell_index((x, y, z))].push(si as u32);
                }
            }
        }
    }
    let mut starts = Vec::with_capacity(ncells + 1);
    let mut items = Vec::new();
    starts.push(0u32);
    for l in &lists {
        items.extend_from_slice(l);
        starts.push(items.len() as u32);
    }
    (starts, items)
}

/// The pure shading function used by both the simulated render and the
/// reference: traces the pixel ray through the grid (via the provided
/// *accessors*, which either charge simulated time or read directly).
fn trace_pixel<FStart, FItem, FSphere>(
    px: usize,
    py: usize,
    res: usize,
    scene_len: usize,
    get_start: &mut FStart,
    get_item: &mut FItem,
    get_sphere: &mut FSphere,
) -> u32
where
    FStart: FnMut(usize) -> u32,
    FItem: FnMut(usize) -> u32,
    FSphere: FnMut(usize) -> Sphere,
{
    let _ = scene_len;
    let o = [
        (px as f64 + 0.5) / res as f64,
        (py as f64 + 0.5) / res as f64,
        -1.0,
    ];
    let d = [0.0, 0.0, 1.0];
    // Walk the grid slabs along +z through the (x, y) column.
    let (cx, cy, _) = cell_of([o[0], o[1], 0.0]);
    let mut best: Option<(f64, Sphere)> = None;
    for cz in 0..GRID {
        let ci = cell_index((cx, cy, cz));
        let s0 = get_start(ci) as usize;
        let s1 = get_start(ci + 1) as usize;
        for k in s0..s1 {
            let si = get_item(k) as usize;
            let s = get_sphere(si);
            if let Some(t) = hit_sphere(o, d, &s) {
                if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                    best = Some((t, s));
                }
            }
        }
        if let Some((t, _)) = best {
            // Early exit once the hit is before the next slab.
            let slab_z = (cz + 1) as f64 / GRID as f64;
            if o[2] + t * d[2] < slab_z {
                break;
            }
        }
    }
    let Some((t, s)) = best else {
        // Background gradient.
        return (16 + (px * 11 + py * 7) % 32) as u32;
    };
    let hit = [o[0] + t * d[0], o[1] + t * d[1], o[2] + t * d[2]];
    let n = normalize([hit[0] - s.c[0], hit[1] - s.c[1], hit[2] - s.c[2]]);
    let l = normalize(LIGHT);
    let mut lambert = n[0] * l[0] + n[1] * l[1] + n[2] * l[2];
    if lambert < 0.0 {
        lambert = 0.0;
    }
    // Shadow ray through the grid toward the light.
    let so = [
        hit[0] + n[0] * 1e-6,
        hit[1] + n[1] * 1e-6,
        hit[2] + n[2] * 1e-6,
    ];
    let mut shadow = false;
    'outer: for step in 1..=GRID {
        let pos = [
            so[0] + l[0] * step as f64 / GRID as f64,
            so[1] + l[1] * step as f64 / GRID as f64,
            so[2] + l[2] * step as f64 / GRID as f64,
        ];
        if pos.iter().any(|&v| !(0.0..1.0).contains(&v)) {
            break;
        }
        let ci = cell_index(cell_of(pos));
        let s0 = get_start(ci) as usize;
        let s1 = get_start(ci + 1) as usize;
        for k in s0..s1 {
            let si = get_item(k) as usize;
            let sp = get_sphere(si);
            if hit_sphere(so, l, &sp).is_some() {
                shadow = true;
                break 'outer;
            }
        }
    }
    let shade = s.shade * lambert * if shadow { 0.35 } else { 1.0 } + 0.05;
    (shade.clamp(0.0, 1.0) * 255.0) as u32
}

/// The Raytrace workload: a `res x res` image over `ns` spheres.
#[derive(Debug)]
pub struct Raytrace {
    res: usize,
    ns: usize,
    image: RefCell<Option<SharedVec<u32>>>,
}

impl Raytrace {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `res` is a positive multiple of the tile edge (4).
    pub fn new(res: usize, ns: usize) -> Self {
        assert!(
            res > 0 && res.is_multiple_of(TILE),
            "resolution must be a multiple of 4"
        );
        assert!(ns > 0);
        Raytrace {
            res,
            ns,
            image: RefCell::new(None),
        }
    }

    /// Image resolution.
    pub fn resolution(&self) -> usize {
        self.res
    }

    /// Sequential reference image.
    fn reference(&self) -> Vec<u32> {
        let scene = make_scene(self.ns);
        let (starts, items) = build_grid(&scene);
        let mut img = vec![0u32; self.res * self.res];
        for py in 0..self.res {
            for px in 0..self.res {
                img[py * self.res + px] = trace_pixel(
                    px,
                    py,
                    self.res,
                    scene.len(),
                    &mut |i| starts[i],
                    &mut |i| items[i],
                    &mut |i| scene[i],
                );
            }
        }
        img
    }
}

impl Workload for Raytrace {
    fn name(&self) -> String {
        format!("Raytrace(res={},ns={})", self.res, self.ns)
    }

    fn mem_bytes(&self) -> usize {
        self.res * self.res * 4 + self.ns * 64 + (GRID * GRID * GRID + 1) * 40 + (1 << 21)
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let scene = make_scene(self.ns);
        let (starts, items) = build_grid(&scene);
        // Shared scene arrays (read-only during the run).
        let v_starts = world.alloc_vec::<u32>(starts.len());
        let v_items = world.alloc_vec::<u32>(items.len().max(1));
        let v_sph = world.alloc_vec::<f64>(self.ns * 5);
        for (i, &s) in starts.iter().enumerate() {
            v_starts.set_direct(i, s);
        }
        for (i, &s) in items.iter().enumerate() {
            v_items.set_direct(i, s);
        }
        for (i, s) in scene.iter().enumerate() {
            v_sph.set_direct(i * 5, s.c[0]);
            v_sph.set_direct(i * 5 + 1, s.c[1]);
            v_sph.set_direct(i * 5 + 2, s.c[2]);
            v_sph.set_direct(i * 5 + 3, s.r);
            v_sph.set_direct(i * 5 + 4, s.shade);
        }
        let image = world.alloc_vec::<u32>(self.res * self.res);
        let tiles = (self.res / TILE) * (self.res / TILE);
        let q = TaskQueues::alloc(world, nprocs, tiles);
        // Static initial assignment: contiguous tile ranges.
        for t in 0..tiles {
            q.seed(t * nprocs / tiles, t as u32);
        }
        *self.image.borrow_mut() = Some(image.clone());
        let res = self.res;
        let ns = self.ns;
        (0..nprocs)
            .map(|_| {
                let v_starts = v_starts.clone();
                let v_items = v_items.clone();
                let v_sph = v_sph.clone();
                let image = image.clone();
                let q = q.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let tiles_per_row = res / TILE;
                    while let Some((tile, _stolen)) = q.pop(p) {
                        let tx = (tile as usize % tiles_per_row) * TILE;
                        let ty = (tile as usize / tiles_per_row) * TILE;
                        for py in ty..ty + TILE {
                            for px in tx..tx + TILE {
                                let v = trace_pixel(
                                    px,
                                    py,
                                    res,
                                    ns,
                                    &mut |i| {
                                        v_starts.touch_range_read(p, i, 1);
                                        p.compute(2 * INT_OP);
                                        v_starts.get_direct(i)
                                    },
                                    &mut |i| {
                                        v_items.touch_range_read(p, i, 1);
                                        p.compute(INT_OP);
                                        v_items.get_direct(i)
                                    },
                                    &mut |i| {
                                        let f = read_block(p, &v_sph, i * 5, 5);
                                        p.compute(15 * FLOP);
                                        Sphere {
                                            c: [f[0], f[1], f[2]],
                                            r: f[3],
                                            shade: f[4],
                                        }
                                    },
                                );
                                p.compute(30 * FLOP);
                                image.set(p, py * res + px, v);
                            }
                        }
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.image.borrow();
        let image = guard.as_ref().ok_or("spawn() was never called")?;
        let want = self.reference();
        for (i, &w) in want.iter().enumerate() {
            let got = image.get_direct(i);
            if got != w {
                return Err(format!(
                    "pixel ({},{}) = {got}, want {w}",
                    i % self.res,
                    i / self.res
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn reference_image_is_nontrivial() {
        let w = Raytrace::new(16, 24);
        let img = w.reference();
        let distinct: std::collections::HashSet<u32> = img.iter().copied().collect();
        assert!(distinct.len() > 8, "flat image: {} shades", distinct.len());
        // Some pixels hit spheres (bright), some are background.
        assert!(img.iter().any(|&v| v > 60));
        assert!(img.iter().any(|&v| v < 50));
    }

    #[test]
    fn sequential_render_verifies() {
        let w = Raytrace::new(16, 24);
        let r = sequential_baseline(&w);
        assert!(r.verify_error.is_none(), "{:?}", r.verify_error);
    }

    #[test]
    fn parallel_render_verifies_with_stealing() {
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            let w = Raytrace::new(16, 24);
            let r = SimBuilder::new(proto).procs(4).run(&w);
            assert!(r.verify_error.is_none(), "{proto:?}: {:?}", r.verify_error);
            assert!(r.counters.lock_acquires >= 16, "queue traffic expected");
        }
    }

    #[test]
    fn sphere_intersection_sanity() {
        let s = Sphere {
            c: [0.5, 0.5, 0.5],
            r: 0.25,
            shade: 1.0,
        };
        let t = hit_sphere([0.5, 0.5, -1.0], [0.0, 0.0, 1.0], &s).expect("hit");
        assert!((t - 1.25).abs() < 1e-12);
        assert!(hit_sphere([0.0, 0.0, -1.0], [0.0, 0.0, 1.0], &s).is_none());
    }
}
