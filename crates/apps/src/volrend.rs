//! Volrend — volume rendering by ray casting, with the SPLASH-2 Volrend
//! execution structure: tiles of image pixels as tasks, distributed task
//! queues with stealing, early ray termination (the source of load
//! imbalance), and per-pixel image writes whose page-level false sharing
//! the paper calls out.
//!
//! The paper's CT-head input is replaced by a procedural shell-structured
//! density volume (DESIGN.md §3): rays through the dense core terminate
//! early while background rays traverse the full depth, reproducing the
//! imbalance that makes task stealing matter.
//!
//! Two variants:
//!
//! * **Original**: contiguous initial tile assignment (heavy stealing once
//!   the dense-region processors fall behind) and word-granularity pixel
//!   writes.
//! * **Restructured**: interleaved initial assignment ("improving the
//!   initial assignments of tasks so there is less need for task
//!   stealing", §4.2) and row-buffered coarse image writes (reducing
//!   false sharing and fragmentation in the image at page granularity).

use std::cell::RefCell;

use ssm_proto::{Proc, SharedVec, ThreadBody, Workload, World};

use crate::common::{write_block, FLOP, INT_OP};
use crate::taskq::TaskQueues;

/// Tile edge in pixels.
const TILE: usize = 4;
/// Early-termination opacity threshold.
const TERM: f64 = 0.95;

/// Procedural density at voxel (x, y, z) of a `v`-sided volume: nested
/// shells around the centre plus a dense core.
fn density(v: usize, x: usize, y: usize, z: usize) -> f32 {
    let c = (v as f64 - 1.0) / 2.0;
    let dx = (x as f64 - c) / c;
    let dy = (y as f64 - c) / c;
    let dz = (z as f64 - c) / c;
    let r = (dx * dx + dy * dy + dz * dz).sqrt();
    if r < 0.25 {
        return 0.9; // dense core: rays terminate quickly
    }
    let shell = (10.0 * r).sin().max(0.0) * (-1.5 * r).exp();
    if shell > 0.2 {
        shell as f32
    } else {
        0.0
    }
}

/// Composites one ray through the volume via `sample`; returns the pixel
/// value and the number of voxels actually read (early termination).
fn cast_ray<F>(v: usize, px: usize, py: usize, sample: &mut F) -> (u32, usize)
where
    F: FnMut(usize, usize, usize) -> f32,
{
    let mut opacity = 0.0f64;
    let mut color = 0.0f64;
    let mut steps = 0;
    for z in 0..v {
        let rho = sample(px, py, z) as f64;
        steps += 1;
        if rho > 0.0 {
            let alpha = (rho * 0.75).min(1.0);
            let shade = 0.3 + 0.7 * rho;
            color += (1.0 - opacity) * alpha * shade;
            opacity += (1.0 - opacity) * alpha;
            if opacity > TERM {
                break;
            }
        }
    }
    (((color.clamp(0.0, 1.0)) * 255.0) as u32, steps)
}

/// Which task-assignment/write strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolrendVariant {
    /// Contiguous initial assignment, per-pixel writes.
    Original,
    /// Interleaved assignment, row-buffered coarse writes.
    Restructured,
}

/// The Volrend workload: a `v^3` volume rendered to a `v x v` image.
#[derive(Debug)]
pub struct Volrend {
    v: usize,
    variant: VolrendVariant,
    image: RefCell<Option<SharedVec<u32>>>,
}

impl Volrend {
    /// Original Volrend over a `v^3` volume.
    pub fn original(v: usize) -> Self {
        Volrend::new(v, VolrendVariant::Original)
    }

    /// Restructured Volrend.
    pub fn restructured(v: usize) -> Self {
        Volrend::new(v, VolrendVariant::Restructured)
    }

    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is a positive multiple of the tile edge (4).
    pub fn new(v: usize, variant: VolrendVariant) -> Self {
        assert!(
            v > 0 && v.is_multiple_of(TILE),
            "volume side must be a multiple of 4"
        );
        Volrend {
            v,
            variant,
            image: RefCell::new(None),
        }
    }

    /// Volume side length.
    pub fn side(&self) -> usize {
        self.v
    }

    /// Sequential reference image.
    fn reference(&self) -> Vec<u32> {
        let v = self.v;
        let mut img = vec![0u32; v * v];
        for py in 0..v {
            for px in 0..v {
                let (val, _) = cast_ray(v, px, py, &mut |x, y, z| density(v, x, y, z));
                img[py * v + px] = val;
            }
        }
        img
    }
}

impl Workload for Volrend {
    fn name(&self) -> String {
        match self.variant {
            VolrendVariant::Original => format!("Volrend(v={})", self.v),
            VolrendVariant::Restructured => format!("Volrend-rest(v={})", self.v),
        }
    }

    fn mem_bytes(&self) -> usize {
        self.v * self.v * self.v * 4 + self.v * self.v * 4 + (1 << 21)
    }

    #[allow(clippy::needless_range_loop)] // indexed loops mirror the SPLASH-2 kernels
    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        let v = self.v;
        let volume = world.alloc_vec::<f32>(v * v * v);
        for z in 0..v {
            for y in 0..v {
                for x in 0..v {
                    volume.set_direct((z * v + y) * v + x, density(v, x, y, z));
                }
            }
        }
        let image = world.alloc_vec::<u32>(v * v);
        let tiles = (v / TILE) * (v / TILE);
        let q = TaskQueues::alloc(world, nprocs, tiles);
        match self.variant {
            VolrendVariant::Original => {
                // Contiguous ranges: the processors owning the dense centre
                // run long; everyone else steals from them.
                for t in 0..tiles {
                    q.seed(t * nprocs / tiles, t as u32);
                }
            }
            VolrendVariant::Restructured => {
                // Work-predicted contiguous bands (the real Volrend
                // restructuring uses the previous frame / a precomputed
                // octree to balance the initial assignment): estimate each
                // tile's ray steps (untimed preprocessing), then cut the
                // tile sequence into contiguous, equal-work bands. This
                // both removes most stealing and keeps each processor's
                // image writes contiguous (less page-level false sharing).
                let tiles_per_row = v / TILE;
                let work: Vec<u64> = (0..tiles)
                    .map(|t| {
                        let tx = (t % tiles_per_row) * TILE;
                        let ty = (t / tiles_per_row) * TILE;
                        let mut w = 0u64;
                        for py in ty..ty + TILE {
                            for px in tx..tx + TILE {
                                let (_, steps) =
                                    cast_ray(v, px, py, &mut |x, y, z| density(v, x, y, z));
                                w += steps as u64;
                            }
                        }
                        w
                    })
                    .collect();
                let total: u64 = work.iter().sum();
                let mut pid = 0usize;
                let mut acc = 0u64;
                for t in 0..tiles {
                    q.seed(pid.min(nprocs - 1), t as u32);
                    acc += work[t];
                    while pid + 1 < nprocs && acc * nprocs as u64 > total * (pid as u64 + 1) {
                        pid += 1;
                    }
                }
            }
        }
        *self.image.borrow_mut() = Some(image.clone());
        let variant = self.variant;
        (0..nprocs)
            .map(|_| {
                let volume = volume.clone();
                let image = image.clone();
                let q = q.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    let tiles_per_row = v / TILE;
                    while let Some((tile, _stolen)) = q.pop(p) {
                        let tx = (tile as usize % tiles_per_row) * TILE;
                        let ty = (tile as usize / tiles_per_row) * TILE;
                        for py in ty..ty + TILE {
                            let mut row = [0u32; TILE];
                            for (i, px) in (tx..tx + TILE).enumerate() {
                                let (val, steps) = cast_ray(v, px, py, &mut |x, y, z| {
                                    let idx = (z * v + y) * v + x;
                                    volume.touch_range_read(p, idx, 1);
                                    volume.get_direct(idx)
                                });
                                p.compute(steps as u64 * (6 * FLOP + 2 * INT_OP));
                                row[i] = val;
                            }
                            match variant {
                                VolrendVariant::Original => {
                                    for (i, &val) in row.iter().enumerate() {
                                        image.set(p, py * v + tx + i, val);
                                    }
                                }
                                VolrendVariant::Restructured => {
                                    write_block(p, &image, py * v + tx, &row);
                                }
                            }
                        }
                    }
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.image.borrow();
        let image = guard.as_ref().ok_or("spawn() was never called")?;
        let want = self.reference();
        for (i, &w) in want.iter().enumerate() {
            let got = image.get_direct(i);
            if got != w {
                return Err(format!(
                    "pixel ({},{}) = {got}, want {w}",
                    i % self.v,
                    i / self.v
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_core::{sequential_baseline, Protocol, SimBuilder};

    #[test]
    fn volume_has_structure_and_early_termination() {
        let v = 16;
        let centre = cast_ray(v, v / 2, v / 2, &mut |x, y, z| density(v, x, y, z));
        let corner = cast_ray(v, 0, 0, &mut |x, y, z| density(v, x, y, z));
        assert!(centre.0 > corner.0, "centre brighter than corner");
        assert!(
            centre.1 < v,
            "centre ray should terminate early ({} steps)",
            centre.1
        );
        assert_eq!(corner.1, v, "corner ray traverses full depth");
    }

    #[test]
    fn sequential_volrend_verifies() {
        for v in [VolrendVariant::Original, VolrendVariant::Restructured] {
            let w = Volrend::new(16, v);
            let r = sequential_baseline(&w);
            assert!(r.verify_error.is_none(), "{v:?}: {:?}", r.verify_error);
        }
    }

    #[test]
    fn parallel_volrend_verifies() {
        for variant in [VolrendVariant::Original, VolrendVariant::Restructured] {
            for proto in [Protocol::Hlrc, Protocol::Sc] {
                let w = Volrend::new(16, variant);
                let r = SimBuilder::new(proto).procs(4).run(&w);
                assert!(
                    r.verify_error.is_none(),
                    "{variant:?}/{proto:?}: {:?}",
                    r.verify_error
                );
            }
        }
    }

    #[test]
    fn restructured_needs_fewer_lock_acquires() {
        // Interleaved assignment balances work, so fewer steal attempts.
        let orig = Volrend::original(32);
        let ro = SimBuilder::new(Protocol::Hlrc).procs(4).run(&orig);
        let rest = Volrend::restructured(32);
        let rr = SimBuilder::new(Protocol::Hlrc).procs(4).run(&rest);
        assert!(
            rr.counters.lock_acquires <= ro.counters.lock_acquires,
            "restructured {} vs original {}",
            rr.counters.lock_acquires,
            ro.counters.lock_acquires
        );
    }
}
