#![allow(clippy::needless_range_loop)] // p is a processor id, not an index choice
//! Delayed / eager-release-consistency mode tests.

use ssm_core::{Protocol as P, SimBuilder};
use ssm_mem::MemConfig;
use ssm_net::CommParams;
use ssm_proto::{LockId, Machine, ProtoCosts, Protocol, WorldShape, PAGE_SIZE};
use ssm_sc::{BlockState, Sc, ScMode};

fn setup(nprocs: usize) -> (Machine, Sc) {
    let m = Machine::new(
        nprocs,
        CommParams::achievable(),
        ProtoCosts::original(),
        MemConfig::pentium_pro_like(),
    );
    let mut sc = Sc::delayed(64);
    sc.init(
        &m,
        &WorldShape {
            heap_bytes: 1 << 20,
            nlocks: 2,
            nbarriers: 1,
        },
    );
    (m, sc)
}

#[test]
fn mode_and_name() {
    let (_, sc) = setup(2);
    assert_eq!(sc.mode(), ScMode::DelayedRc);
    assert_eq!(sc.name(), "SC-delayed");
    assert_eq!(Sc::new(64).mode(), ScMode::Sequential);
}

#[test]
fn writes_buffer_until_release() {
    let (mut m, mut sc) = setup(3);
    let b = PAGE_SIZE / 64; // block of page 1, home node 1
                            // P2 reads the block (shared copy).
    let t = sc.read(&mut m, 2, PAGE_SIZE, 8);
    m.clock[2] = t;
    // P0 writes it: under delayed RC this is local (after the fetch) and
    // P2 is NOT yet invalidated.
    let t = sc.write(&mut m, 0, PAGE_SIZE, 8);
    m.clock[0] = t;
    assert_eq!(sc.block_state(2, b), BlockState::Shared);
    assert_eq!(m.counters()[2].invalidations, 0);
    // P0 releases: the flush reaches the home and invalidates P2.
    assert!(sc.lock_table_mut().acquire(LockId(0), 0));
    let _ = sc.unlock(&mut m, 0, LockId(0));
    assert_eq!(sc.block_state(2, b), BlockState::Invalid);
    assert_eq!(m.counters()[2].invalidations, 1);
}

#[test]
fn delayed_beats_sc_on_write_write_false_sharing() {
    // Two processors repeatedly write different words of the same block;
    // sequential consistency ping-pongs ownership on every write, delayed
    // RC pays once per release.
    let run = |mut sc: Sc| {
        let m = Machine::new(
            3,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        sc.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 2,
                nbarriers: 1,
            },
        );
        let mut m = m;
        let mut t = [0u64; 3];
        for round in 0..8 {
            for p in 1..3usize {
                m.clock[p] = t[p];
                t[p] = sc.write(&mut m, p, PAGE_SIZE + (p as u64) * 8 + round, 4);
            }
        }
        // Both release once at the end (distinct locks: no queueing).
        for p in 1..3usize {
            m.clock[p] = t[p];
            assert!(sc.lock_table_mut().acquire(LockId(p as u32 - 1), p));
            t[p] = sc.unlock(&mut m, p, LockId(p as u32 - 1));
        }
        t[1].max(t[2])
    };
    let seq = run(Sc::new(64));
    let delayed = run(Sc::delayed(64));
    assert!(
        delayed < seq,
        "delayed RC ({delayed}) should beat SC ({seq}) under write-write false sharing"
    );
}

#[test]
fn suite_verifies_under_delayed_rc() {
    let cases: Vec<(Box<dyn ssm_proto::Workload>, u64)> = vec![
        (Box::new(ssm_apps::ocean::Ocean::contiguous(16, 2)), 1024),
        (Box::new(ssm_apps::radix::Radix::original(512)), 64),
        (Box::new(ssm_apps::water_nsq::WaterNsq::new(16, 2)), 64),
        (Box::new(ssm_apps::barnes::Barnes::original(32, 1)), 64),
    ];
    for (w, block) in cases {
        let r = SimBuilder::new(P::ScDelayed)
            .procs(4)
            .sc_block(block)
            .run(w.as_ref());
        assert!(
            r.verify_error.is_none(),
            "{}: {:?}",
            w.name(),
            r.verify_error
        );
        assert_eq!(r.protocol, "SC-delayed");
    }
}
