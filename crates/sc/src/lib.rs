//! Fine/variable-grained sequentially-consistent software DSM — the
//! paper's "SC" protocol, modelled on Stache/Typhoon-zero.
//!
//! * Coherence unit: a power-of-two **block** (64 B by default; the paper
//!   lets each application pick its best granularity — 4 KB for FFT and LU,
//!   1 KB for Ocean).
//! * A **directory entry at the block's home** tracks an MSI state:
//!   `owner == None` means the home copy is current and `sharers` hold
//!   read-only copies; `owner == Some(q)` means `q` holds the only valid,
//!   writable copy.
//! * Read miss → request to home; if a remote owner exists the home recalls
//!   the block (owner writes back, downgrades to shared), then supplies the
//!   data.
//! * Write miss/upgrade → request to home; the home invalidates all sharers
//!   (acks collected), recalls a remote owner if any, then grants exclusive
//!   ownership (with data unless the requester already held a shared copy).
//! * Sequential consistency: the processor stalls on every miss until the
//!   transaction completes.
//! * **Access control is free** (the paper's optimistic hardware
//!   assumption, §2); only the software handlers and messages cost time.
//!   Locks and barriers are plain message-based queue locks / counting
//!   barriers with no consistency payload (SC needs none).
//!
//! Remote blocks are cached in node memory without capacity eviction
//! (Stache uses main memory as the cache, which is effectively unbounded
//! for the paper's working sets).
//!
//! # Delayed (eager release) consistency mode
//!
//! The paper's footnote considers "a fine-grained protocol that uses
//! delayed consistency or single-writer, eager release consistency instead
//! of sequential consistency", reporting it "a little better than SC for
//! most granularities smaller than a page since they alleviate the effects
//! of read-write false sharing". [`Sc::delayed`] builds that variant:
//! writes are performed locally and buffered; at a *release* the writer
//! ships each dirty block to its home, which applies it and eagerly
//! invalidates the other sharers. Reads still fetch blocks on demand.

use ssm_engine::Cycles;
use ssm_proto::machine::Activity;
use ssm_proto::{
    BarrierId, BarrierTable, HomeMap, HomePolicy, LockId, LockTable, Machine, Protocol, WorldShape,
    PAGE_SIZE,
};

/// Bytes of a small control message (requests, grants, invalidations, acks).
const CTRL_BYTES: u64 = 32;

/// Header bytes on data-bearing messages.
const HDR_BYTES: u64 = 16;

/// Consistency model run by the [`Sc`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScMode {
    /// Sequential consistency: every write obtains exclusive ownership
    /// before completing.
    Sequential,
    /// Delayed / eager-release consistency: writes buffer locally and
    /// flush (with eager invalidations) at release points.
    DelayedRc,
}

/// Local state of a block at a non-home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// No valid copy.
    Invalid,
    /// Valid read-only copy (registered in the home's sharer set).
    Shared,
    /// The only valid copy, writable (this node is the directory owner).
    Exclusive,
}

/// Directory entry kept at a block's home.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of non-home nodes holding shared copies.
    sharers: u64,
    /// Remote exclusive owner, if any (the home copy is then stale).
    owner: Option<u32>,
}

/// The SC protocol engine.
///
/// # Example
///
/// ```rust
/// use ssm_sc::Sc;
/// use ssm_proto::{Machine, Protocol, ProtoCosts, WorldShape};
/// use ssm_mem::MemConfig;
/// use ssm_net::CommParams;
///
/// let mut m = Machine::new(2, CommParams::achievable(),
///                          ProtoCosts::original(), MemConfig::pentium_pro_like());
/// let mut sc = Sc::new(64);
/// sc.init(&m, &WorldShape { heap_bytes: 1 << 16, nlocks: 0, nbarriers: 0 });
/// // P1 reads a block homed at node 0: one 64-byte block moves, not a page.
/// let t = sc.read(&mut m, 1, 0, 8);
/// assert!(t > 0);
/// ```
#[derive(Debug)]
pub struct Sc {
    block: u64,
    nprocs: usize,
    mode: ScMode,
    /// DelayedRc: blocks written locally since the last release, per proc.
    write_set: Vec<std::collections::BTreeSet<u64>>,
    home_policy: HomePolicy,
    homes: HomeMap,
    dir: Vec<DirEntry>,
    /// `local[node][block]` — this node's copy state (home nodes use the
    /// directory instead).
    local: Vec<Vec<BlockState>>,
    locks: LockTable,
    barriers: BarrierTable,
    arrivals: Vec<Vec<(usize, Cycles)>>,
}

impl Sc {
    /// Creates an SC protocol with the given block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `block` is a power of two in `[4, PAGE_SIZE]`.
    pub fn new(block: u64) -> Self {
        assert!(
            block.is_power_of_two() && (4..=PAGE_SIZE).contains(&block),
            "block must be a power of two between 4 B and the page size"
        );
        Sc {
            block,
            nprocs: 0,
            mode: ScMode::Sequential,
            write_set: Vec::new(),
            home_policy: HomePolicy::RoundRobin,
            homes: HomeMap::new(HomePolicy::RoundRobin, 1, 0),
            dir: Vec::new(),
            local: Vec::new(),
            locks: LockTable::new(0),
            barriers: BarrierTable::new(0, 1),
            arrivals: Vec::new(),
        }
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block
    }

    /// Selects the page-to-home placement policy (before `init`).
    pub fn with_homes(mut self, policy: HomePolicy) -> Self {
        self.home_policy = policy;
        self
    }

    /// Creates the delayed/eager-release-consistency variant (the paper's
    /// footnote protocol) at the given granularity.
    pub fn delayed(block: u64) -> Self {
        let mut sc = Sc::new(block);
        sc.mode = ScMode::DelayedRc;
        sc
    }

    /// The consistency mode in force.
    pub fn mode(&self) -> ScMode {
        self.mode
    }

    /// DelayedRc release: ship every locally-buffered dirty block to its
    /// home (which applies it and eagerly invalidates the other sharers).
    /// Returns when every flush has been applied and acknowledged.
    fn flush_writes(&mut self, m: &mut Machine, p: usize, t: Cycles) -> Cycles {
        let dirty: Vec<u64> = std::mem::take(&mut self.write_set[p]).into_iter().collect();
        let mut local = t;
        let mut done = t;
        for b in dirty {
            let h = self.home_of_block(b, p);
            if h == p {
                // Home writer: invalidate remote sharers directly.
                let acked = self.invalidate_sharers(m, p, b, local, p, true);
                done = done.max(acked);
                continue;
            }
            // Ship the block's new contents to the home.
            let (l, arr) = m.send_from_handler(p, local, h, self.block + HDR_BYTES);
            local = l;
            let th = m.handle_request(h, arr, 0);
            let th = m.proto_touch(h, th, self.baddr(b), self.block, true, Activity::DiffApply);
            // Eager invalidations of the other sharers, from the home.
            let acked = self.invalidate_sharers(m, h, b, th, p, false);
            // The writer keeps a shared copy; the home copy is current.
            self.dir[b as usize].sharers |= 1u64 << p;
            self.local[p][b as usize] = BlockState::Shared;
            done = done.max(acked);
            m.counters_mut(p).diffs += 1;
        }
        local.max(done)
    }

    /// Direct access to the lock table (test setup hook).
    pub fn lock_table_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Local state of `block` at `node` (inspection hook).
    pub fn block_state(&self, node: usize, block: u64) -> BlockState {
        self.local[node][block as usize]
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.block
    }

    fn home_of_block(&mut self, b: u64, toucher: usize) -> usize {
        // A block's home is the home of its page, so data placement matches
        // HLRC exactly and protocol comparisons see the same distribution.
        self.homes.home(b * self.block / PAGE_SIZE, toucher)
    }

    fn baddr(&self, b: u64) -> u64 {
        b * self.block
    }

    /// Recalls the block from its remote owner to the home: the owner
    /// writes the data back and downgrades to `to_state`. Returns the time
    /// the home has merged the data.
    #[allow(clippy::too_many_arguments)] // a coherence transaction has this many actors
    fn recall(
        &mut self,
        m: &mut Machine,
        h: usize,
        q: usize,
        b: u64,
        t: Cycles,
        to_shared: bool,
        from_app: bool,
    ) -> Cycles {
        let (_, arr) = if from_app {
            m.send_from_app(h, t, q, CTRL_BYTES)
        } else {
            m.send_from_handler(h, t, q, CTRL_BYTES)
        };
        let tq = m.handle_request(q, arr, 0);
        let tq = m.proto_touch(q, tq, self.baddr(b), self.block, false, Activity::Handler);
        let (_, wb) = m.send_from_handler(q, tq, h, self.block + HDR_BYTES);
        let th = m.handle_request(h, wb, 0);
        let th = m.proto_touch(h, th, self.baddr(b), self.block, true, Activity::Handler);
        self.local[q][b as usize] = if to_shared {
            BlockState::Shared
        } else {
            BlockState::Invalid
        };
        if !to_shared {
            m.cache_invalidate(q, self.baddr(b), self.block);
        }
        let e = &mut self.dir[b as usize];
        e.owner = None;
        if to_shared {
            e.sharers |= 1u64 << q;
        }
        th
    }

    /// Invalidates every remote sharer of `b` from node `ctx` (the home),
    /// collecting acks; `except` is not invalidated. Sends serialize on the
    /// home CPU; acks are handled as they arrive. Returns the time all acks
    /// are in.
    fn invalidate_sharers(
        &mut self,
        m: &mut Machine,
        h: usize,
        b: u64,
        t: Cycles,
        except: usize,
        from_app: bool,
    ) -> Cycles {
        let sharers = self.dir[b as usize].sharers;
        let mut t_send = t;
        let mut all_acked = t;
        for q in 0..self.nprocs {
            if q == except || q == h || sharers & (1u64 << q) == 0 {
                continue;
            }
            let (local_done, arr) = if from_app {
                m.send_from_app(h, t_send, q, CTRL_BYTES)
            } else {
                m.send_from_handler(h, t_send, q, CTRL_BYTES)
            };
            t_send = local_done;
            let tq = m.handle_request(q, arr, 0);
            self.local[q][b as usize] = BlockState::Invalid;
            m.cache_invalidate(q, self.baddr(b), self.block);
            m.counters_mut(q).invalidations += 1;
            let (_, ack) = m.send_from_handler(q, tq, h, CTRL_BYTES);
            let acked = m.handle_request(h, ack, 0);
            all_acked = all_acked.max(acked);
        }
        self.dir[b as usize].sharers &= 1u64 << except;
        all_acked.max(t_send)
    }

    /// Ensures `p` holds at least a shared copy of block `b`.
    fn ensure_shared(&mut self, m: &mut Machine, p: usize, b: u64, t: Cycles) -> Cycles {
        let h = self.home_of_block(b, p);
        if p == h {
            // Home read: current unless a remote owner holds the block.
            let owner = self.dir[b as usize].owner;
            return match owner {
                None => t,
                Some(q) => {
                    let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
                    let done = self.recall(m, h, q as usize, b, t, true, true);
                    m.counters_mut(p).remote_reads += 1;
                    done
                }
            };
        }
        if self.local[p][b as usize] != BlockState::Invalid {
            return t;
        }
        // Remote read miss.
        let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
        let (_, arr) = m.send_from_app(p, t, h, CTRL_BYTES);
        let mut th = m.handle_request(h, arr, 0);
        if let Some(q) = self.dir[b as usize].owner {
            th = self.recall(m, h, q as usize, b, th, true, false);
        }
        // The home reads the block from memory and replies with data.
        let th = m.proto_touch(h, th, self.baddr(b), self.block, false, Activity::Handler);
        let (_, data) = m.send_from_handler(h, th, p, self.block + HDR_BYTES);
        m.cache_invalidate(p, self.baddr(b), self.block);
        self.local[p][b as usize] = BlockState::Shared;
        self.dir[b as usize].sharers |= 1u64 << p;
        let c = m.counters_mut(p);
        c.remote_reads += 1;
        c.fetches += 1;
        data
    }

    /// Ensures `p` holds the block exclusively.
    fn ensure_exclusive(&mut self, m: &mut Machine, p: usize, b: u64, t: Cycles) -> Cycles {
        let h = self.home_of_block(b, p);
        if p == h {
            let e = self.dir[b as usize];
            if e.owner.is_none() && e.sharers == 0 {
                return t; // home write, nobody else involved
            }
            let mut t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
            if let Some(q) = e.owner {
                t = self.recall(m, h, q as usize, b, t, false, true);
            }
            t = self.invalidate_sharers(m, h, b, t, p, true);
            self.dir[b as usize] = DirEntry::default();
            m.counters_mut(p).remote_writes += 1;
            return t;
        }
        if self.local[p][b as usize] == BlockState::Exclusive {
            return t;
        }
        let had_shared = self.local[p][b as usize] == BlockState::Shared;
        // Remote write miss / upgrade.
        let t = m.proto_work(p, t, m.costs().handler_base, Activity::Handler);
        let (_, arr) = m.send_from_app(p, t, h, CTRL_BYTES);
        let mut th = m.handle_request(h, arr, 0);
        if let Some(q) = self.dir[b as usize].owner {
            th = self.recall(m, h, q as usize, b, th, false, false);
        }
        th = self.invalidate_sharers(m, h, b, th, p, false);
        // Grant: data travels unless the requester already had a copy.
        let bytes = if had_shared {
            CTRL_BYTES
        } else {
            self.block + HDR_BYTES
        };
        if !had_shared {
            th = m.proto_touch(h, th, self.baddr(b), self.block, false, Activity::Handler);
        }
        let (_, grant) = m.send_from_handler(h, th, p, bytes);
        if !had_shared {
            m.cache_invalidate(p, self.baddr(b), self.block);
        }
        self.local[p][b as usize] = BlockState::Exclusive;
        let e = &mut self.dir[b as usize];
        e.sharers = 0;
        e.owner = Some(p as u32);
        let c = m.counters_mut(p);
        c.remote_writes += 1;
        if !had_shared {
            c.fetches += 1;
        }
        grant
    }

    fn lock_home(&self, lock: LockId) -> usize {
        lock.0 as usize % self.nprocs
    }

    fn barrier_home(&self, barrier: BarrierId) -> usize {
        barrier.0 as usize % self.nprocs
    }

    /// A lock grant message from the manager to `w`.
    fn grant(&mut self, m: &mut Machine, lock: LockId, w: usize, t_mgr: Cycles) -> Cycles {
        let mgr = self.lock_home(lock);
        if mgr == w {
            t_mgr
        } else {
            let (_, arr) = m.send_from_handler(mgr, t_mgr, w, CTRL_BYTES);
            m.handle_request(w, arr, 0)
        }
    }
}

impl Protocol for Sc {
    fn name(&self) -> &'static str {
        match self.mode {
            ScMode::Sequential => "SC",
            ScMode::DelayedRc => "SC-delayed",
        }
    }

    fn init(&mut self, m: &Machine, shape: &WorldShape) {
        self.nprocs = m.nprocs();
        assert!(self.nprocs <= 64, "sharer bitmask holds at most 64 nodes");
        let nblocks = shape.heap_bytes.div_ceil(self.block).max(1) as usize;
        self.homes = HomeMap::new(
            self.home_policy,
            self.nprocs,
            shape.heap_bytes.div_ceil(PAGE_SIZE).max(1),
        );
        self.dir = vec![DirEntry::default(); nblocks];
        self.local = vec![vec![BlockState::Invalid; nblocks]; self.nprocs];
        self.locks = LockTable::new(shape.nlocks);
        self.barriers = BarrierTable::new(shape.nbarriers, self.nprocs);
        self.arrivals = vec![Vec::new(); shape.nbarriers];
        self.write_set = vec![std::collections::BTreeSet::new(); self.nprocs];
    }

    fn read(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        let mut all_local = true;
        for b in first..=last {
            let h = self.home_of_block(b, p);
            let miss = if p == h {
                self.dir[b as usize].owner.is_some()
            } else {
                self.local[p][b as usize] == BlockState::Invalid
            };
            all_local &= !miss;
            t = self.ensure_shared(m, p, b, t);
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, false)
    }

    fn write(&mut self, m: &mut Machine, p: usize, addr: u64, bytes: u64) -> Cycles {
        debug_assert!(bytes > 0);
        let mut t = m.clock[p];
        let first = self.block_of(addr);
        let last = self.block_of(addr + bytes - 1);
        let mut all_local = true;
        for b in first..=last {
            match self.mode {
                ScMode::Sequential => {
                    let h = self.home_of_block(b, p);
                    let miss = if p == h {
                        let e = self.dir[b as usize];
                        e.owner.is_some() || e.sharers != 0
                    } else {
                        self.local[p][b as usize] != BlockState::Exclusive
                    };
                    all_local &= !miss;
                    t = self.ensure_exclusive(m, p, b, t);
                }
                ScMode::DelayedRc => {
                    // Write locally into a valid copy; consistency actions
                    // are deferred to the next release.
                    let h = self.home_of_block(b, p);
                    if p != h && self.local[p][b as usize] == BlockState::Invalid {
                        all_local = false;
                        t = self.ensure_shared(m, p, b, t);
                    }
                    if p != h {
                        self.write_set[p].insert(b);
                    } else if self.dir[b as usize].sharers != 0 {
                        // Home writer with remote sharers: also deferred.
                        self.write_set[p].insert(b);
                    }
                }
            }
        }
        if all_local {
            m.counters_mut(p).local_accesses += 1;
        }
        m.cache_access(p, t, addr, bytes, true)
    }

    fn lock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Option<Cycles> {
        m.counters_mut(p).lock_acquires += 1;
        let now = m.clock[p];
        let mgr = self.lock_home(lock);
        let t_mgr = if mgr == p {
            m.proto_work(p, now, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        if self.locks.acquire(lock, p) {
            Some(self.grant(m, lock, p, t_mgr))
        } else {
            None
        }
    }

    fn unlock(&mut self, m: &mut Machine, p: usize, lock: LockId) -> Cycles {
        let now = m.clock[p];
        let now = if self.mode == ScMode::DelayedRc {
            self.flush_writes(m, p, now)
        } else {
            now
        };
        let mgr = self.lock_home(lock);
        let (t_local, t_mgr) = if mgr == p {
            let t = m.proto_work(p, now, m.costs().handler_base, Activity::Handler);
            (t, t)
        } else {
            let (local, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            (local, m.handle_request(mgr, arr, 0))
        };
        if let Some(next) = self.locks.release(lock, p) {
            let granted = self.grant(m, lock, next, t_mgr);
            m.wake(next, granted);
        }
        t_local
    }

    fn barrier(&mut self, m: &mut Machine, p: usize, barrier: BarrierId) -> Option<Cycles> {
        let now = m.clock[p];
        let now = if self.mode == ScMode::DelayedRc {
            self.flush_writes(m, p, now)
        } else {
            now
        };
        let mgr = self.barrier_home(barrier);
        let t_arr = if mgr == p {
            m.proto_work(p, now, m.costs().handler_base, Activity::Handler)
        } else {
            let (_, arr) = m.send_from_app(p, now, mgr, CTRL_BYTES);
            m.handle_request(mgr, arr, 0)
        };
        self.arrivals[barrier.0 as usize].push((p, t_arr));
        self.barriers.arrive(barrier, p)?;
        let episode = std::mem::take(&mut self.arrivals[barrier.0 as usize]);
        let mut t_mgr = episode.iter().map(|&(_, t)| t).max().unwrap_or(t_arr);
        let mut my_completion = t_mgr;
        for &(q, _) in &episode {
            let t_q = if q == mgr {
                t_mgr
            } else {
                let (local, arr) = m.send_from_handler(mgr, t_mgr, q, CTRL_BYTES);
                t_mgr = local;
                m.handle_request(q, arr, 0)
            };
            if q == p {
                my_completion = t_q;
            } else {
                m.wake(q, t_q);
            }
        }
        m.counters_mut(p).barriers += 1;
        Some(my_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_mem::MemConfig;
    use ssm_net::CommParams;
    use ssm_proto::ProtoCosts;

    fn setup(nprocs: usize, block: u64) -> (Machine, Sc) {
        let m = Machine::new(
            nprocs,
            CommParams::achievable(),
            ProtoCosts::original(),
            MemConfig::pentium_pro_like(),
        );
        let mut sc = Sc::new(block);
        sc.init(
            &m,
            &WorldShape {
                heap_bytes: 1 << 20,
                nlocks: 2,
                nbarriers: 1,
            },
        );
        (m, sc)
    }

    #[test]
    fn home_access_without_remote_copies_is_free() {
        let (mut m, mut sc) = setup(4, 64);
        let t = sc.read(&mut m, 0, 0, 8);
        m.clock[0] = t;
        let t2 = sc.write(&mut m, 0, 0, 8);
        // Only cache stalls, no messages.
        assert_eq!(m.counters()[0].messages, 0);
        assert_eq!(m.counters()[0].local_accesses, 2);
        assert!(t2 >= t);
    }

    #[test]
    fn remote_read_moves_one_block() {
        let (mut m, mut sc) = setup(2, 64);
        // Block 64 (page 1, home node 1) read by node 0.
        let t = sc.read(&mut m, 0, PAGE_SIZE, 8);
        assert!(t > 1000);
        assert_eq!(sc.block_state(0, PAGE_SIZE / 64), BlockState::Shared);
        assert_eq!(m.counters()[0].fetches, 1);
        // A 64-byte block moved, not a 4 KB page.
        assert!(m.counters()[0].bytes < 256);
        // Warm read: free.
        m.clock[0] = t;
        let t2 = sc.read(&mut m, 0, PAGE_SIZE + 8, 8);
        assert_eq!(m.counters()[0].fetches, 1);
        assert!(t2 - t < 100);
    }

    #[test]
    fn write_invalidates_sharers() {
        let (mut m, mut sc) = setup(3, 64);
        let b = PAGE_SIZE / 64; // first block of page 1, home = node 1
                                // Nodes 0 and 2 read it.
        let t0 = sc.read(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t0;
        let t2 = sc.read(&mut m, 2, PAGE_SIZE, 8);
        m.clock[2] = t2;
        assert_eq!(sc.block_state(0, b), BlockState::Shared);
        assert_eq!(sc.block_state(2, b), BlockState::Shared);
        // Node 0 writes: node 2's copy must be invalidated.
        let tw = sc.write(&mut m, 0, PAGE_SIZE, 8);
        assert!(tw > t0);
        assert_eq!(sc.block_state(0, b), BlockState::Exclusive);
        assert_eq!(sc.block_state(2, b), BlockState::Invalid);
        assert_eq!(m.counters()[2].invalidations, 1);
    }

    #[test]
    fn read_recalls_remote_owner() {
        let (mut m, mut sc) = setup(3, 64);
        let b = PAGE_SIZE / 64;
        // Node 0 takes the block exclusive.
        let t = sc.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        assert_eq!(sc.block_state(0, b), BlockState::Exclusive);
        // Node 2 reads: the home must recall from node 0 first.
        let t2 = sc.read(&mut m, 2, PAGE_SIZE, 8);
        assert!(t2 > 3000, "recall involves three hops, got {t2}");
        assert_eq!(sc.block_state(0, b), BlockState::Shared);
        assert_eq!(sc.block_state(2, b), BlockState::Shared);
    }

    #[test]
    fn home_write_recalls_owner() {
        let (mut m, mut sc) = setup(2, 64);
        let b = PAGE_SIZE / 64; // home = node 1
        let t = sc.write(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        // Home (node 1) writes its own block: recall + invalidate node 0.
        let t1 = sc.write(&mut m, 1, PAGE_SIZE, 8);
        assert!(t1 > 1000);
        assert_eq!(sc.block_state(0, b), BlockState::Invalid);
        // Now the home writes again: free.
        m.clock[1] = t1;
        let t2 = sc.write(&mut m, 1, PAGE_SIZE + 8, 8);
        assert_eq!(m.counters()[1].local_accesses, 1);
        assert!(t2 - t1 < 100);
    }

    #[test]
    fn upgrade_from_shared_sends_no_data() {
        let (mut m, mut sc) = setup(2, 64);
        let t = sc.read(&mut m, 0, PAGE_SIZE, 8);
        m.clock[0] = t;
        let fetches_before = m.counters()[0].fetches;
        let _ = sc.write(&mut m, 0, PAGE_SIZE, 8);
        // Upgrade: no new data fetch.
        assert_eq!(m.counters()[0].fetches, fetches_before);
        assert_eq!(m.counters()[0].remote_writes, 1);
    }

    #[test]
    fn coarse_blocks_amortize() {
        // Reading 4 KB with 4 KB blocks = 1 fetch; with 64 B blocks = 64.
        let (mut m_fine, mut fine) = setup(2, 64);
        let (mut m_coarse, mut coarse) = setup(2, 4096);
        let t_f = fine.read(&mut m_fine, 0, PAGE_SIZE, PAGE_SIZE);
        let t_c = coarse.read(&mut m_coarse, 0, PAGE_SIZE, PAGE_SIZE);
        assert_eq!(m_fine.counters()[0].fetches, 64);
        assert_eq!(m_coarse.counters()[0].fetches, 1);
        assert!(t_c < t_f, "coarse {t_c} should beat fine {t_f}");
    }

    #[test]
    fn sc_locks_and_barriers() {
        let (mut m, mut sc) = setup(2, 64);
        let t = sc.lock(&mut m, 0, LockId(0)).expect("free");
        m.clock[0] = t;
        assert_eq!(sc.lock(&mut m, 1, LockId(0)), None);
        m.clock[0] = t + 1000;
        let _ = sc.unlock(&mut m, 0, LockId(0));
        let w = m.take_wakeups();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, 1);
        // Barrier round trip.
        assert_eq!(sc.barrier(&mut m, 1, BarrierId(0)), None);
        assert!(sc.barrier(&mut m, 0, BarrierId(0)).is_some());
        assert_eq!(m.take_wakeups().len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        let _ = Sc::new(48);
    }

    #[test]
    fn false_sharing_ping_pong() {
        // Two writers on the same block alternate: every write is remote.
        let (mut m, mut sc) = setup(3, 64);
        let mut t1 = 0;
        let mut t2 = 0;
        for i in 0..4 {
            m.clock[1] = t1.max(t2);
            t1 = sc.write(&mut m, 1, PAGE_SIZE + (i % 2) * 8, 4);
            m.clock[2] = t1;
            t2 = sc.write(&mut m, 2, PAGE_SIZE + 32, 4);
        }
        // 8 writes; all but node 1's very first (it is the home and nobody
        // else had a copy yet) cause coherence traffic.
        assert_eq!(
            m.counters()[1].remote_writes + m.counters()[2].remote_writes,
            7
        );
    }
}
