//! Byte-identity of batched baton handoffs (DESIGN.md §14).
//!
//! Batching is a host-side scheduling optimization: the driver processes
//! the exact same operation sequence at the exact same simulated times
//! whether the operations arrive one per handoff or in runs. These tests
//! pin that invariant across the whole application catalog, every
//! protocol, the figure-3 layer presets, and chaos fault plans — and pin
//! the two perf claims the optimization is justified by (fewer handoffs,
//! zero fresh thread spawns once the worker pool is warm).

use ssm_apps::catalog::{suite, Scale};
use ssm_core::{LayerConfig, Protocol};
use ssm_sweep::{execute_with, Cell, CellRecord, CellStatus, Sweep, SweepOpts};

const PROCS: usize = 2;

fn run(cell: &Cell, batching: bool) -> CellRecord {
    execute_with(cell, None, batching).unwrap_or_else(|e| panic!("{} failed: {e}", cell.label()))
}

/// Asserts the batched and unbatched runs of `cell` agree on everything
/// the simulation defines: cycles, per-processor breakdowns, protocol
/// activity, machine counters, verification. Only the engine-scheduling
/// counters (handoffs, batch sizes, flush causes) may differ.
fn assert_identical(cell: &Cell) {
    let batched = run(cell, true);
    let unbatched = run(cell, false);
    let label = cell.label();
    assert_eq!(
        batched.total_cycles, unbatched.total_cycles,
        "{label}: total_cycles"
    );
    assert_eq!(batched.per_proc, unbatched.per_proc, "{label}: per_proc");
    assert_eq!(batched.activity, unbatched.activity, "{label}: activity");
    assert_eq!(
        batched.counters.without_engine_counters(),
        unbatched.counters.without_engine_counters(),
        "{label}: machine counters"
    );
    assert!(batched.verified, "{label}: {:?}", batched.verify_error);
    assert!(unbatched.verified, "{label}: {:?}", unbatched.verify_error);
    // The whole point: batching never takes MORE handoffs, and an
    // unbatched run batches nothing.
    assert!(
        batched.counters.handoffs <= unbatched.counters.handoffs,
        "{label}: batching increased handoffs ({} > {})",
        batched.counters.handoffs,
        unbatched.counters.handoffs
    );
    assert_eq!(unbatched.counters.ops_batched, 0, "{label}");
    assert_eq!(
        batched.counters.sim_ops, unbatched.counters.sim_ops,
        "{label}: op streams differ"
    );
}

#[test]
fn batched_results_are_identical_across_the_catalog() {
    // Every application under the ideal machine and under every
    // (protocol, figure-3 layer preset) pair at test scale.
    for app in suite() {
        assert_identical(&Cell::ideal(app.name, PROCS, Scale::Test));
        for cfg in LayerConfig::figure3() {
            for proto in [
                Protocol::Hlrc,
                Protocol::Aurc,
                Protocol::Sc,
                Protocol::ScDelayed,
            ] {
                assert_identical(&Cell::new(app.name, proto, cfg, PROCS, Scale::Test));
            }
        }
    }
}

#[test]
fn batched_results_are_identical_under_fault_injection() {
    // Chaos plans exercise the reliable-delivery sublayer (timeouts,
    // retransmissions, dup suppression); the injected-fault schedule is a
    // pure function of the message stream, which batching must not
    // perturb.
    for app in ["FFT", "Radix", "Water-Nsquared"] {
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            for (rate_ppm, seed) in [(50_000, 7), (200_000, 13)] {
                let cell = Cell::new(app, proto, LayerConfig::base(), PROCS, Scale::Test)
                    .with_faults(rate_ppm, seed);
                assert_identical(&cell);
            }
        }
    }
}

#[test]
fn batching_cuts_handoffs_at_least_3x_on_most_apps() {
    // The ISSUE's CI-assertable perf evidence: on a 1-CPU container the
    // handoff counter, not wall-clock, is the witness. Compute-heavy and
    // local-access-heavy applications must drop by >= 3x; at least 5 of
    // the catalog's apps must clear that bar under HLRC at test scale.
    let mut cleared = Vec::new();
    let mut ratios = Vec::new();
    for app in suite() {
        let cell = Cell::new(
            app.name,
            Protocol::Hlrc,
            LayerConfig::base(),
            PROCS,
            Scale::Test,
        );
        let batched = run(&cell, true).counters.handoffs;
        let unbatched = run(&cell, false).counters.handoffs;
        assert!(
            batched > 0 && unbatched > 0,
            "{}: no handoffs counted",
            app.name
        );
        let ratio = unbatched as f64 / batched as f64;
        ratios.push(format!("{} {ratio:.1}x", app.name));
        if ratio >= 3.0 {
            cleared.push(app.name);
        }
    }
    assert!(
        cleared.len() >= 5,
        "only {} app(s) reached a 3x handoff reduction: {}",
        cleared.len(),
        ratios.join(", ")
    );
}

#[test]
fn second_cell_of_a_sweep_spawns_no_threads() {
    // With one sweep worker the two cells run back to back on the same
    // WorkerSet: the first cell's simulation spawns its application
    // threads, the second leases every one of them back out of the idle
    // pool. `threads_spawned`/`threads_reused` come from the simulation's
    // own ThreadPool, so the guard thread is not in these numbers.
    let cells = [
        Cell::ideal("FFT", PROCS, Scale::Test),
        Cell::ideal("Radix", PROCS, Scale::Test),
    ];
    let run = Sweep::enumerate(&cells)
        .options(SweepOpts {
            jobs: 1,
            cache: false,
            progress: false,
            summary: false,
            ..SweepOpts::default()
        })
        .run();
    let rec = |i: usize| match &run.outcomes[i].status {
        CellStatus::Done(r) => r,
        other => panic!("cell {i} did not complete: {other:?}"),
    };
    let first = rec(0);
    assert_eq!(
        (first.threads_spawned, first.threads_reused),
        (PROCS as u64, 0),
        "cold pool: first cell spawns one thread per simulated processor"
    );
    let second = rec(1);
    assert_eq!(
        (second.threads_spawned, second.threads_reused),
        (0, PROCS as u64),
        "warm pool: second cell must recycle, not spawn"
    );
}
