//! End-to-end tests of sharded sweep execution, driving the `sweepdemo`
//! binary the way CI and a user would: coordinator runs (`--shards N`),
//! hand-launched workers (`--worker --shard i/N`), merge determinism
//! across shard counts, conflict detection, and worker retry.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use ssm_sweep::{CACHE_FILE, SUMMARY_FILE};

const DEMO: &str = env!("CARGO_BIN_EXE_sweepdemo");
/// Cells sweepdemo enumerates: 2 apps x (baseline + HLRC + SC).
const DEMO_CELLS: usize = 6;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ssm-sweep-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn demo(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(DEMO);
    cmd.args(["--procs", "2", "--scale", "test", "--jobs", "2"])
        .args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("run sweepdemo")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn cache_lines(dir: &Path) -> usize {
    read(&dir.join(CACHE_FILE)).lines().count()
}

#[test]
fn shard_counts_one_two_seven_merge_byte_identically() {
    let root = tmpdir("counts");
    let mut outputs = Vec::new();
    for shards in ["1", "2", "7"] {
        let dir = root.join(format!("n{shards}"));
        let out = demo(
            &["--shards", shards, "--results", dir.to_str().unwrap()],
            &[],
        );
        assert!(
            out.status.success(),
            "--shards {shards} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((shards, dir, out));
    }
    let (_, ref_dir, ref_out) = &outputs[0];
    let ref_cache = read(&ref_dir.join(CACHE_FILE));
    let ref_summary = read(&ref_dir.join(SUMMARY_FILE));
    assert_eq!(ref_cache.lines().count(), DEMO_CELLS);
    // Canonical merged lines carry no wall time.
    assert!(!ref_summary.contains("\"host_ms\":1"), "host time leaked");
    for (shards, dir, out) in &outputs[1..] {
        assert_eq!(
            read(&dir.join(CACHE_FILE)),
            ref_cache,
            "cache differs for --shards {shards}"
        );
        assert_eq!(
            read(&dir.join(SUMMARY_FILE)),
            ref_summary,
            "summary differs for --shards {shards}"
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&ref_out.stdout),
            "stdout differs for --shards {shards}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sharded_run_renders_the_same_table_as_a_plain_run() {
    let root = tmpdir("vs-plain");
    let plain_dir = root.join("plain");
    let plain = demo(
        &["--no-cache", "--results", plain_dir.to_str().unwrap()],
        &[],
    );
    assert!(plain.status.success());
    let dir = root.join("sharded");
    let sharded = demo(&["--shards", "3", "--results", dir.to_str().unwrap()], &[]);
    assert!(
        sharded.status.success(),
        "{}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&sharded.stdout),
        "a sharded sweep must render exactly what a local sweep renders"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_coordinator_rerun_executes_nothing() {
    let root = tmpdir("warm");
    let dir = root.join("results");
    let cold = demo(&["--shards", "3", "--results", dir.to_str().unwrap()], &[]);
    assert!(cold.status.success());
    let cache_before = read(&dir.join(CACHE_FILE));

    let warm = demo(&["--shards", "3", "--results", dir.to_str().unwrap()], &[]);
    assert!(warm.status.success());
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("0 executed"), "not all cached:\n{stderr}");
    assert_eq!(
        read(&dir.join(CACHE_FILE)),
        cache_before,
        "a warm rerun must not grow the cache"
    );
    // The same cells re-sharded differently still come entirely from the
    // main cache (the coordinator seeds shard caches from it).
    let resharded = demo(&["--shards", "2", "--results", dir.to_str().unwrap()], &[]);
    assert!(resharded.status.success());
    let stderr = String::from_utf8_lossy(&resharded.stderr);
    assert!(
        stderr.contains("0 executed"),
        "reshard re-executed:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crashed_worker_is_relaunched_and_the_sweep_completes() {
    let root = tmpdir("retry");
    let dir = root.join("results");
    let marker = root.join("fail-once.marker");
    let out = demo(
        &[
            "--shards",
            "2",
            "--shard-retries",
            "2",
            "--results",
            dir.to_str().unwrap(),
        ],
        &[("SSM_SWEEPDEMO_FAIL_ONCE", marker.to_str().unwrap())],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        marker.exists(),
        "the fail-once hook never fired; shard 0 of 2 owns no cells?"
    );
    assert!(
        stderr.contains("retrying") && stderr.contains("incomplete"),
        "no retry reported:\n{stderr}"
    );
    assert_eq!(cache_lines(&dir), DEMO_CELLS);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn zero_retries_surfaces_the_missing_cells_as_failures() {
    let root = tmpdir("no-retry");
    let dir = root.join("results");
    let marker = root.join("fail-once.marker");
    let out = demo(
        &[
            "--shards",
            "2",
            "--shard-retries",
            "0",
            "--results",
            dir.to_str().unwrap(),
        ],
        &[("SSM_SWEEPDEMO_FAIL_ONCE", marker.to_str().unwrap())],
    );
    // The crashed shard's cells are missing; sweepdemo exits nonzero and
    // the coordinator reports them failed rather than hanging or lying.
    assert!(marker.exists());
    assert!(!out.status.success());
    let summary = read(&dir.join(SUMMARY_FILE));
    assert!(summary.contains("\"status\":\"failed\""), "{summary}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn conflicting_shard_records_abort_the_merge() {
    let root = tmpdir("conflict");
    let dir = root.join("results");
    let cold = demo(&["--shards", "2", "--results", dir.to_str().unwrap()], &[]);
    assert!(cold.status.success());

    // Corrupt one shard record's measured cycles: now the shard cache
    // disagrees with the merged main cache for that hash.
    let shards_root = dir.join("shards");
    let mut tampered = false;
    for entry in std::fs::read_dir(&shards_root).expect("shard dirs") {
        let cache = entry.expect("entry").path().join(CACHE_FILE);
        if !cache.exists() || tampered {
            continue;
        }
        let text = read(&cache);
        if let Some(pos) = text.find("\"total_cycles\":") {
            let mutated = format!(
                "{}\"total_cycles\":9{}",
                &text[..pos],
                &text[pos + "\"total_cycles\":".len()..]
            );
            std::fs::write(&cache, mutated).expect("tamper");
            tampered = true;
        }
    }
    assert!(tampered, "no shard cache line to tamper with");

    let warm = demo(&["--shards", "2", "--results", dir.to_str().unwrap()], &[]);
    assert!(!warm.status.success(), "merge accepted conflicting records");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        stderr.contains("conflicting records"),
        "unclear conflict error:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hand_launched_workers_compose_with_a_merging_coordinator() {
    // The multi-machine pattern from EXPERIMENTS.md: run each shard's
    // worker yourself (in real life: one per machine, rsync the shard
    // dirs back), then let a coordinator run merge without executing.
    let root = tmpdir("rsync");
    let dir = root.join("results");
    for shard in ["0/2", "1/2"] {
        let shard_dir = dir
            .join("shards")
            .join(format!("{}-of-2", shard.split('/').next().unwrap()));
        let out = demo(
            &[
                "--worker",
                "--shard",
                shard,
                "--results",
                shard_dir.to_str().unwrap(),
                "--quiet",
            ],
            &[],
        );
        assert!(
            out.status.success(),
            "worker {shard} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Workers write records and a summary, but never render a table.
        assert!(out.stdout.is_empty(), "worker printed to stdout");
        assert!(shard_dir.join(SUMMARY_FILE).exists());
    }
    let merge = demo(&["--shards", "2", "--results", dir.to_str().unwrap()], &[]);
    assert!(merge.status.success());
    let stderr = String::from_utf8_lossy(&merge.stderr);
    assert!(
        stderr.contains("0 executed"),
        "coordinator re-executed hand-worked cells:\n{stderr}"
    );
    assert_eq!(cache_lines(&dir), DEMO_CELLS);
    let _ = std::fs::remove_dir_all(&root);
}
