//! Cross-layer invariants of the sweep's result schema:
//!
//! * the six Figure-4 buckets stored per processor account for the
//!   simulator's per-processor time *exactly* — for every protocol and
//!   layer configuration, the serialized rows reproduce the engine's
//!   breakdowns bucket-for-bucket and sum to the same totals (nothing is
//!   dropped or double-counted by the record projection);
//! * bucket sums stay within the documented handler-slip bound of wall
//!   time (see the driver docs: coverage may exceed wall time by <= 1.25x);
//! * a record round-trips through its JSON cache line unchanged.

use ssm_apps::catalog::{by_name, Scale};
use ssm_core::{LayerConfig, Protocol, SimBuilder};
use ssm_stats::Bucket;
use ssm_sweep::{execute, Cell, CellRecord, Json};

const APP: &str = "FFT";
const PROCS: usize = 4;

/// Protocol x config points covering every protocol and, for HLRC, every
/// Figure-3 configuration.
fn points() -> Vec<(Protocol, LayerConfig)> {
    let mut pts = Vec::new();
    for cfg in LayerConfig::figure3() {
        pts.push((Protocol::Hlrc, cfg));
    }
    let bb = *LayerConfig::figure3().first().expect("figure3 nonempty");
    for proto in [
        Protocol::Aurc,
        Protocol::Sc,
        Protocol::ScDelayed,
        Protocol::Ideal,
    ] {
        pts.push((proto, LayerConfig::base()));
        pts.push((proto, bb));
    }
    pts
}

/// Runs the same point directly on the simulator, the way `execute` does.
fn direct_run(cell: &Cell) -> ssm_core::RunResult {
    let spec = by_name(&cell.app).expect("known app");
    let w = spec.build(cell.scale);
    let mut b = SimBuilder::new(cell.protocol)
        .procs(cell.procs)
        .sc_block(spec.sc_block)
        .home_policy(cell.homes);
    if cell.protocol != Protocol::Ideal {
        b = b.comm(cell.comm.params()).proto(cell.proto.costs());
    }
    b.run(w.as_ref())
}

#[test]
fn six_buckets_sum_to_per_processor_totals_for_every_protocol_and_config() {
    for (protocol, cfg) in points() {
        let cell = Cell::new(APP, protocol, cfg, PROCS, Scale::Test);
        let rec = execute(&cell).expect("cell executes");
        let r = direct_run(&cell);
        let label = cell.label();

        assert_eq!(rec.total_cycles, r.total_cycles, "{label}: wall time");
        assert_eq!(rec.per_proc.len(), PROCS, "{label}: row count");
        for (p, engine) in r.per_proc.iter().enumerate() {
            let row = rec.breakdown(p);
            // Bucket-for-bucket: the record keeps exactly what the engine
            // measured.
            for k in Bucket::ALL {
                assert_eq!(row.get(k), engine.get(k), "{label}: P{p} {}", k.label());
            }
            // The six stored buckets sum exactly to the processor's total
            // accounted time...
            let stored_sum: u64 = (0..Bucket::ALL.len()).map(|i| rec.per_proc[p][i]).sum();
            assert_eq!(stored_sum, engine.total(), "{label}: P{p} total");
            // ...and stay within the documented handler-slip bound of the
            // parallel wall time.
            assert!(
                stored_sum as f64 <= r.total_cycles as f64 * 1.25,
                "{label}: P{p} buckets {stored_sum} exceed 1.25x wall {}",
                r.total_cycles
            );
        }
    }
}

#[test]
fn records_round_trip_through_cache_lines_unchanged() {
    for (protocol, cfg) in points() {
        let cell = Cell::new(APP, protocol, cfg, PROCS, Scale::Test);
        let rec = execute(&cell).expect("cell executes");
        let line = rec.to_json().render();
        assert!(!line.contains('\n'), "cache lines are single-line");
        let back = CellRecord::from_json(&Json::parse(&line).expect("parse")).expect("deserialize");
        assert_eq!(back, rec, "{}: round trip", cell.label());
        assert_eq!(back.cell.hash(), cell.hash(), "{}: hash", cell.label());
    }
}
