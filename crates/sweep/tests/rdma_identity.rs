//! Hash-space extension guard for the RDMA protocol: linking `ssm-rdma`
//! (and threading its comm knobs through `CommParams`) must not disturb a
//! single pre-existing cell hash or cache byte. A warm figure-3-style
//! rerun executes zero cells and leaves the cache byte-identical; adding
//! the RDMA bars only *appends* to the cache.

use std::path::{Path, PathBuf};

use ssm_apps::catalog::Scale;
use ssm_core::{LayerConfig, Protocol};
use ssm_sweep::{Cell, Sweep, SweepOpts, CACHE_FILE};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ssm-rdma-identity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(dir: &Path) -> SweepOpts {
    SweepOpts {
        jobs: 2,
        cache: true,
        progress: false,
        summary: false,
        results_dir: dir.to_path_buf(),
        ..SweepOpts::default()
    }
}

/// The figure-3 enumeration shape (baseline + ideal + HLRC grid + SC
/// grid) for one application at test scale.
fn figure3_cells(app: &str) -> Vec<Cell> {
    let mut cells = vec![
        Cell::baseline(app, Scale::Test),
        Cell::ideal(app, 2, Scale::Test),
    ];
    for cfg in LayerConfig::figure3() {
        cells.push(Cell::new(app, Protocol::Hlrc, cfg, 2, Scale::Test));
    }
    for label in ["B+O", "BO", "HO", "AO", "WO"] {
        let cfg = LayerConfig::parse(label).expect("known label");
        cells.push(Cell::new(app, Protocol::Sc, cfg, 2, Scale::Test));
    }
    cells
}

/// The RDMA bars that the `rdmagrid` binary adds on top of figure 3.
fn rdma_cells(app: &str) -> Vec<Cell> {
    LayerConfig::figure3()
        .iter()
        .map(|cfg| Cell::new(app, Protocol::Rdma, *cfg, 2, Scale::Test))
        .collect()
}

#[test]
fn warm_figure3_rerun_executes_nothing_and_diffs_clean() {
    let dir = tmpdir("warm");
    let cells = figure3_cells("FFT");

    let cold = Sweep::enumerate(&cells).options(opts(&dir)).run();
    assert_eq!(cold.cached, 0);
    assert_eq!(cold.executed, cells.len());
    let cache_after_cold = std::fs::read(dir.join(CACHE_FILE)).expect("cache");

    // Warm rerun with the RDMA crate linked into this very test binary:
    // zero executions, and the cache file is byte-identical.
    let warm = Sweep::enumerate(&cells).options(opts(&dir)).run();
    assert_eq!(
        warm.executed, 0,
        "warm figure3 rerun must be all cache hits"
    );
    assert_eq!(warm.cached, cells.len());
    assert_eq!(
        std::fs::read(dir.join(CACHE_FILE)).expect("cache"),
        cache_after_cold,
        "warm rerun must not rewrite a single cache byte"
    );

    // Adding the RDMA bars executes exactly the new cells and *appends*:
    // the pre-existing cache bytes are an untouched prefix.
    let mut extended = cells.clone();
    extended.extend(rdma_cells("FFT"));
    let ext = Sweep::enumerate(&extended).options(opts(&dir)).run();
    assert_eq!(ext.cached, cells.len());
    assert_eq!(ext.executed, extended.len() - cells.len());
    let cache_after_ext = std::fs::read(dir.join(CACHE_FILE)).expect("cache");
    assert!(
        cache_after_ext.starts_with(&cache_after_cold),
        "RDMA cells must append to the cache, not rewrite it"
    );

    // And the extended enumeration is itself warm-stable.
    let warm2 = Sweep::enumerate(&extended).options(opts(&dir)).run();
    assert_eq!(warm2.executed, 0);
    assert_eq!(
        std::fs::read(dir.join(CACHE_FILE)).expect("cache"),
        cache_after_ext
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rdma_cells_have_hashes_disjoint_from_every_other_protocol() {
    // Same app/config/procs/scale, different protocol ⇒ different hash;
    // the RDMA variant extends the hash space instead of colliding into
    // any pre-existing cell.
    let mut hashes = std::collections::HashSet::new();
    for proto in Protocol::ALL {
        if proto == Protocol::Ideal {
            continue; // ideal cells normalize layer fields away by design
        }
        for cfg in LayerConfig::figure3() {
            let cell = Cell::new("FFT", proto, cfg, 2, Scale::Test);
            assert!(
                hashes.insert(cell.hash()),
                "hash collision at {} {}",
                proto.label(),
                cfg.label()
            );
        }
    }
}
