//! Behavioral tests of the parallel executor: deterministic ordering
//! independent of worker count, duplicate collapsing, failed cells that
//! don't kill the sweep, and the resumable on-disk cache.

use std::path::PathBuf;

use ssm_apps::catalog::Scale;
use ssm_core::{LayerConfig, Protocol};
use ssm_sweep::{Cell, CellStatus, Json, Sweep, SweepOpts, CACHE_FILE, SUMMARY_FILE};

fn run_sweep(cells: &[Cell], opts: &SweepOpts) -> ssm_sweep::SweepRun {
    Sweep::enumerate(cells).options(opts.clone()).run()
}

fn quiet_opts() -> SweepOpts {
    SweepOpts {
        jobs: 2,
        cache: false,
        progress: false,
        summary: false,
        ..SweepOpts::default()
    }
}

fn small_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for app in ["FFT", "Radix"] {
        cells.push(Cell::baseline(app, Scale::Test));
        cells.push(Cell::ideal(app, 2, Scale::Test));
        for proto in [Protocol::Hlrc, Protocol::Sc] {
            cells.push(Cell::new(app, proto, LayerConfig::base(), 2, Scale::Test));
        }
    }
    cells
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ssm-sweep-exec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn ordering_is_deterministic_across_worker_counts() {
    let cells = small_cells();
    let serial = run_sweep(
        &cells,
        &SweepOpts {
            jobs: 1,
            ..quiet_opts()
        },
    );
    let parallel = run_sweep(
        &cells,
        &SweepOpts {
            jobs: 4,
            ..quiet_opts()
        },
    );
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a.hash, b.hash, "enumeration order differs");
        // The simulator is deterministic, so parallel execution must
        // reproduce serial results cycle-for-cycle. Host wall time and the
        // thread-recycling stats are the legitimately nondeterministic
        // fields (the latter depend on how warm the worker pool is when
        // the cell starts), matching what `CellRecord::canonical` zeroes.
        match (&a.status, &b.status) {
            (CellStatus::Done(x), CellStatus::Done(y)) => {
                let mut y = y.clone();
                y.host_ms = x.host_ms;
                y.threads_spawned = x.threads_spawned;
                y.threads_reused = x.threads_reused;
                assert_eq!(*x, y);
            }
            other => panic!("unexpected statuses {other:?}"),
        }
    }
}

#[test]
fn fault_injection_is_deterministic_across_runs_and_workers() {
    // Same (seed, rate) must produce the same injected-fault schedule —
    // and hence bit-identical records — on every rerun and under any
    // worker count (each cell's simulation is single-threaded).
    let cells: Vec<Cell> = ["FFT", "Radix"]
        .iter()
        .flat_map(|app| {
            [Protocol::Hlrc, Protocol::Sc].map(|proto| {
                Cell::new(app, proto, LayerConfig::base(), 2, Scale::Test).with_faults(50_000, 7)
            })
        })
        .collect();
    let serial = run_sweep(
        &cells,
        &SweepOpts {
            jobs: 1,
            ..quiet_opts()
        },
    );
    let parallel = run_sweep(
        &cells,
        &SweepOpts {
            jobs: 4,
            ..quiet_opts()
        },
    );
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        match (&a.status, &b.status) {
            (CellStatus::Done(x), CellStatus::Done(y)) => {
                assert!(
                    x.verified,
                    "{}: wrong result under faults: {:?}",
                    a.cell.label(),
                    x.verify_error
                );
                assert!(
                    x.counters.faults_injected() > 0,
                    "{}: no faults fired at 5% per class",
                    a.cell.label()
                );
                assert_eq!(
                    x.counters.retransmissions,
                    x.counters.faults_dropped,
                    "{}: reliable delivery retransmits once per loss",
                    a.cell.label()
                );
                let mut y = y.clone();
                y.host_ms = x.host_ms;
                y.threads_spawned = x.threads_spawned;
                y.threads_reused = x.threads_reused;
                assert_eq!(
                    *x,
                    y,
                    "{}: fault schedule varies with worker count",
                    a.cell.label()
                );
            }
            other => panic!("unexpected statuses {other:?}"),
        }
    }
}

#[test]
fn duplicate_cells_collapse_to_one_execution() {
    let one = Cell::ideal("FFT", 2, Scale::Test);
    let run = run_sweep(&[one.clone(), one.clone(), one.clone()], &quiet_opts());
    assert_eq!(run.outcomes.len(), 1);
    assert_eq!(run.executed, 1);
    assert!(run.record(&one).is_some());
}

#[test]
fn failed_cells_do_not_kill_the_sweep() {
    let good = Cell::ideal("FFT", 2, Scale::Test);
    let bad = Cell::new(
        "No-Such-App",
        Protocol::Hlrc,
        LayerConfig::base(),
        2,
        Scale::Test,
    );
    let run = run_sweep(&[bad.clone(), good.clone()], &quiet_opts());
    assert_eq!(run.failed, 1);
    assert!(run.record(&good).is_some(), "good cell still completes");
    match &run.outcome(&bad).expect("outcome kept").status {
        CellStatus::Failed(e) => assert!(e.contains("No-Such-App"), "{e}"),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn rerun_completes_entirely_from_cache() {
    let dir = tmpdir("cache");
    let cells = small_cells();
    let opts = SweepOpts {
        cache: true,
        summary: true,
        results_dir: dir.clone(),
        ..quiet_opts()
    };
    let first = run_sweep(&cells, &opts);
    assert_eq!(first.cached, 0);
    assert_eq!(first.executed, first.outcomes.len());

    // One JSONL line per executed cell.
    let cache = std::fs::read_to_string(dir.join(CACHE_FILE)).expect("cache file");
    assert_eq!(cache.lines().count(), first.executed);

    // The summary is valid JSON with one entry per cell.
    let summary = std::fs::read_to_string(dir.join(SUMMARY_FILE)).expect("summary");
    let summary = Json::parse(summary.trim()).expect("summary parses");
    assert_eq!(
        summary
            .get("cells")
            .and_then(|c| c.as_arr())
            .map(<[Json]>::len),
        Some(first.outcomes.len())
    );

    let second = run_sweep(&cells, &opts);
    assert_eq!(second.executed, 0, "rerun must be all cache hits");
    assert_eq!(second.cached, first.outcomes.len());
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.status, b.status, "cached result differs from fresh");
        assert!(b.cached);
    }

    // A new cell joins without invalidating the cache (resumable sweep).
    let mut extended = cells.clone();
    extended.push(Cell::new(
        "FFT",
        Protocol::Aurc,
        LayerConfig::base(),
        2,
        Scale::Test,
    ));
    let third = run_sweep(&extended, &opts);
    assert_eq!(third.executed, 1);
    assert_eq!(third.cached, cells.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_runs_do_not_touch_disk() {
    let dir = tmpdir("nocache");
    let opts = SweepOpts {
        cache: false,
        summary: false,
        results_dir: dir.clone(),
        ..quiet_opts()
    };
    let run = run_sweep(&[Cell::ideal("FFT", 2, Scale::Test)], &opts);
    assert_eq!(run.executed, 1);
    assert!(!dir.exists(), "no-cache sweep created {dir:?}");
}
