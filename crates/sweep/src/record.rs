//! The measured outcome of one cell, in the machine-readable schema that
//! both the on-disk cache (`results/sweep_cache.jsonl`) and the benchmark
//! trajectory (`results/bench_summary.json`) use.
//!
//! A record is self-contained: everything any figure/table binary renders
//! (speedups via the baseline cell, Figure-4 bucket breakdowns, Table-4
//! protocol activity, raw counters, per-processor views) reconstructs from
//! it without re-running the simulator.

use ssm_core::RunResult;
use ssm_stats::{Breakdown, Bucket, Counters, ProtoActivity};

use crate::cell::Cell;
use crate::json::Json;

/// Current record schema version; bump when the schema changes shape so
/// stale cache lines are skipped rather than misread.
pub const SCHEMA_VERSION: u64 = 1;

/// Everything measured for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell this record measures.
    pub cell: Cell,
    /// Parallel execution time (last processor's finish), cycles.
    pub total_cycles: u64,
    /// Per-processor Figure-4 buckets, in [`Bucket::ALL`] order.
    pub per_proc: Vec<[u64; 6]>,
    /// Protocol-activity detail summed over processors (Table 4).
    pub activity: ProtoActivity,
    /// Event counters summed over processors.
    pub counters: Counters,
    /// Whether the workload's self-verification passed.
    pub verified: bool,
    /// The verification failure message, if any.
    pub verify_error: Option<String>,
    /// Host (real) wall time spent simulating this cell, milliseconds.
    pub host_ms: u64,
    /// How many execution attempts this result took (1 = first try; >1
    /// means `--retries` re-ran the cell after a panic or timeout).
    pub attempts: u64,
    /// OS threads freshly spawned for this cell (host-side, depends on
    /// worker-pool warmth — zeroed in [`CellRecord::canonical`] like
    /// `host_ms`).
    pub threads_spawned: u64,
    /// OS threads recycled from the sweep's worker pool for this cell
    /// (host-side, zeroed in canonical form).
    pub threads_reused: u64,
}

impl CellRecord {
    /// Builds a record from a completed simulation.
    pub fn from_run(cell: Cell, r: &RunResult, host_ms: u64) -> Self {
        let per_proc = r
            .per_proc
            .iter()
            .map(|b| {
                let mut row = [0u64; 6];
                for (i, k) in Bucket::ALL.iter().enumerate() {
                    row[i] = b.get(*k);
                }
                row
            })
            .collect();
        CellRecord {
            cell,
            total_cycles: r.total_cycles,
            per_proc,
            activity: r.activity,
            counters: r.counters,
            verified: r.verify_error.is_none(),
            verify_error: r.verify_error.clone(),
            host_ms,
            attempts: 1,
            threads_spawned: r.threads_spawned,
            threads_reused: r.threads_reused,
        }
    }

    /// A copy with the nondeterministic fields (`host_ms` and the
    /// pool-warmth-dependent thread stats) zeroed — the form the shard
    /// merge writes, so merged caches come out byte-identical across
    /// reruns and shard counts.
    pub fn canonical(&self) -> Self {
        CellRecord {
            host_ms: 0,
            threads_spawned: 0,
            threads_reused: 0,
            ..self.clone()
        }
    }

    /// Processor `p`'s breakdown.
    pub fn breakdown(&self, p: usize) -> Breakdown {
        let mut b = Breakdown::new();
        for (i, k) in Bucket::ALL.iter().enumerate() {
            b.add(*k, self.per_proc[p][i]);
        }
        b
    }

    /// The all-processor average breakdown (Figure 4's bars).
    pub fn avg_breakdown(&self) -> Breakdown {
        let rows: Vec<Breakdown> = (0..self.per_proc.len())
            .map(|p| self.breakdown(p))
            .collect();
        Breakdown::average(rows.iter())
    }

    /// Serializes to the cache-line schema.
    pub fn to_json(&self) -> Json {
        let a = &self.activity;
        let c = &self.counters;
        Json::Obj(vec![
            ("v".to_string(), Json::Int(SCHEMA_VERSION)),
            ("hash".to_string(), Json::Str(self.cell.hash())),
            ("cell".to_string(), self.cell.to_json()),
            ("total_cycles".to_string(), Json::Int(self.total_cycles)),
            (
                "per_proc".to_string(),
                Json::Arr(
                    self.per_proc
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|&x| Json::Int(x)).collect()))
                        .collect(),
                ),
            ),
            (
                "activity".to_string(),
                Json::Obj(vec![
                    ("handler".to_string(), Json::Int(a.handler)),
                    ("diff_create".to_string(), Json::Int(a.diff_create)),
                    ("diff_apply".to_string(), Json::Int(a.diff_apply)),
                    ("twin".to_string(), Json::Int(a.twin)),
                    ("mprotect".to_string(), Json::Int(a.mprotect)),
                ]),
            ),
            (
                "counters".to_string(),
                Json::Obj(vec![
                    ("messages".to_string(), Json::Int(c.messages)),
                    ("bytes".to_string(), Json::Int(c.bytes)),
                    ("remote_reads".to_string(), Json::Int(c.remote_reads)),
                    ("remote_writes".to_string(), Json::Int(c.remote_writes)),
                    ("fetches".to_string(), Json::Int(c.fetches)),
                    ("diffs".to_string(), Json::Int(c.diffs)),
                    ("diff_words".to_string(), Json::Int(c.diff_words)),
                    ("twins".to_string(), Json::Int(c.twins)),
                    ("write_notices".to_string(), Json::Int(c.write_notices)),
                    ("invalidations".to_string(), Json::Int(c.invalidations)),
                    ("lock_acquires".to_string(), Json::Int(c.lock_acquires)),
                    ("barriers".to_string(), Json::Int(c.barriers)),
                    ("local_accesses".to_string(), Json::Int(c.local_accesses)),
                    ("auto_updates".to_string(), Json::Int(c.auto_updates)),
                    ("retransmissions".to_string(), Json::Int(c.retransmissions)),
                    ("dup_suppressed".to_string(), Json::Int(c.dup_suppressed)),
                    ("faults_dropped".to_string(), Json::Int(c.faults_dropped)),
                    (
                        "faults_duplicated".to_string(),
                        Json::Int(c.faults_duplicated),
                    ),
                    ("faults_delayed".to_string(), Json::Int(c.faults_delayed)),
                    ("faults_stalled".to_string(), Json::Int(c.faults_stalled)),
                    ("handoffs".to_string(), Json::Int(c.handoffs)),
                    ("sim_ops".to_string(), Json::Int(c.sim_ops)),
                    ("ops_batched".to_string(), Json::Int(c.ops_batched)),
                    ("flush_sync".to_string(), Json::Int(c.flush_sync)),
                    ("flush_miss".to_string(), Json::Int(c.flush_miss)),
                    ("flush_cap".to_string(), Json::Int(c.flush_cap)),
                    ("flush_end".to_string(), Json::Int(c.flush_end)),
                ]),
            ),
            ("verified".to_string(), Json::Bool(self.verified)),
            (
                "verify_error".to_string(),
                match &self.verify_error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("host_ms".to_string(), Json::Int(self.host_ms)),
            ("attempts".to_string(), Json::Int(self.attempts)),
            (
                "threads_spawned".to_string(),
                Json::Int(self.threads_spawned),
            ),
            ("threads_reused".to_string(), Json::Int(self.threads_reused)),
        ])
    }

    /// Deserializes a cache line; rejects other schema versions.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v.get("v").and_then(Json::as_u64) {
            Some(SCHEMA_VERSION) => {}
            other => return Err(format!("schema version {other:?} != {SCHEMA_VERSION}")),
        }
        let cell = Cell::from_json(v.get("cell").ok_or("record missing cell")?)?;
        let per_proc = v
            .get("per_proc")
            .and_then(Json::as_arr)
            .ok_or("record missing per_proc")?
            .iter()
            .map(|row| {
                let row = row.as_arr().ok_or("per_proc row not an array")?;
                if row.len() != 6 {
                    return Err(format!("per_proc row has {} buckets", row.len()));
                }
                let mut out = [0u64; 6];
                for (i, x) in row.iter().enumerate() {
                    out[i] = x.as_u64().ok_or("per_proc bucket not a u64")?;
                }
                Ok(out)
            })
            .collect::<Result<Vec<_>, String>>()?;
        let section = |name: &str| v.get(name).ok_or_else(|| format!("record missing {name}"));
        let field = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing {key}"))
        };
        let opt = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_u64).unwrap_or(0);
        let a = section("activity")?;
        let activity = ProtoActivity {
            handler: field(a, "handler")?,
            diff_create: field(a, "diff_create")?,
            diff_apply: field(a, "diff_apply")?,
            twin: field(a, "twin")?,
            mprotect: field(a, "mprotect")?,
        };
        let c = section("counters")?;
        let counters = Counters {
            messages: field(c, "messages")?,
            bytes: field(c, "bytes")?,
            remote_reads: field(c, "remote_reads")?,
            remote_writes: field(c, "remote_writes")?,
            fetches: field(c, "fetches")?,
            diffs: field(c, "diffs")?,
            diff_words: field(c, "diff_words")?,
            twins: field(c, "twins")?,
            write_notices: field(c, "write_notices")?,
            invalidations: field(c, "invalidations")?,
            lock_acquires: field(c, "lock_acquires")?,
            barriers: field(c, "barriers")?,
            local_accesses: field(c, "local_accesses")?,
            auto_updates: field(c, "auto_updates")?,
            // Absent in records written before fault injection existed.
            retransmissions: opt(c, "retransmissions"),
            dup_suppressed: opt(c, "dup_suppressed"),
            faults_dropped: opt(c, "faults_dropped"),
            faults_duplicated: opt(c, "faults_duplicated"),
            faults_delayed: opt(c, "faults_delayed"),
            faults_stalled: opt(c, "faults_stalled"),
            // Absent in records written before batched handoffs existed.
            handoffs: opt(c, "handoffs"),
            sim_ops: opt(c, "sim_ops"),
            ops_batched: opt(c, "ops_batched"),
            flush_sync: opt(c, "flush_sync"),
            flush_miss: opt(c, "flush_miss"),
            flush_cap: opt(c, "flush_cap"),
            flush_end: opt(c, "flush_end"),
        };
        Ok(CellRecord {
            cell,
            total_cycles: v
                .get("total_cycles")
                .and_then(Json::as_u64)
                .ok_or("record missing total_cycles")?,
            per_proc,
            activity,
            counters,
            verified: v
                .get("verified")
                .and_then(Json::as_bool)
                .ok_or("record missing verified")?,
            verify_error: match v.get("verify_error") {
                Some(Json::Str(e)) => Some(e.clone()),
                _ => None,
            },
            host_ms: v.get("host_ms").and_then(Json::as_u64).unwrap_or(0),
            attempts: v.get("attempts").and_then(Json::as_u64).unwrap_or(1),
            threads_spawned: v.get("threads_spawned").and_then(Json::as_u64).unwrap_or(0),
            threads_reused: v.get("threads_reused").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_apps::catalog::Scale;
    use ssm_core::{LayerConfig, Protocol};

    fn record() -> CellRecord {
        CellRecord {
            cell: Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test),
            total_cycles: 123_456,
            per_proc: vec![[1, 2, 3, 4, 5, 6], [60, 50, 40, 30, 20, 10]],
            activity: ProtoActivity {
                handler: 9,
                diff_create: 8,
                diff_apply: 7,
                twin: 6,
                mprotect: 5,
            },
            counters: Counters {
                messages: 100,
                bytes: 1 << 40,
                ..Counters::default()
            },
            verified: false,
            verify_error: Some("sum: got 3, want \"4\"\n(line two)".to_string()),
            host_ms: 42,
            attempts: 1,
            threads_spawned: 3,
            threads_reused: 0,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = record();
        let line = r.to_json().render();
        assert!(!line.contains('\n'), "cache lines must be single-line");
        let back = CellRecord::from_json(&Json::parse(&line).expect("parse")).expect("record");
        assert_eq!(back, r);
    }

    #[test]
    fn breakdown_views_match_buckets() {
        let r = record();
        assert_eq!(r.breakdown(0).total(), 21);
        assert_eq!(r.breakdown(1).get(Bucket::Busy), 60);
        assert_eq!(r.avg_breakdown().get(Bucket::Protocol), 8);
    }

    #[test]
    fn pre_fault_records_parse_with_defaults() {
        // A cache line written before the fault/retry fields existed must
        // still load: counters default to 0, attempts to 1.
        let mut j = record().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "attempts");
            for (k, v) in fields.iter_mut() {
                if k == "counters" {
                    if let Json::Obj(cs) = v {
                        cs.retain(|(ck, _)| !ck.starts_with("faults_") && ck != "retransmissions");
                        cs.retain(|(ck, _)| ck != "dup_suppressed");
                    }
                }
            }
        }
        let back = CellRecord::from_json(&j).expect("old record");
        assert_eq!(back.attempts, 1);
        assert_eq!(back.counters.retransmissions, 0);
        assert_eq!(back.counters.faults_injected(), 0);
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let mut j = record().to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Int(SCHEMA_VERSION + 1);
        }
        assert!(CellRecord::from_json(&j).is_err());
    }
}
