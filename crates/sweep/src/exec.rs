//! The parallel sweep executor.
//!
//! Cells are embarrassingly parallel: each simulation is single-threaded
//! under the engine's baton, shares no mutable state with its neighbours,
//! and is deterministic. The executor therefore fans unique, uncached
//! cells out over a work-stealing pool of OS threads (std only), with:
//!
//! * **panic capture** — a diverging application/configuration reports as
//!   a failed cell instead of killing the sweep (the global panic hook is
//!   taught to stay quiet for sweep-owned threads);
//! * **wall-time limits** — a cell that exceeds `--timeout` is abandoned
//!   (its detached simulation thread's eventual result is discarded) and
//!   reported as timed out;
//! * **deterministic ordering** — results come back in cell-enumeration
//!   order regardless of completion order;
//! * **caching** — completed cells append to the [`ResultStore`] as they
//!   finish, so an interrupted sweep resumes where it stopped;
//! * **progress** — a live stderr line (done/total, cache hits, failures,
//!   ETA).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use ssm_apps::catalog;
use ssm_core::{FaultSpec, Protocol, SimBuilder};
use ssm_engine::{WorkerSet, WORKER_THREAD_PREFIX};

use crate::cell::Cell;
use crate::json::Json;
use crate::record::CellRecord;
use crate::store::{ResultStore, SUMMARY_FILE};

/// How a cell ended.
// `Done` dwarfs the other variants, but it is also the overwhelmingly
// common case; boxing it would cost an allocation per cell for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Completed (possibly with a verification failure — see
    /// [`CellRecord::verified`]).
    Done(CellRecord),
    /// The simulation panicked (deadlock, bad configuration, app bug).
    Failed(String),
    /// The per-cell wall-time limit expired.
    TimedOut(Duration),
}

/// One cell's outcome within a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell.
    pub cell: Cell,
    /// The cell's cache hash.
    pub hash: String,
    /// Whether the result came from the on-disk cache.
    pub cached: bool,
    /// How many execution attempts the final status took (1 unless
    /// `--retries` re-ran the cell; cached outcomes report the attempt
    /// count recorded when the cell was first simulated).
    pub attempts: u64,
    /// The outcome.
    pub status: CellStatus,
}

/// Options controlling one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Worker threads (cells in flight at once).
    pub jobs: usize,
    /// Read/write the on-disk cache (`false` = always execute, never
    /// persist).
    pub cache: bool,
    /// Results directory (cache + summary).
    pub results_dir: PathBuf,
    /// Per-cell wall-time limit.
    pub timeout: Option<Duration>,
    /// Extra execution attempts for cells that panic or time out (0 = a
    /// failure is final on the first try).
    pub retries: u32,
    /// Emit live progress to stderr.
    pub progress: bool,
    /// Write `bench_summary.json` after the sweep.
    pub summary: bool,
    /// Batched baton handoffs inside each simulation (default on;
    /// simulated results are byte-identical either way — see
    /// `ssm-core::driver`).
    pub batching: bool,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            cache: true,
            results_dir: PathBuf::from("results"),
            timeout: None,
            retries: 0,
            progress: true,
            summary: true,
            batching: true,
        }
    }
}

/// The outcome of a sweep: per-cell results in enumeration order plus
/// execution statistics.
#[derive(Debug)]
pub struct SweepRun {
    /// Unique cells in first-occurrence order.
    pub outcomes: Vec<CellOutcome>,
    pub(crate) index: HashMap<String, usize>,
    /// Cells actually simulated during this run.
    pub executed: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells that failed or timed out.
    pub failed: usize,
    /// Detached simulation threads abandoned by timed-out attempts. Each
    /// one keeps running (and holding memory) until its simulation
    /// finishes or the process exits — a nonzero count means the process
    /// is carrying zombie work.
    pub abandoned_threads: usize,
    /// Host wall time of the whole sweep, milliseconds.
    pub host_ms: u64,
}

impl SweepRun {
    /// The completed record for `cell`, if it succeeded (here or in the
    /// cache).
    pub fn record(&self, cell: &Cell) -> Option<&CellRecord> {
        match &self.outcomes.get(*self.index.get(&cell.hash())?)?.status {
            CellStatus::Done(rec) => Some(rec),
            _ => None,
        }
    }

    /// The outcome for `cell` (including failures), if it was in the
    /// sweep.
    pub fn outcome(&self, cell: &Cell) -> Option<&CellOutcome> {
        self.outcomes.get(*self.index.get(&cell.hash())?)
    }

    /// Speedup of `cell` against its application's sequential baseline
    /// (the one-processor ideal cell, which the sweep must also contain).
    pub fn speedup(&self, cell: &Cell) -> Option<f64> {
        let r = self.record(cell)?;
        let base = self.record(&Cell::baseline(&cell.app, cell.scale))?;
        if r.total_cycles == 0 {
            return None;
        }
        Some(base.total_cycles as f64 / r.total_cycles as f64)
    }

    /// Writes `bench_summary.json` into `dir`: sweep totals plus one entry
    /// per cell (speedup when a baseline is available, wall cycles,
    /// verification, host time). This is the repo's machine-readable
    /// benchmark-trajectory output.
    pub fn write_summary(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let cells: Vec<Json> = self
            .outcomes
            .iter()
            .map(|o| {
                let mut fields = vec![
                    ("hash".to_string(), Json::Str(o.hash.clone())),
                    ("label".to_string(), Json::Str(o.cell.label())),
                    ("cell".to_string(), o.cell.to_json()),
                    ("cached".to_string(), Json::Bool(o.cached)),
                    ("attempts".to_string(), Json::Int(o.attempts)),
                ];
                match &o.status {
                    CellStatus::Done(rec) => {
                        fields.push(("status".to_string(), Json::Str("done".to_string())));
                        fields.push(("total_cycles".to_string(), Json::Int(rec.total_cycles)));
                        fields.push(("verified".to_string(), Json::Bool(rec.verified)));
                        fields.push(("host_ms".to_string(), Json::Int(rec.host_ms)));
                        if o.cell.has_faults() {
                            let c = &rec.counters;
                            fields.push((
                                "recovery".to_string(),
                                Json::Obj(vec![
                                    ("retransmissions".to_string(), Json::Int(c.retransmissions)),
                                    ("dup_suppressed".to_string(), Json::Int(c.dup_suppressed)),
                                    (
                                        "faults_injected".to_string(),
                                        Json::Int(c.faults_injected()),
                                    ),
                                ]),
                            ));
                        }
                        if let Some(s) = self.speedup(&o.cell) {
                            fields.push(("speedup".to_string(), Json::Num(s)));
                        }
                        let avg = rec.avg_breakdown();
                        fields.push((
                            "breakdown".to_string(),
                            Json::Obj(
                                ssm_stats::Bucket::ALL
                                    .iter()
                                    .map(|b| (b.label().to_string(), Json::Int(avg.get(*b))))
                                    .collect(),
                            ),
                        ));
                        let c = &rec.counters;
                        fields.push((
                            "engine".to_string(),
                            Json::Obj(vec![
                                ("handoffs".to_string(), Json::Int(c.handoffs)),
                                ("sim_ops".to_string(), Json::Int(c.sim_ops)),
                                ("ops_batched".to_string(), Json::Int(c.ops_batched)),
                                ("flush_sync".to_string(), Json::Int(c.flush_sync)),
                                ("flush_miss".to_string(), Json::Int(c.flush_miss)),
                                ("flush_cap".to_string(), Json::Int(c.flush_cap)),
                                ("flush_end".to_string(), Json::Int(c.flush_end)),
                                (
                                    "threads_spawned".to_string(),
                                    Json::Int(rec.threads_spawned),
                                ),
                                ("threads_reused".to_string(), Json::Int(rec.threads_reused)),
                            ]),
                        ));
                    }
                    CellStatus::Failed(e) => {
                        fields.push(("status".to_string(), Json::Str("failed".to_string())));
                        fields.push(("error".to_string(), Json::Str(e.clone())));
                    }
                    CellStatus::TimedOut(d) => {
                        fields.push(("status".to_string(), Json::Str("timeout".to_string())));
                        fields.push(("timeout_ms".to_string(), Json::Int(d.as_millis() as u64)));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        let summary = Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("ssm-sweep-summary/1".to_string()),
            ),
            (
                "cells_total".to_string(),
                Json::Int(self.outcomes.len() as u64),
            ),
            (
                "cells_executed".to_string(),
                Json::Int(self.executed as u64),
            ),
            ("cells_cached".to_string(), Json::Int(self.cached as u64)),
            ("cells_failed".to_string(), Json::Int(self.failed as u64)),
            (
                "abandoned_threads".to_string(),
                Json::Int(self.abandoned_threads as u64),
            ),
            ("host_ms".to_string(), Json::Int(self.host_ms)),
            ("cells".to_string(), Json::Arr(cells)),
        ]);
        std::fs::write(dir.join(SUMMARY_FILE), summary.render() + "\n")
    }
}

/// Builds and runs the simulation for one cell. Panics propagate to the
/// caller (the executor turns them into failed cells).
pub fn execute(cell: &Cell) -> Result<CellRecord, String> {
    execute_with(cell, None, true)
}

/// [`execute`] with the sweep's engine knobs: an optional shared
/// [`WorkerSet`] to recycle OS threads across cells, and the batching
/// toggle. Neither affects simulated results.
pub fn execute_with(
    cell: &Cell,
    workers: Option<&WorkerSet>,
    batching: bool,
) -> Result<CellRecord, String> {
    let spec =
        catalog::by_name(&cell.app).ok_or_else(|| format!("unknown application {:?}", cell.app))?;
    let started = Instant::now();
    let workload = spec.build(cell.scale);
    let mut builder = SimBuilder::new(cell.protocol)
        .procs(cell.procs)
        .sc_block(cell.sc_block.unwrap_or(spec.sc_block))
        .home_policy(cell.homes)
        .batching(batching);
    if let Some(ws) = workers {
        builder = builder.workers(ws.clone());
    }
    if cell.protocol != Protocol::Ideal {
        builder = builder.comm(cell.comm.params()).proto(cell.proto.costs());
    }
    if cell.has_faults() {
        builder = builder.faults(FaultSpec::at(cell.fault_rate_ppm, cell.fault_seed));
    }
    let result = builder.run(workload.as_ref());
    Ok(CellRecord::from_run(
        cell.clone(),
        &result,
        started.elapsed().as_millis() as u64,
    ))
}

/// Number of sweep cells currently in flight (used by the panic filter).
static ACTIVE_CELLS: AtomicUsize = AtomicUsize::new(0);

/// Installs (once per process) a panic hook that suppresses the default
/// backtrace spew for panics on sweep-owned threads — the pooled
/// `ssm-worker-N` threads that run both the per-cell guard jobs and the
/// engine's application threads — while cells are in flight. The panic
/// still unwinds and is reported as a failed cell; every other thread
/// keeps the previous hook's behavior.
fn install_panic_filter() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = std::thread::current().name().unwrap_or("").to_string();
            let owned =
                name.starts_with(WORKER_THREAD_PREFIX) && ACTIVE_CELLS.load(Ordering::SeqCst) > 0;
            if !owned {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one cell on a leased worker thread, enforcing the wall-time
/// limit. Returns the status (never panics).
fn execute_with_limits(cell: &Cell, workers: &WorkerSet, opts: &SweepOpts) -> CellStatus {
    let c = cell.clone();
    let ws = workers.clone();
    let batching = opts.batching;
    run_guarded(workers, opts.timeout, move || {
        execute_with(&c, Some(&ws), batching)
    })
}

/// Runs one cell, re-running a panicked or timed-out attempt up to
/// `retries` extra times. Returns the final status, the number of attempts
/// made, and how many timed-out attempts left a detached simulation behind
/// (each timeout abandons its busy worker whether or not a retry follows).
fn execute_with_retries(
    cell: &Cell,
    workers: &WorkerSet,
    opts: &SweepOpts,
) -> (CellStatus, u64, usize) {
    let mut attempts = 0u64;
    let mut abandoned = 0usize;
    loop {
        attempts += 1;
        let status = execute_with_limits(cell, workers, opts);
        if matches!(status, CellStatus::TimedOut(_)) {
            abandoned += 1;
        }
        if matches!(status, CellStatus::Done(_)) || attempts > opts.retries as u64 {
            return (status, attempts, abandoned);
        }
    }
}

/// The guard around one cell execution: a leased worker thread, panic
/// capture, and the wall-time limit. Split from [`execute_with_limits`] so
/// the guard itself is testable with arbitrary workloads.
///
/// The result is delivered by the worker's *completion* closure, which
/// runs only after the worker has re-registered itself as idle — so by
/// the time this returns, the guard's worker (and, once the simulation's
/// own `ThreadPool` has dropped, its application workers) are parked and
/// ready for the next cell. That ordering is what makes "zero fresh
/// spawns on the second cell" deterministic.
fn run_guarded(
    workers: &WorkerSet,
    timeout: Option<Duration>,
    work: impl FnOnce() -> Result<CellRecord, String> + Send + 'static,
) -> CellStatus {
    let (tx, rx) = channel();
    ACTIVE_CELLS.fetch_add(1, Ordering::SeqCst);
    workers.submit(Box::new(move || {
        let out = match catch_unwind(AssertUnwindSafe(work)) {
            Ok(r) => r,
            Err(payload) => Err(panic_message(payload)),
        };
        Box::new(move || {
            let _ = tx.send(out);
        })
    }));
    let received = match timeout {
        Some(t) => rx.recv_timeout(t),
        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
    };
    let status = match received {
        Ok(Ok(rec)) => CellStatus::Done(rec),
        Ok(Err(e)) => CellStatus::Failed(e),
        Err(RecvTimeoutError::Timeout) => {
            // Abandon the attempt: its completion will land on a dropped
            // receiver, and its worker stays busy (unavailable for lease)
            // until the simulation finishes. A late panic on the zombie's
            // threads may print, which is acceptable for an
            // already-reported cell.
            drop(rx);
            ACTIVE_CELLS.fetch_sub(1, Ordering::SeqCst);
            return CellStatus::TimedOut(timeout.expect("timeout fired"));
        }
        Err(RecvTimeoutError::Disconnected) => {
            CellStatus::Failed("cell worker vanished without a result".to_string())
        }
    };
    ACTIVE_CELLS.fetch_sub(1, Ordering::SeqCst);
    status
}

struct Progress {
    total: usize,
    done: usize,
    executed: usize,
    failed: usize,
    abandoned: usize,
    started: Instant,
}

impl Progress {
    fn report(&self, enabled: bool) {
        if !enabled {
            return;
        }
        let eta = if self.executed > 0 && self.done < self.total {
            let per_cell = self.started.elapsed().as_secs_f64() / self.executed as f64;
            let remaining = (self.total - self.done) as f64;
            format!(", ETA {:.0}s", per_cell * remaining)
        } else {
            String::new()
        };
        let failures = if self.failed > 0 {
            format!(", {} failed", self.failed)
        } else {
            String::new()
        };
        eprintln!(
            "[ssm-sweep] {}/{} cells{failures}{eta}",
            self.done, self.total
        );
    }
}

/// Deduplicates `cells` by hash, first occurrence wins, preserving
/// enumeration order. Returns the hash→slot index and the unique
/// `(cell, hash)` list — the shared front half of both the local executor
/// and the shard coordinator.
pub(crate) fn dedup_cells(cells: &[Cell]) -> (HashMap<String, usize>, Vec<(Cell, String)>) {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut unique: Vec<(Cell, String)> = Vec::new();
    for cell in cells {
        let hash = cell.hash();
        index.entry(hash.clone()).or_insert_with(|| {
            unique.push((cell.clone(), hash));
            unique.len() - 1
        });
    }
    (index, unique)
}

/// The in-process executor behind [`crate::Sweep::run`]: executes `cells`
/// (deduplicated by hash, first occurrence wins) and returns the outcomes
/// in enumeration order.
///
/// Cached cells are served from the [`ResultStore`] without executing;
/// fresh results are appended to it as they complete. With
/// `opts.summary`, the sweep's `bench_summary.json` is (re)written at the
/// end.
pub(crate) fn run_local(cells: &[Cell], opts: &SweepOpts) -> SweepRun {
    install_panic_filter();
    let sweep_started = Instant::now();

    let (index, unique) = dedup_cells(cells);

    let store = if opts.cache {
        match ResultStore::open(&opts.results_dir) {
            Ok(s) => {
                if s.skipped() > 0 {
                    eprintln!(
                        "[ssm-sweep] warning: skipped {} unreadable cache line(s)",
                        s.skipped()
                    );
                }
                Some(s)
            }
            Err(e) => {
                eprintln!(
                    "[ssm-sweep] warning: cache disabled ({} unopenable: {e})",
                    opts.results_dir.display()
                );
                None
            }
        }
    } else {
        None
    };

    let mut statuses: Vec<Option<(CellStatus, u64)>> = vec![None; unique.len()];
    let mut cached_flags: Vec<bool> = vec![false; unique.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut cached = 0usize;
    for (i, (_, hash)) in unique.iter().enumerate() {
        if let Some(rec) = store.as_ref().and_then(|s| s.get(hash)) {
            let attempts = rec.attempts;
            statuses[i] = Some((CellStatus::Done(rec), attempts));
            cached_flags[i] = true;
            cached += 1;
        } else {
            misses.push(i);
        }
    }

    let jobs = opts.jobs.max(1).min(misses.len().max(1));
    if opts.progress {
        eprintln!(
            "[ssm-sweep] {} cells ({} unique): {} cached, {} to run on {} worker(s)",
            cells.len(),
            unique.len(),
            cached,
            misses.len(),
            jobs
        );
    }

    // Work-stealing deques: cells are dealt round-robin; a worker pops its
    // own deque from the front and steals from the back of others'.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, &i) in misses.iter().enumerate() {
        deques[k % jobs].lock().expect("deque").push_back(i);
    }

    // State shared by the workers: per-cell status slots, the open cache,
    // and progress accounting. One lock, taken once per finished cell.
    type SharedState<'a> = (
        &'a mut Vec<Option<(CellStatus, u64)>>,
        Option<ResultStore>,
        Progress,
    );
    let shared_results: Mutex<SharedState> = Mutex::new((
        &mut statuses,
        store,
        Progress {
            total: unique.len(),
            done: cached,
            executed: 0,
            failed: 0,
            abandoned: 0,
            started: Instant::now(),
        },
    ));
    let unique_ref = &unique;
    let deques_ref = &deques;
    let shared = &shared_results;

    // One worker set per sweep: both the per-cell guard jobs and every
    // simulation's application threads lease OS threads from it, so cell
    // N+1 recycles cell N's threads instead of spawning.
    let workers = WorkerSet::new();
    let workers_ref = &workers;

    std::thread::scope(|scope| {
        for w in 0..jobs {
            scope.spawn(move || loop {
                let next = {
                    let mut own = deques_ref[w].lock().expect("deque");
                    own.pop_front()
                };
                let next = next.or_else(|| {
                    (1..jobs)
                        .find_map(|d| deques_ref[(w + d) % jobs].lock().expect("deque").pop_back())
                });
                let Some(i) = next else { break };
                let (cell, _) = &unique_ref[i];
                let (mut status, attempts, abandoned) =
                    execute_with_retries(cell, workers_ref, opts);
                if let CellStatus::Done(rec) = &mut status {
                    rec.attempts = attempts;
                }
                let mut guard = shared.lock().expect("results");
                let (results, store, progress) = &mut *guard;
                if let CellStatus::Done(rec) = &status {
                    if let Some(s) = store.as_mut() {
                        if let Err(e) = s.append(rec.clone()) {
                            eprintln!("[ssm-sweep] warning: cache append failed: {e}");
                        }
                    }
                } else {
                    progress.failed += 1;
                }
                progress.abandoned += abandoned;
                results[i] = Some((status, attempts));
                progress.done += 1;
                progress.executed += 1;
                progress.report(opts.progress);
            });
        }
    });

    let (executed, failed, abandoned_threads) = {
        let (_, _, progress) = shared_results.into_inner().expect("results");
        (progress.executed, progress.failed, progress.abandoned)
    };

    let outcomes: Vec<CellOutcome> = unique
        .iter()
        .zip(statuses.iter_mut())
        .zip(cached_flags.iter())
        .map(|(((cell, hash), status), &was_cached)| {
            let (status, attempts) = status.take().expect("every cell resolved");
            CellOutcome {
                cell: cell.clone(),
                hash: hash.clone(),
                cached: was_cached,
                attempts,
                status,
            }
        })
        .collect();

    let run = SweepRun {
        outcomes,
        index,
        executed,
        cached,
        failed,
        abandoned_threads,
        host_ms: sweep_started.elapsed().as_millis() as u64,
    };
    if opts.summary {
        if let Err(e) = run.write_summary(&opts.results_dir) {
            eprintln!("[ssm-sweep] warning: summary write failed: {e}");
        }
    }
    if opts.progress {
        let zombies = if run.abandoned_threads > 0 {
            format!(
                ", {} abandoned thread(s) still running",
                run.abandoned_threads
            )
        } else {
            String::new()
        };
        eprintln!(
            "[ssm-sweep] sweep complete: {} cells ({} executed, {} cached, {} failed{zombies}) in {:.1}s",
            run.outcomes.len(),
            run.executed,
            run.cached,
            run.failed,
            run.host_ms as f64 / 1000.0
        );
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_apps::catalog::Scale;
    use ssm_core::LayerConfig;
    use ssm_stats::{Counters, ProtoActivity};

    fn dummy_record() -> CellRecord {
        CellRecord {
            cell: Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test),
            total_cycles: 1,
            per_proc: vec![[1, 0, 0, 0, 0, 0]; 2],
            activity: ProtoActivity::default(),
            counters: Counters::default(),
            verified: true,
            verify_error: None,
            host_ms: 0,
            attempts: 1,
            threads_spawned: 0,
            threads_reused: 0,
        }
    }

    fn opts_with(timeout: Option<Duration>, retries: u32) -> SweepOpts {
        SweepOpts {
            timeout,
            retries,
            cache: false,
            progress: false,
            summary: false,
            ..SweepOpts::default()
        }
    }

    #[test]
    fn guard_passes_results_through() {
        let workers = WorkerSet::new();
        let rec = dummy_record();
        let want = rec.clone();
        match run_guarded(&workers, None, move || Ok(rec)) {
            CellStatus::Done(got) => assert_eq!(got, want),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn guard_captures_panics_as_failed_cells() {
        install_panic_filter(); // keep the test log free of backtrace spew
        let workers = WorkerSet::new();
        match run_guarded(&workers, None, || panic!("cell exploded: {}", 7)) {
            CellStatus::Failed(msg) => assert!(msg.contains("cell exploded: 7"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The panic unwound through the leased worker; the set hands out a
        // fresh one and the caller keeps going.
        match run_guarded(&workers, None, || Err("soft failure".to_string())) {
            CellStatus::Failed(msg) => assert_eq!(msg, "soft failure"),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn guard_enforces_wall_time_limit() {
        let workers = WorkerSet::new();
        let limit = Duration::from_millis(20);
        let status = run_guarded(&workers, Some(limit), move || {
            // Far beyond the limit; the guard abandons this thread.
            std::thread::sleep(Duration::from_secs(5));
            Ok(dummy_record())
        });
        assert_eq!(status, CellStatus::TimedOut(limit));
    }

    #[test]
    fn retries_rerun_failed_cells_and_count_attempts() {
        install_panic_filter();
        let workers = WorkerSet::new();
        // An unknown app fails deterministically on every attempt: with 2
        // retries the executor makes 3 attempts, then gives up.
        let cell = Cell::new(
            "No-Such-App",
            Protocol::Hlrc,
            LayerConfig::base(),
            2,
            Scale::Test,
        );
        let (status, attempts, abandoned) =
            execute_with_retries(&cell, &workers, &opts_with(None, 2));
        assert!(matches!(status, CellStatus::Failed(_)), "{status:?}");
        assert_eq!(attempts, 3);
        assert_eq!(abandoned, 0, "failures abandon no threads");
        // A healthy cell succeeds on the first attempt regardless of the
        // retry budget.
        let ok = Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test);
        let (status, attempts, abandoned) =
            execute_with_retries(&ok, &workers, &opts_with(None, 2));
        assert!(matches!(status, CellStatus::Done(_)), "{status:?}");
        assert_eq!((attempts, abandoned), (1, 0));
    }

    #[test]
    fn timed_out_attempts_count_abandoned_threads() {
        // Each timed-out attempt detaches its simulation thread; the
        // retry loop must count every one of them.
        let workers = WorkerSet::new();
        let cell = Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test);
        let timeout = Some(Duration::from_nanos(1));
        let (status, attempts, abandoned) =
            execute_with_retries(&cell, &workers, &opts_with(timeout, 1));
        if matches!(status, CellStatus::TimedOut(_)) {
            assert_eq!(attempts, 2);
            assert_eq!(abandoned, 2);
        } else {
            // A 1ns budget losing the race is wildly unlikely but not
            // impossible on a loaded host; a completed run must then
            // report a clean first attempt.
            assert!(abandoned < 2);
        }
    }

    #[test]
    fn unknown_application_is_a_failed_cell() {
        let cell = Cell::new(
            "No-Such-App",
            Protocol::Hlrc,
            LayerConfig::base(),
            2,
            Scale::Test,
        );
        let err = execute(&cell).expect_err("unknown app");
        assert!(err.contains("No-Such-App"), "{err}");
    }
}
