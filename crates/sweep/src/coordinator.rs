//! The shard coordinator: partitions a sweep, launches worker
//! subprocesses, retries stragglers, and merges shard caches back into
//! the main results directory.
//!
//! The coordinator is any bench binary invoked with `--shards N`. Each
//! worker is the *same* binary re-invoked with `--worker --shard i/N
//! --results <shard dir>`: it recomputes the identical cell enumeration,
//! keeps only its hash-modulus slice, and streams records into its own
//! JSONL shard cache. Because shard membership is a pure function of the
//! cell hash, coordinator and workers agree on the partition without any
//! communication; the caches are the only channel.
//!
//! A shard is *complete* when every cell it owns has a record in its
//! cache, whatever the worker's exit status — a worker that crashed after
//! finishing its last cell still counts. Incomplete shards are relaunched
//! with exponential backoff up to `--shard-retries` times; cells still
//! missing after that surface as failed outcomes, mirroring how the local
//! executor reports a panicked cell.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use crate::cell::Cell;
use crate::exec::{dedup_cells, CellOutcome, CellStatus, SweepOpts, SweepRun};
use crate::json::Json;
use crate::merge::merge_caches;
use crate::shard::{shard_of, ShardSpec};
use crate::store::{ResultStore, SUMMARY_FILE};

/// Prints a fatal coordinator error and exits with status 1.
fn fatal(msg: &str) -> ! {
    eprintln!("[ssm-sweep] fatal: {msg}");
    std::process::exit(1);
}

/// The original argv minus the coordinator-only flags, the prefix every
/// worker command line is rebuilt from. `--shards`/`--shard-retries` must
/// be stripped or workers would recurse into coordinators.
fn forwarded_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shards" | "--shard-retries" => {
                let _ = args.next();
            }
            _ => out.push(a),
        }
    }
    out
}

/// What one worker's `bench_summary.json` reports.
struct ShardReport {
    executed: usize,
    abandoned: usize,
    /// hash → (status, error, timeout_ms, attempts) for non-done cells.
    failures: HashMap<String, (String, String, u64, u64)>,
}

fn read_shard_summary(dir: &Path) -> Option<ShardReport> {
    let text = std::fs::read_to_string(dir.join(SUMMARY_FILE)).ok()?;
    let j = Json::parse(text.trim()).ok()?;
    let mut failures = HashMap::new();
    for cell in j.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
        let status = cell.get("status").and_then(Json::as_str).unwrap_or("");
        if status == "done" {
            continue;
        }
        let hash = match cell.get("hash").and_then(Json::as_str) {
            Some(h) => h.to_string(),
            None => continue,
        };
        failures.insert(
            hash,
            (
                status.to_string(),
                cell.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                cell.get("timeout_ms").and_then(Json::as_u64).unwrap_or(0),
                cell.get("attempts").and_then(Json::as_u64).unwrap_or(1),
            ),
        );
    }
    Some(ShardReport {
        executed: j.get("cells_executed").and_then(Json::as_u64).unwrap_or(0) as usize,
        abandoned: j
            .get("abandoned_threads")
            .and_then(Json::as_u64)
            .unwrap_or(0) as usize,
        failures,
    })
}

/// Hashes from `owned` still missing from the shard cache at `dir`.
fn missing_in(dir: &Path, owned: &[(usize, String)]) -> Vec<String> {
    match ResultStore::open(dir) {
        Ok(store) => owned
            .iter()
            .filter(|(_, h)| !store.contains(h))
            .map(|(_, h)| h.clone())
            .collect(),
        Err(_) => owned.iter().map(|(_, h)| h.clone()).collect(),
    }
}

/// Runs `cells` as `shards` subprocess shards and merges the results.
/// See the module docs for the protocol; called via
/// [`crate::Sweep::run`].
pub(crate) fn run_coordinator(
    cells: &[Cell],
    opts: &SweepOpts,
    shards: usize,
    shard_retries: u32,
    worker_cmd: Option<(PathBuf, Vec<String>)>,
) -> SweepRun {
    assert!(opts.cache, "the shard coordinator requires the cache");
    let started = Instant::now();
    let (index, unique) = dedup_cells(cells);

    let main_store = match ResultStore::open(&opts.results_dir) {
        Ok(s) => s,
        Err(e) => fatal(&format!(
            "cannot open cache under {}: {e}",
            opts.results_dir.display()
        )),
    };
    let pre_hits: Vec<bool> = unique.iter().map(|(_, h)| main_store.contains(h)).collect();

    // Partition the unique cells; `owned[s]` lists (slot, hash) per shard.
    let specs: Vec<ShardSpec> = (0..shards)
        .map(|i| ShardSpec::new(i, shards).expect("validated shard count"))
        .collect();
    let mut owned: Vec<Vec<(usize, String)>> = vec![Vec::new(); shards];
    for (i, (_, hash)) in unique.iter().enumerate() {
        owned[shard_of(hash, shards)].push((i, hash.clone()));
    }

    // Seed each shard cache with the main cache's hits for its cells, so
    // workers only execute what no prior run (sharded or not) has done.
    for spec in &specs {
        if owned[spec.index].is_empty() {
            continue;
        }
        let dir = spec.dir(&opts.results_dir);
        let mut store = match ResultStore::open(&dir) {
            Ok(s) => s,
            Err(e) => fatal(&format!("cannot open shard cache {}: {e}", dir.display())),
        };
        for (_, hash) in &owned[spec.index] {
            if !store.contains(hash) {
                if let Some(rec) = main_store.get(hash) {
                    if let Err(e) = store.append(rec) {
                        fatal(&format!("cannot seed shard cache {}: {e}", dir.display()));
                    }
                }
            }
        }
    }

    let (exe, base_args) = worker_cmd.unwrap_or_else(|| {
        (
            std::env::current_exe().unwrap_or_else(|e| fatal(&format!("current_exe: {e}"))),
            forwarded_args(),
        )
    });

    let mut pending: Vec<usize> = specs
        .iter()
        .filter(|s| !missing_in(&s.dir(&opts.results_dir), &owned[s.index]).is_empty())
        .map(|s| s.index)
        .collect();
    if opts.progress {
        eprintln!(
            "[ssm-sweep] coordinator: {} cells over {} shard(s), {} shard(s) need work",
            unique.len(),
            shards,
            pending.len()
        );
    }

    let mut spawned: Vec<bool> = vec![false; shards];
    let mut attempt = 0u32;
    while !pending.is_empty() && attempt <= shard_retries {
        if attempt > 0 {
            let backoff = Duration::from_millis(100u64 << attempt.min(4));
            if opts.progress {
                eprintln!(
                    "[ssm-sweep] retrying {} incomplete shard(s) after {:?} (attempt {}/{})",
                    pending.len(),
                    backoff,
                    attempt + 1,
                    shard_retries + 1
                );
            }
            std::thread::sleep(backoff);
        }
        // Launch every pending shard, then reap them in index order; the
        // subprocesses run concurrently in between.
        let mut children = Vec::new();
        for &s in &pending {
            let spec = specs[s];
            let dir = spec.dir(&opts.results_dir);
            if opts.progress {
                eprintln!(
                    "[ssm-sweep] shard {}: launching worker ({} cell(s))",
                    spec.label(),
                    owned[s].len()
                );
            }
            let child = Command::new(&exe)
                .args(&base_args)
                .arg("--worker")
                .arg("--shard")
                .arg(spec.label())
                .arg("--results")
                .arg(&dir)
                .arg("--jobs")
                .arg(opts.jobs.to_string())
                .arg("--quiet")
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn();
            match child {
                Ok(c) => {
                    spawned[s] = true;
                    children.push((s, c));
                }
                Err(e) => eprintln!("[ssm-sweep] shard {}: spawn failed: {e}", spec.label()),
            }
        }
        let mut still_pending = Vec::new();
        for (s, child) in children {
            let spec = specs[s];
            let out = match child.wait_with_output() {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("[ssm-sweep] shard {}: wait failed: {e}", spec.label());
                    still_pending.push(s);
                    continue;
                }
            };
            // Completeness is judged by the cache, not the exit status: a
            // worker that died after its last append still delivered.
            let missing = missing_in(&spec.dir(&opts.results_dir), &owned[s]);
            if missing.is_empty() {
                continue;
            }
            eprintln!(
                "[ssm-sweep] shard {}: incomplete ({} cell(s) missing, worker exit {:?})",
                spec.label(),
                missing.len(),
                out.status.code()
            );
            for stream in [&out.stdout, &out.stderr] {
                let text = String::from_utf8_lossy(stream);
                for line in text.lines() {
                    eprintln!("[ssm-sweep]   worker: {line}");
                }
            }
            still_pending.push(s);
        }
        pending = still_pending;
        attempt += 1;
    }

    // Fold worker-side statistics into the coordinator's totals. Only
    // shards launched *this run* contribute — a skipped (fully cached)
    // shard's summary describes some earlier run.
    let mut executed = 0usize;
    let mut abandoned_threads = 0usize;
    let mut failures: HashMap<String, (String, String, u64, u64)> = HashMap::new();
    for spec in &specs {
        if !spawned[spec.index] {
            continue;
        }
        if let Some(report) = read_shard_summary(&spec.dir(&opts.results_dir)) {
            executed += report.executed;
            abandoned_threads += report.abandoned;
            failures.extend(report.failures);
        }
    }

    let shard_dirs: Vec<PathBuf> = specs
        .iter()
        .filter(|s| !owned[s.index].is_empty())
        .map(|s| s.dir(&opts.results_dir))
        .collect();
    let merge = match merge_caches(&opts.results_dir, &shard_dirs) {
        Ok(m) => m,
        Err(e) => fatal(&e.to_string()),
    };
    if opts.progress {
        eprintln!(
            "[ssm-sweep] merged {} shard cache(s): {} new record(s), {} duplicate(s)",
            shard_dirs.len(),
            merge.added,
            merge.duplicates
        );
    }

    let merged = match ResultStore::open(&opts.results_dir) {
        Ok(s) => s,
        Err(e) => fatal(&format!("cannot reopen merged cache: {e}")),
    };
    let mut failed = 0usize;
    let outcomes: Vec<CellOutcome> = unique
        .iter()
        .enumerate()
        .map(|(i, (cell, hash))| {
            let (status, attempts) = match merged.get(hash) {
                Some(rec) => {
                    let attempts = rec.attempts;
                    (CellStatus::Done(rec), attempts)
                }
                None => {
                    failed += 1;
                    match failures.get(hash) {
                        Some((kind, _, ms, attempts)) if kind == "timeout" => {
                            (CellStatus::TimedOut(Duration::from_millis(*ms)), *attempts)
                        }
                        Some((_, error, _, attempts)) => {
                            (CellStatus::Failed(error.clone()), *attempts)
                        }
                        None => (
                            CellStatus::Failed(format!(
                                "shard {}/{} produced no result for this cell",
                                shard_of(hash, shards),
                                shards
                            )),
                            1,
                        ),
                    }
                }
            };
            CellOutcome {
                cell: cell.clone(),
                hash: hash.clone(),
                cached: pre_hits[i],
                attempts,
                status,
            }
        })
        .collect();

    // `host_ms` is zeroed so the merged summary is byte-identical across
    // runs and shard counts; the real wall time goes to stderr below.
    let run = SweepRun {
        outcomes,
        index,
        executed,
        cached: pre_hits.iter().filter(|&&c| c).count(),
        failed,
        abandoned_threads,
        host_ms: 0,
    };
    if opts.summary {
        if let Err(e) = run.write_summary(&opts.results_dir) {
            eprintln!("[ssm-sweep] warning: summary write failed: {e}");
        }
    }
    if opts.progress {
        let zombies = if run.abandoned_threads > 0 {
            format!(", {} abandoned thread(s) in workers", run.abandoned_threads)
        } else {
            String::new()
        };
        eprintln!(
            "[ssm-sweep] sweep complete: {} cells ({} executed, {} cached, {} failed{zombies}) in {:.1}s",
            run.outcomes.len(),
            run.executed,
            run.cached,
            run.failed,
            started.elapsed().as_secs_f64()
        );
    }
    run
}
