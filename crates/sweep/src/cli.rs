//! The shared command line for every sweep binary.
//!
//! All figure/table binaries accept the same flags:
//!
//! * `--procs N` — simulated processors (default 16, the paper's scale);
//! * `--scale test|bench|full` — problem sizes (default `bench`);
//! * `--app NAME` — restrict to applications whose name contains `NAME`;
//! * `--jobs N` — host worker threads (default: available parallelism);
//! * `--no-cache` — ignore and don't write `results/sweep_cache.jsonl`;
//! * `--no-batching` — one baton handoff per simulated operation (the
//!   pre-batching engine behavior; results are byte-identical, only the
//!   host-side handoff counters and wall time change);
//! * `--timeout SECS` — per-cell wall-time limit (default: none);
//! * `--retries N` — rerun panicked/timed-out cells up to N extra times
//!   (default 0);
//! * `--results DIR` — results directory (default `results/`);
//! * `--quiet` — suppress stderr progress;
//! * `--shards N` — coordinator mode: run the sweep as N worker
//!   subprocesses and merge their caches (requires the cache);
//! * `--shard i/N` — restrict to the cells whose hash lands on shard `i`
//!   of an N-way partition;
//! * `--worker` — run the `--shard` slice into `--results` and exit
//!   (used by the coordinator; composable by hand for multi-machine
//!   sharding);
//! * `--shard-retries N` — worker relaunches for incomplete shards
//!   (default 2).
//!
//! Binaries with extra flags use [`SweepCli::parse_with`] and handle their
//! own in the callback.

use std::path::PathBuf;
use std::time::Duration;

use ssm_apps::catalog::{suite, AppSpec, Scale};

use crate::cell::{scale_from_label, scale_label};
use crate::exec::SweepOpts;
use crate::shard::ShardSpec;

/// Prints a usage error and exits with status 2 (no panic backtrace).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct SweepCli {
    /// Simulated processor count.
    pub procs: usize,
    /// Problem-size scale.
    pub scale: Scale,
    /// Substring filter on application names (empty = all).
    pub filter: String,
    /// Host worker threads.
    pub jobs: usize,
    /// Skip the on-disk cache.
    pub no_cache: bool,
    /// Disable batched baton handoffs (diagnostic; results identical).
    pub no_batching: bool,
    /// Per-cell wall-time limit, seconds.
    pub timeout_secs: Option<u64>,
    /// Extra attempts for panicked/timed-out cells.
    pub retries: u32,
    /// Results directory.
    pub results_dir: PathBuf,
    /// Suppress stderr progress.
    pub quiet: bool,
    /// Coordinator mode: number of worker subprocesses to shard over.
    pub shards: Option<usize>,
    /// Restrict to one shard of the cell partition.
    pub shard: Option<ShardSpec>,
    /// Worker mode: run the shard slice into `--results`, then exit.
    pub worker: bool,
    /// Worker relaunches for shards that come back incomplete.
    pub shard_retries: u32,
}

impl Default for SweepCli {
    fn default() -> Self {
        SweepCli {
            procs: 16,
            scale: Scale::Bench,
            filter: String::new(),
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            no_cache: false,
            no_batching: false,
            timeout_secs: None,
            retries: 0,
            results_dir: PathBuf::from("results"),
            quiet: false,
            shards: None,
            shard: None,
            worker: false,
            shard_retries: 2,
        }
    }
}

impl SweepCli {
    /// Parses the common flags from `std::env::args`, rejecting unknown
    /// ones. Malformed or unknown arguments print a usage error and exit
    /// with status 2.
    pub fn parse() -> Self {
        Self::parse_with(|flag, _| {
            die(&format!(
                "unknown flag {flag}; use --procs/--scale/--app/--jobs/--no-cache/--no-batching/--timeout/--retries/--results/--quiet/--shards/--shard/--worker/--shard-retries"
            ))
        })
    }

    /// Parses the common flags; each unknown flag is handed to `extra`
    /// together with the argument iterator so binaries can consume a
    /// value for it. Malformed arguments print a usage error and exit
    /// with status 2.
    pub fn parse_with(mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>)) -> Self {
        let mut cli = SweepCli::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--procs" => {
                    cli.procs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--procs needs a number"));
                }
                "--scale" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| die("--scale test|bench|full"));
                    cli.scale = scale_from_label(&v)
                        .unwrap_or_else(|_| die(&format!("--scale test|bench|full, got {v:?}")));
                }
                "--app" => {
                    cli.filter = args.next().unwrap_or_else(|| die("--app needs a name"));
                }
                "--jobs" => {
                    cli.jobs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--jobs needs a positive number"));
                }
                "--no-cache" => cli.no_cache = true,
                "--no-batching" => cli.no_batching = true,
                "--timeout" => {
                    cli.timeout_secs = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--timeout needs seconds")),
                    );
                }
                "--retries" => {
                    cli.retries = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--retries needs a number"));
                }
                "--results" => {
                    cli.results_dir =
                        PathBuf::from(args.next().unwrap_or_else(|| die("--results needs a dir")));
                }
                "--quiet" => cli.quiet = true,
                "--shards" => {
                    cli.shards = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n > 0)
                            .unwrap_or_else(|| die("--shards needs a positive number")),
                    );
                }
                "--shard" => {
                    let v = args.next().unwrap_or_else(|| die("--shard needs i/N"));
                    cli.shard = Some(
                        ShardSpec::parse(&v).unwrap_or_else(|e| die(&format!("--shard: {e}"))),
                    );
                }
                "--worker" => cli.worker = true,
                "--shard-retries" => {
                    cli.shard_retries = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--shard-retries needs a number"));
                }
                other => extra(other, &mut args),
            }
        }
        if cli.worker && cli.shard.is_none() {
            die("--worker requires --shard i/N");
        }
        if cli.shards.is_some() && (cli.shard.is_some() || cli.worker) {
            die("--shards (coordinator mode) conflicts with --shard/--worker");
        }
        if cli.shards.is_some() && cli.no_cache {
            die("--shards needs the cache to collect worker results; drop --no-cache");
        }
        cli
    }

    /// A CLI with explicit settings (used by tests).
    pub fn fixed(procs: usize, scale: Scale) -> Self {
        SweepCli {
            procs,
            scale,
            ..SweepCli::default()
        }
    }

    /// The selected applications.
    pub fn apps(&self) -> Vec<AppSpec> {
        suite()
            .into_iter()
            .filter(|a| self.filter.is_empty() || a.name.contains(&self.filter))
            .collect()
    }

    /// Executor options for this invocation.
    pub(crate) fn sweep_opts(&self) -> SweepOpts {
        SweepOpts {
            jobs: self.jobs,
            cache: !self.no_cache,
            results_dir: self.results_dir.clone(),
            timeout: self.timeout_secs.map(Duration::from_secs),
            retries: self.retries,
            progress: !self.quiet,
            summary: true,
            batching: !self.no_batching,
        }
    }

    /// One-line run description for table headers.
    pub fn describe(&self) -> String {
        format!(
            "{} processors, scale {}",
            self.procs,
            scale_label(self.scale)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scale() {
        let cli = SweepCli::default();
        assert_eq!(cli.procs, 16);
        assert_eq!(cli.scale, Scale::Bench);
        assert!(cli.jobs >= 1);
        assert!(!cli.no_cache);
    }

    #[test]
    fn filter_selects_apps() {
        let mut cli = SweepCli::fixed(2, Scale::Test);
        cli.filter = "Water".to_string();
        let apps = cli.apps();
        assert_eq!(apps.len(), 2);
        assert!(apps.iter().all(|a| a.name.contains("Water")));
    }

    #[test]
    fn opts_reflect_flags() {
        let mut cli = SweepCli::fixed(4, Scale::Test);
        cli.jobs = 3;
        cli.no_cache = true;
        cli.timeout_secs = Some(7);
        cli.retries = 2;
        cli.quiet = true;
        let opts = cli.sweep_opts();
        assert_eq!(opts.jobs, 3);
        assert!(!opts.cache);
        assert_eq!(opts.timeout, Some(Duration::from_secs(7)));
        assert_eq!(opts.retries, 2);
        assert!(!opts.progress);
        assert!(opts.batching, "batching defaults on");
        cli.no_batching = true;
        assert!(!cli.sweep_opts().batching);
    }
}
