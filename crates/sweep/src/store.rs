//! The on-disk result store: a JSON-lines cache keyed by cell hash.
//!
//! Layout under the results directory (default `results/`):
//!
//! * `sweep_cache.jsonl` — one [`CellRecord`] per line, appended as cells
//!   complete. Re-running an interrupted sweep only executes the missing
//!   cells; every binary shares the one cache, so `figure4` reuses cells
//!   `figure3` already ran.
//! * `bench_summary.json` — the latest sweep's machine-readable summary
//!   (written by the executor), doubling as the repo's benchmark
//!   trajectory.
//!
//! Corrupt or stale-schema lines are counted and skipped, never trusted.
//! A torn *trailing* line (a partial record with no newline, left by an
//! interrupted append) is truncated away at open, so a crashed sweep
//! resumes onto a clean tail instead of poisoning the next append.
//!
//! # Memory residency
//!
//! The store keeps only an offset index (cell hash → byte offset of the
//! record's line) resident; records are parsed lazily on [`ResultStore::get`].
//! At `--scale full` a cache holds thousands of per-processor breakdown
//! vectors, and keeping them all decoded would dwarf the simulator's own
//! footprint. Opening still validates every line once (parse then drop) so
//! corrupt lines are counted exactly as before. One append handle is held
//! for the store's lifetime — appends never reopen the file.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::record::CellRecord;

/// File name of the JSONL cell cache inside the results directory.
pub const CACHE_FILE: &str = "sweep_cache.jsonl";

/// File name of the sweep summary inside the results directory.
pub const SUMMARY_FILE: &str = "bench_summary.json";

/// An append-only JSONL store of completed cells, indexed by cell hash.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    /// Held open for the store's lifetime; every append goes through it.
    writer: File,
    /// Cell hash → byte offset of the record's line (later lines win).
    index: HashMap<String, u64>,
    /// End-of-file offset where the next append lands.
    end: u64,
    skipped: usize,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `results_dir`, building
    /// the offset index. Every existing line is validated once (and
    /// dropped); unreadable lines are counted in [`ResultStore::skipped`].
    /// A torn trailing line (partial record, no newline) is truncated away
    /// — not counted — so an interrupted sweep resumes cleanly.
    pub fn open(results_dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(results_dir)?;
        let path = results_dir.join(CACHE_FILE);
        let mut writer = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut index = HashMap::new();
        let mut skipped = 0usize;
        let mut offset = 0u64;
        let mut reader = BufReader::new(File::open(&path)?);
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            if !line.ends_with('\n') {
                // A final line missing its newline is a torn append from an
                // interrupted run. If the record itself survived intact,
                // heal it in place by finishing the line; otherwise truncate
                // the partial write so the next append starts on a clean
                // line boundary instead of gluing onto garbage.
                match Json::parse(&line).and_then(|j| CellRecord::from_json(&j)) {
                    Ok(rec) => {
                        writer.write_all(b"\n")?;
                        index.insert(rec.cell.hash(), offset);
                        offset += n as u64 + 1;
                    }
                    Err(_) => writer.set_len(offset)?,
                }
                break;
            }
            if !line.trim().is_empty() {
                // Validate transiently; only the offset stays resident.
                match Json::parse(&line).and_then(|j| CellRecord::from_json(&j)) {
                    Ok(rec) => {
                        index.insert(rec.cell.hash(), offset);
                    }
                    Err(_) => skipped += 1,
                }
            }
            offset += n as u64;
        }
        Ok(ResultStore {
            path,
            writer,
            index,
            end: offset,
            skipped,
        })
    }

    /// The cached record for `hash`, if present — parsed from disk on
    /// every call (records are not kept resident).
    pub fn get(&self, hash: &str) -> Option<CellRecord> {
        let &offset = self.index.get(hash)?;
        let mut reader = File::open(&self.path).ok()?;
        reader.seek(SeekFrom::Start(offset)).ok()?;
        let mut line = String::new();
        BufReader::new(reader).read_line(&mut line).ok()?;
        // The line validated at open/append time; a parse failure here
        // means the file changed underneath us — treat as a miss.
        Json::parse(&line)
            .and_then(|j| CellRecord::from_json(&j))
            .ok()
    }

    /// Whether a record for `hash` is cached (no parse, index only).
    pub fn contains(&self, hash: &str) -> bool {
        self.index.contains_key(hash)
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of unreadable lines skipped while loading.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Appends `rec` through the held handle and indexes its offset.
    pub fn append(&mut self, rec: CellRecord) -> std::io::Result<()> {
        let mut line = rec.to_json().render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.index.insert(rec.cell.hash(), self.end);
        self.end += line.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use ssm_apps::catalog::Scale;
    use ssm_core::{LayerConfig, Protocol};
    use ssm_stats::{Counters, ProtoActivity};

    fn record(app: &str, cycles: u64) -> CellRecord {
        CellRecord {
            cell: Cell::new(app, Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test),
            total_cycles: cycles,
            per_proc: vec![[1, 0, 0, 0, 0, 0]; 2],
            activity: ProtoActivity::default(),
            counters: Counters::default(),
            verified: true,
            verify_error: None,
            host_ms: 1,
            attempts: 1,
            threads_spawned: 0,
            threads_reused: 0,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ssm-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_then_reopen_hits() {
        let dir = tmpdir("reopen");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            assert!(s.is_empty());
            s.append(record("FFT", 100)).expect("append");
            s.append(record("Radix", 200)).expect("append");
            assert_eq!(s.len(), 2);
            // Appends are visible through the same store without reopening.
            let hash = record("Radix", 0).cell.hash();
            assert!(s.contains(&hash));
            assert_eq!(s.get(&hash).expect("hit").total_cycles, 200);
        }
        let s = ResultStore::open(&dir).expect("reopen");
        assert_eq!(s.len(), 2);
        assert_eq!(s.skipped(), 0);
        let hash = record("FFT", 0).cell.hash();
        assert_eq!(s.get(&hash).expect("hit").total_cycles, 100);
        assert!(!s.contains("no-such-hash"));
        assert!(s.get("no-such-hash").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_lines_win_and_corrupt_lines_skip() {
        let dir = tmpdir("corrupt");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            s.append(record("FFT", 100)).expect("append");
            s.append(record("FFT", 300)).expect("append"); // resumed rerun
        }
        // Inject garbage between valid lines.
        let path = dir.join(CACHE_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.insert_str(0, "{not json\n\n");
        std::fs::write(&path, text).expect("write");
        let s = ResultStore::open(&dir).expect("reopen");
        assert_eq!(s.len(), 1);
        assert_eq!(s.skipped(), 1);
        let hash = record("FFT", 0).cell.hash();
        assert_eq!(s.get(&hash).expect("hit").total_cycles, 300);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_truncates_for_a_clean_resume() {
        let dir = tmpdir("torn");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            s.append(record("FFT", 100)).expect("append");
        }
        let path = dir.join(CACHE_FILE);
        let clean = std::fs::read_to_string(&path).expect("read");
        // Simulate a crash mid-append: half of the next record, no newline.
        let partial = &record("Radix", 200).to_json().render()[..40];
        std::fs::write(&path, format!("{clean}{partial}")).expect("write");
        {
            let mut s = ResultStore::open(&dir).expect("reopen");
            // The torn tail is truncated, not skip-counted.
            assert_eq!(s.skipped(), 0);
            assert_eq!(s.len(), 1);
            assert_eq!(
                std::fs::read_to_string(&path).expect("read"),
                clean,
                "torn tail should be truncated away"
            );
            // The resumed sweep re-executes the lost cell and appends it
            // onto the clean boundary.
            s.append(record("Radix", 200)).expect("append");
        }
        let s = ResultStore::open(&dir).expect("resume");
        assert_eq!(s.len(), 2);
        assert_eq!(s.skipped(), 0);
        let hash = record("Radix", 0).cell.hash();
        assert_eq!(s.get(&hash).expect("hit").total_cycles, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn intact_unterminated_tail_is_healed_not_dropped() {
        let dir = tmpdir("heal");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            s.append(record("FFT", 100)).expect("append");
        }
        // Crash after the record bytes but before the newline: the record
        // is complete, only the line terminator is missing.
        let path = dir.join(CACHE_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(&record("Radix", 200).to_json().render());
        std::fs::write(&path, &text).expect("write");
        {
            let mut s = ResultStore::open(&dir).expect("reopen");
            assert_eq!(s.len(), 2);
            assert_eq!(s.skipped(), 0);
            // Appends after healing land on their own lines.
            s.append(record("LU-Contiguous", 300)).expect("append");
        }
        let s = ResultStore::open(&dir).expect("resume");
        assert_eq!(s.len(), 3);
        assert_eq!(s.skipped(), 0);
        for (app, cycles) in [("FFT", 100), ("Radix", 200), ("LU-Contiguous", 300)] {
            let hash = record(app, 0).cell.hash();
            assert_eq!(s.get(&hash).expect("hit").total_cycles, cycles, "{app}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offsets_stay_correct_across_corrupt_prefix_appends() {
        // Offsets must index the right byte positions even when earlier
        // lines are garbage and appends continue after reopening.
        let dir = tmpdir("offsets");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            s.append(record("FFT", 1)).expect("append");
        }
        let path = dir.join(CACHE_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.insert_str(0, "garbage line\n");
        std::fs::write(&path, text).expect("write");
        let mut s = ResultStore::open(&dir).expect("reopen");
        s.append(record("Radix", 2)).expect("append");
        s.append(record("LU-Contiguous", 3)).expect("append");
        for (app, cycles) in [("FFT", 1), ("Radix", 2), ("LU-Contiguous", 3)] {
            let hash = record(app, 0).cell.hash();
            assert_eq!(
                s.get(&hash).expect("hit").total_cycles,
                cycles,
                "{app} record mis-indexed"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
