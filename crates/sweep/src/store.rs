//! The on-disk result store: a JSON-lines cache keyed by cell hash.
//!
//! Layout under the results directory (default `results/`):
//!
//! * `sweep_cache.jsonl` — one [`CellRecord`] per line, appended as cells
//!   complete. Re-running an interrupted sweep only executes the missing
//!   cells; every binary shares the one cache, so `figure4` reuses cells
//!   `figure3` already ran.
//! * `bench_summary.json` — the latest sweep's machine-readable summary
//!   (written by the executor), doubling as the repo's benchmark
//!   trajectory.
//!
//! Corrupt or stale-schema lines are counted and skipped, never trusted.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::record::CellRecord;

/// File name of the JSONL cell cache inside the results directory.
pub const CACHE_FILE: &str = "sweep_cache.jsonl";

/// File name of the sweep summary inside the results directory.
pub const SUMMARY_FILE: &str = "bench_summary.json";

/// An append-only JSONL store of completed cells, indexed by cell hash.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    map: HashMap<String, CellRecord>,
    skipped: usize,
}

impl ResultStore {
    /// Opens (creating if needed) the store under `results_dir`, loading
    /// every valid cached record.
    pub fn open(results_dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(results_dir)?;
        let path = results_dir.join(CACHE_FILE);
        let mut map = HashMap::new();
        let mut skipped = 0usize;
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match Json::parse(&line).and_then(|j| CellRecord::from_json(&j)) {
                    Ok(rec) => {
                        map.insert(rec.cell.hash(), rec);
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        Ok(ResultStore { path, map, skipped })
    }

    /// The cached record for `hash`, if present.
    pub fn get(&self, hash: &str) -> Option<&CellRecord> {
        self.map.get(hash)
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of unreadable lines skipped while loading.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Appends `rec` to the cache file and the in-memory index.
    pub fn append(&mut self, rec: CellRecord) -> std::io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut line = rec.to_json().render();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        self.map.insert(rec.cell.hash(), rec);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use ssm_apps::catalog::Scale;
    use ssm_core::{LayerConfig, Protocol};
    use ssm_stats::{Counters, ProtoActivity};

    fn record(app: &str, cycles: u64) -> CellRecord {
        CellRecord {
            cell: Cell::new(app, Protocol::Hlrc, LayerConfig::base(), 2, Scale::Test),
            total_cycles: cycles,
            per_proc: vec![[1, 0, 0, 0, 0, 0]; 2],
            activity: ProtoActivity::default(),
            counters: Counters::default(),
            verified: true,
            verify_error: None,
            host_ms: 1,
            attempts: 1,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ssm-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_then_reopen_hits() {
        let dir = tmpdir("reopen");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            assert!(s.is_empty());
            s.append(record("FFT", 100)).expect("append");
            s.append(record("Radix", 200)).expect("append");
            assert_eq!(s.len(), 2);
        }
        let s = ResultStore::open(&dir).expect("reopen");
        assert_eq!(s.len(), 2);
        assert_eq!(s.skipped(), 0);
        let hash = record("FFT", 0).cell.hash();
        assert_eq!(s.get(&hash).expect("hit").total_cycles, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_lines_win_and_corrupt_lines_skip() {
        let dir = tmpdir("corrupt");
        {
            let mut s = ResultStore::open(&dir).expect("open");
            s.append(record("FFT", 100)).expect("append");
            s.append(record("FFT", 300)).expect("append"); // resumed rerun
        }
        // Inject garbage between valid lines.
        let path = dir.join(CACHE_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.insert_str(0, "{not json\n\n");
        std::fs::write(&path, text).expect("write");
        let s = ResultStore::open(&dir).expect("reopen");
        assert_eq!(s.len(), 1);
        assert_eq!(s.skipped(), 1);
        let hash = record("FFT", 0).cell.hash();
        assert_eq!(s.get(&hash).expect("hit").total_cycles, 300);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
