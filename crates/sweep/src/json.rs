//! A minimal JSON value, serializer and parser (std only).
//!
//! The sweep subsystem needs machine-readable, round-trippable result
//! records (`results/sweep_cache.jsonl`, `results/bench_summary.json`)
//! without pulling serialization crates into the hermetic build. This
//! module implements exactly the subset the schema uses:
//!
//! * unsigned integers are kept as [`Json::Int`] (`u64`), so cycle counts
//!   round-trip bit-exactly rather than through `f64`;
//! * floats render with `{:?}` (shortest round-trip formatting);
//! * strings support the standard escapes plus `\uXXXX`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (cycle counts, ids).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `u64`, if it is an integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// This value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut v = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                loop {
                    self.skip_ws();
                    v.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(v));
                        }
                        _ => return Err(format!("bad array at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(u64::MAX),
            Json::Num(1.25),
            Json::Num(-3.5e-9),
            Json::Str(String::new()),
            Json::Str("with \"quotes\", \\slashes\\ and\nnewlines\t".into()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).expect(&text), v, "{text}");
        }
    }

    #[test]
    fn round_trips_compound() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            (
                "b".into(),
                Json::Obj(vec![("nested".into(), Json::Str("x".into()))]),
            ),
            ("c".into(), Json::Null),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v);
        assert_eq!(
            back.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn big_u64_survives_exactly() {
        let n = (1u64 << 60) + 12345;
        let text = Json::Int(n).render();
        assert_eq!(Json::parse(&text).expect("parse").as_u64(), Some(n));
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"a\\u0041b\" ] } ").expect("parse");
        assert_eq!(
            v.get("k").and_then(|k| k.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[2].as_str(),
            Some("aAb")
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nulle",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
