//! `ssm-sweep` — sweep execution for the `ssm` paper reproduction.
//!
//! Every figure and table in the paper is a *sweep*: a set of independent
//! simulation **cells** `{application, protocol, layer configuration,
//! processors, scale}`. This crate owns the whole pipeline from cell
//! enumeration to cached results:
//!
//! * [`Cell`] — a content-addressed cell description with a stable hash
//!   ([`Cell::hash`]), so identical cells are recognized across binaries
//!   and sessions;
//! * [`Sweep`] — the builder front door: an in-process work-stealing
//!   executor (std threads only) with per-cell panic capture, wall-time
//!   limits, live progress and deterministic result ordering; or, behind
//!   the same call, a shard **coordinator** that fans the cells out over
//!   worker subprocesses and merges their caches ([`Sweep::shards`]);
//! * [`ResultStore`] — an append-only JSONL cache under `results/` keyed
//!   by cell hash, making every sweep resumable and shareable between
//!   binaries; plus `results/bench_summary.json`, the machine-readable
//!   summary of the latest sweep;
//! * [`SweepCli`] — the common `--procs/--scale/--app/--jobs/--no-cache`
//!   (and `--shards/--shard/--worker`) command line every binary speaks.
//!
//! A typical binary enumerates its cells, runs one sweep, then renders its
//! figure/table from the returned [`SweepRun`]:
//!
//! ```no_run
//! use ssm_sweep::prelude::*;
//! use ssm_core::{LayerConfig, Protocol};
//!
//! let cli = SweepCli::parse();
//! let mut cells = Vec::new();
//! for app in cli.apps() {
//!     cells.push(Cell::baseline(app.name, cli.scale)); // speedup denominator
//!     cells.push(Cell::new(app.name, Protocol::Hlrc, LayerConfig::base(), cli.procs, cli.scale));
//! }
//! let run = Sweep::enumerate(&cells).configure(&cli).run();
//! for cell in &cells {
//!     if let Some(s) = run.speedup(cell) {
//!         println!("{}: {s:.2}", cell.label());
//!     }
//! }
//! ```

pub mod builder;
pub mod cell;
pub mod cli;
mod coordinator;
pub mod exec;
pub mod json;
pub mod merge;
pub mod record;
pub mod shard;
pub mod store;

pub use builder::Sweep;
pub use cell::{scale_from_label, scale_label, Cell, CommSpec};
pub use cli::SweepCli;
pub use exec::{execute, execute_with, CellOutcome, CellStatus, SweepOpts, SweepRun};
pub use json::Json;
pub use merge::{merge_caches, MergeError, MergeOutcome};
pub use record::{CellRecord, SCHEMA_VERSION};
pub use shard::{shard_of, ShardSpec, SHARDS_DIR};
pub use store::{ResultStore, CACHE_FILE, SUMMARY_FILE};

/// Everything a bench binary needs: `use ssm_sweep::prelude::*;`.
pub mod prelude {
    pub use crate::builder::Sweep;
    pub use crate::cell::{Cell, CommSpec};
    pub use crate::cli::SweepCli;
    pub use crate::exec::{CellOutcome, CellStatus, SweepOpts, SweepRun};
    pub use crate::record::CellRecord;
    pub use crate::shard::ShardSpec;
}
