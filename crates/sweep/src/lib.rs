//! `ssm-sweep` — sweep execution for the `ssm` paper reproduction.
//!
//! Every figure and table in the paper is a *sweep*: a set of independent
//! simulation **cells** `{application, protocol, layer configuration,
//! processors, scale}`. This crate owns the whole pipeline from cell
//! enumeration to cached results:
//!
//! * [`Cell`] — a content-addressed cell description with a stable hash
//!   ([`Cell::hash`]), so identical cells are recognized across binaries
//!   and sessions;
//! * [`run_sweep`] — a work-stealing parallel executor (std threads only)
//!   with per-cell panic capture, wall-time limits, live progress and
//!   deterministic result ordering;
//! * [`ResultStore`] — an append-only JSONL cache under `results/` keyed
//!   by cell hash, making every sweep resumable and shareable between
//!   binaries; plus `results/bench_summary.json`, the machine-readable
//!   summary of the latest sweep;
//! * [`SweepCli`] — the common `--procs/--scale/--app/--jobs/--no-cache`
//!   command line every binary speaks.
//!
//! A typical binary enumerates its cells, runs one sweep, then renders its
//! figure/table from the returned [`SweepRun`]:
//!
//! ```no_run
//! use ssm_sweep::{Cell, SweepCli};
//! use ssm_core::{LayerConfig, Protocol};
//!
//! let cli = SweepCli::parse();
//! let mut cells = Vec::new();
//! for app in cli.apps() {
//!     cells.push(Cell::baseline(app.name, cli.scale)); // speedup denominator
//!     cells.push(Cell::new(app.name, Protocol::Hlrc, LayerConfig::base(), cli.procs, cli.scale));
//! }
//! let run = ssm_sweep::run_sweep(&cells, &cli.opts());
//! for cell in &cells {
//!     if let Some(s) = run.speedup(cell) {
//!         println!("{}: {s:.2}", cell.label());
//!     }
//! }
//! ```

pub mod cell;
pub mod cli;
pub mod exec;
pub mod json;
pub mod record;
pub mod store;

pub use cell::{scale_from_label, scale_label, Cell, CommSpec};
pub use cli::SweepCli;
pub use exec::{execute, run_sweep, CellOutcome, CellStatus, SweepOpts, SweepRun};
pub use json::Json;
pub use record::{CellRecord, SCHEMA_VERSION};
pub use store::{ResultStore, CACHE_FILE, SUMMARY_FILE};
