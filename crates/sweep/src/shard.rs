//! Deterministic shard assignment for distributed sweep execution.
//!
//! A shard is a slice of the cell enumeration selected by cell-hash
//! modulus: cell `c` belongs to shard `i` of `N` iff
//! `hash(c) % N == i`. The assignment depends only on the cell identity,
//! so every process — coordinator, worker subprocess, or a worker on
//! another machine — computes the same partition without communicating.

use std::path::{Path, PathBuf};

use crate::cell::Cell;

/// Subdirectory of the results directory holding per-shard caches.
pub const SHARDS_DIR: &str = "shards";

/// One shard of an `N`-way partition of the cell space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Builds a spec, validating `index < count` and `count > 0`.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards (use 0..{count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the `--shard i/N` argument form.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?} (expected i/N, e.g. 0/3)"))?;
        let index = i
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard index {i:?}"))?;
        let count = n
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("bad shard count {n:?}"))?;
        ShardSpec::new(index, count)
    }

    /// Whether this shard owns `cell`.
    pub fn owns(&self, cell: &Cell) -> bool {
        shard_of(&cell.hash(), self.count) == self.index
    }

    /// Display label, e.g. `2/7`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// This shard's cache directory under `results_dir`:
    /// `<results_dir>/shards/<i>-of-<N>`. Keyed by the partition (not the
    /// binary), so any bench binary's worker for shard `i` of `N` reuses
    /// the same shard cache.
    pub fn dir(&self, results_dir: &Path) -> PathBuf {
        results_dir
            .join(SHARDS_DIR)
            .join(format!("{}-of-{}", self.index, self.count))
    }
}

/// The shard index that owns a cell hash under an `N`-way partition.
///
/// The hash is the cell's 16-hex-digit FNV-1a string; the modulus is taken
/// over its `u64` value, so the partition is stable across processes and
/// machines.
pub fn shard_of(hash: &str, count: usize) -> usize {
    debug_assert!(count > 0);
    let h = u64::from_str_radix(hash, 16).unwrap_or(0);
    (h % count as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_apps::catalog::Scale;
    use ssm_core::{LayerConfig, Protocol};

    fn cells() -> Vec<Cell> {
        let mut out = Vec::new();
        for app in ["FFT", "Radix", "LU", "Ocean"] {
            out.push(Cell::baseline(app, Scale::Test));
            for procs in [2, 4, 8, 16] {
                out.push(Cell::new(
                    app,
                    Protocol::Hlrc,
                    LayerConfig::base(),
                    procs,
                    Scale::Test,
                ));
            }
        }
        out
    }

    #[test]
    fn every_cell_lands_in_exactly_one_shard() {
        for count in [1, 2, 3, 7] {
            for cell in cells() {
                let owners: Vec<usize> = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(&cell))
                    .collect();
                assert_eq!(
                    owners.len(),
                    1,
                    "cell {} under {count} shards",
                    cell.label()
                );
                assert_eq!(owners[0], shard_of(&cell.hash(), count));
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let spec = ShardSpec::new(0, 1).unwrap();
        for cell in cells() {
            assert!(spec.owns(&cell));
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let s = ShardSpec::parse("2/7").unwrap();
        assert_eq!(s, ShardSpec { index: 2, count: 7 });
        assert_eq!(ShardSpec::parse(&s.label()).unwrap(), s);
        assert!(ShardSpec::parse("7/7").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("3").is_err(), "missing slash");
        assert!(ShardSpec::parse("a/b").is_err(), "not numbers");
    }

    #[test]
    fn shard_dirs_are_distinct_per_partition() {
        let root = Path::new("results");
        let a = ShardSpec::new(0, 3).unwrap().dir(root);
        let b = ShardSpec::new(1, 3).unwrap().dir(root);
        let c = ShardSpec::new(0, 2).unwrap().dir(root);
        assert_eq!(a, Path::new("results/shards/0-of-3"));
        assert_ne!(a, b);
        assert_ne!(a, c, "different partitions must not share caches");
    }
}
