//! The sweep cell model: one simulation point (application x protocol x
//! layer configuration x processors x scale) with a stable content hash.
//!
//! Every figure and table of the paper is an enumeration of cells; the
//! hash keys the on-disk result cache, so a cell re-run anywhere in the
//! repo (any binary, any sweep order) hits the same cache line.

use ssm_apps::catalog::Scale;
use ssm_core::{CommPreset, LayerConfig, ProtoPreset, Protocol};
use ssm_net::CommParams;
use ssm_proto::HomePolicy;

use crate::json::Json;

/// Achievable-preset values for the one-sided RDMA knobs. Custom comm specs
/// at these values canonicalize (and serialize) exactly as they did before
/// the knobs existed, keeping every pre-RDMA cell hash and cache line valid.
const RDMA_DEFAULTS: (u64, u64) = (250, 150);

/// The communication layer of a cell: one of the paper's named presets, or
/// explicit parameter values (Figure 5 and the ablations vary single
/// parameters off-preset).
#[derive(Debug, Clone, PartialEq)]
pub enum CommSpec {
    /// A named preset (Table 2 column).
    Preset(CommPreset),
    /// Explicit parameter values.
    Custom(CommParams),
}

impl CommSpec {
    /// The parameter values for this spec.
    pub fn params(&self) -> CommParams {
        match self {
            CommSpec::Preset(p) => p.params(),
            CommSpec::Custom(p) => p.clone(),
        }
    }

    /// Display label: the preset letter, or `custom`.
    pub fn label(&self) -> String {
        match self {
            CommSpec::Preset(p) => p.label().to_string(),
            CommSpec::Custom(_) => "custom".to_string(),
        }
    }

    /// Canonical text for hashing: presets by letter, custom by full
    /// parameter values.
    fn canonical(&self) -> String {
        match self {
            CommSpec::Preset(p) => p.label().to_string(),
            CommSpec::Custom(p) => {
                let rate = match p.io_bus_rate {
                    Some((b, c)) => format!("{b}/{c}"),
                    None => "inf".to_string(),
                };
                let mut s = format!(
                    "custom:{},{rate},{},{},{},{}",
                    p.host_overhead, p.ni_occupancy, p.msg_handling, p.link_latency, p.max_packet
                );
                // Appended only when off the achievable defaults so every
                // pre-RDMA custom cell keeps its canonical form and hash.
                if (p.rdma_occupancy, p.rdma_issue) != RDMA_DEFAULTS {
                    s.push_str(&format!(",rdma:{}/{}", p.rdma_occupancy, p.rdma_issue));
                }
                s
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            CommSpec::Preset(p) => Json::Str(p.label().to_string()),
            CommSpec::Custom(p) => {
                let mut fields = vec![
                    ("host_overhead".to_string(), Json::Int(p.host_overhead)),
                    ("ni_occupancy".to_string(), Json::Int(p.ni_occupancy)),
                    ("msg_handling".to_string(), Json::Int(p.msg_handling)),
                    ("link_latency".to_string(), Json::Int(p.link_latency)),
                    ("max_packet".to_string(), Json::Int(p.max_packet)),
                ];
                match p.io_bus_rate {
                    Some((b, c)) => fields.push((
                        "io_bus_rate".to_string(),
                        Json::Arr(vec![Json::Int(b), Json::Int(c)]),
                    )),
                    None => fields.push(("io_bus_rate".to_string(), Json::Null)),
                }
                // Emitted only off-default, so pre-RDMA records render
                // byte-identically.
                if (p.rdma_occupancy, p.rdma_issue) != RDMA_DEFAULTS {
                    fields.push(("rdma_occupancy".to_string(), Json::Int(p.rdma_occupancy)));
                    fields.push(("rdma_issue".to_string(), Json::Int(p.rdma_issue)));
                }
                Json::Obj(fields)
            }
        }
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(s) = v.as_str() {
            return Ok(CommSpec::Preset(comm_preset_from_label(s)?));
        }
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("comm spec missing {key}"))
        };
        let io_bus_rate = match v.get("io_bus_rate") {
            Some(Json::Null) | None => None,
            Some(Json::Arr(pair)) if pair.len() == 2 => Some((
                pair[0].as_u64().ok_or("bad io_bus_rate")?,
                pair[1].as_u64().ok_or("bad io_bus_rate")?,
            )),
            _ => return Err("bad io_bus_rate".to_string()),
        };
        Ok(CommSpec::Custom(CommParams {
            host_overhead: int("host_overhead")?,
            io_bus_rate,
            ni_occupancy: int("ni_occupancy")?,
            msg_handling: int("msg_handling")?,
            link_latency: int("link_latency")?,
            max_packet: int("max_packet")?,
            // Absent in records written before the RDMA layer existed.
            rdma_occupancy: v
                .get("rdma_occupancy")
                .and_then(Json::as_u64)
                .unwrap_or(RDMA_DEFAULTS.0),
            rdma_issue: v
                .get("rdma_issue")
                .and_then(Json::as_u64)
                .unwrap_or(RDMA_DEFAULTS.1),
        }))
    }
}

/// One simulation point. Construct with [`Cell::new`] (or the
/// [`Cell::baseline`]/[`Cell::ideal`] shorthands) and refine with the
/// `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Catalog application name.
    pub app: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Communication-layer parameters.
    pub comm: CommSpec,
    /// Protocol-layer cost preset.
    pub proto: ProtoPreset,
    /// Simulated processor count.
    pub procs: usize,
    /// Problem-size scale.
    pub scale: Scale,
    /// SC coherence granularity override (`None` = the application's best
    /// granularity from the catalog).
    pub sc_block: Option<u64>,
    /// Page-to-home placement policy.
    pub homes: HomePolicy,
    /// Per-class fault-injection rate, parts per million (0 = faults off;
    /// zero keeps the canonical form — and hence the hash — identical to
    /// pre-fault-injection cells).
    pub fault_rate_ppm: u32,
    /// Seed of the injected-fault schedule (ignored when the rate is 0).
    pub fault_seed: u64,
}

impl Cell {
    /// A cell at a named layer configuration (including any fault spec the
    /// configuration carries — `LayerConfig::base()` keeps faults off).
    pub fn new(
        app: &str,
        protocol: Protocol,
        cfg: LayerConfig,
        procs: usize,
        scale: Scale,
    ) -> Self {
        Cell {
            app: app.to_string(),
            protocol,
            comm: CommSpec::Preset(cfg.comm),
            proto: cfg.proto,
            procs,
            scale,
            sc_block: None,
            homes: HomePolicy::RoundRobin,
            fault_rate_ppm: cfg.faults.rate_ppm,
            fault_seed: cfg.faults.seed,
        }
    }

    /// The sequential-baseline cell for `app`: one processor on the ideal
    /// machine (the paper's speedup denominator).
    pub fn baseline(app: &str, scale: Scale) -> Self {
        Cell::ideal(app, 1, scale)
    }

    /// The ideal-machine cell at `procs` processors (the paper's topmost
    /// bar).
    pub fn ideal(app: &str, procs: usize, scale: Scale) -> Self {
        Cell::new(app, Protocol::Ideal, LayerConfig::base(), procs, scale)
    }

    /// Replaces the communication layer with explicit parameter values.
    pub fn with_comm_params(mut self, params: CommParams) -> Self {
        self.comm = CommSpec::Custom(params);
        self
    }

    /// Sets an explicit SC coherence granularity.
    pub fn with_sc_block(mut self, bytes: u64) -> Self {
        self.sc_block = Some(bytes);
        self
    }

    /// Sets the page-placement policy.
    pub fn with_homes(mut self, homes: HomePolicy) -> Self {
        self.homes = homes;
        self
    }

    /// Sets deterministic fault injection (per-class rate in ppm plus the
    /// schedule seed). Rate 0 restores the fault-free cell identity.
    pub fn with_faults(mut self, rate_ppm: u32, seed: u64) -> Self {
        self.fault_rate_ppm = rate_ppm;
        self.fault_seed = seed;
        self
    }

    /// Whether this cell injects faults (the ideal machine never sends, so
    /// its cells are always fault-free).
    pub fn has_faults(&self) -> bool {
        self.fault_rate_ppm > 0 && self.protocol != Protocol::Ideal
    }

    /// Display label, e.g. `FFT HLRC AO p16` (faulty cells append the
    /// injection rate: `FFT HLRC AO p16 f10000`).
    pub fn label(&self) -> String {
        match self.protocol {
            Protocol::Ideal => format!("{} IDEAL p{}", self.app, self.procs),
            _ => {
                let mut s = format!(
                    "{} {} {}{} p{}",
                    self.app,
                    self.protocol.label(),
                    self.comm.label(),
                    self.proto.label(),
                    self.procs
                );
                if self.has_faults() {
                    s.push_str(&format!(" f{}", self.fault_rate_ppm));
                }
                s
            }
        }
    }

    /// The canonical identity string the hash is computed over. The ideal
    /// machine ignores layer costs, granularity and placement, so those
    /// fields are normalized away — every binary's "IDEAL" cell for an
    /// application is the *same* cell, whichever sweep ran it first.
    fn canonical(&self) -> String {
        let scale = scale_label(self.scale);
        match self.protocol {
            Protocol::Ideal => {
                format!("v1|{}|IDEAL|-|-|{}|{scale}|-|-", self.app, self.procs)
            }
            _ => {
                let block = match (self.protocol, self.sc_block) {
                    // Page-based protocols ignore the SC granularity.
                    (Protocol::Hlrc | Protocol::Aurc, _) => "-".to_string(),
                    (_, Some(b)) => b.to_string(),
                    (_, None) => "app".to_string(),
                };
                let mut s = format!(
                    "v1|{}|{}|{}|{}|{}|{scale}|{block}|{}",
                    self.app,
                    self.protocol.label(),
                    self.comm.canonical(),
                    self.proto.label(),
                    self.procs,
                    homes_label(self.homes),
                );
                // Appended only when nonzero so every pre-existing cache
                // line keeps its hash.
                if self.has_faults() {
                    s.push_str(&format!("|f{}:{}", self.fault_rate_ppm, self.fault_seed));
                }
                s
            }
        }
    }

    /// Stable content hash (16 hex digits, FNV-1a 64 over the canonical
    /// identity). This keys the on-disk result cache.
    pub fn hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Serializes the cell for the result record. Fault fields are emitted
    /// only when active, so fault-free records render byte-identically to
    /// the pre-fault-injection schema.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("app".to_string(), Json::Str(self.app.clone())),
            (
                "protocol".to_string(),
                Json::Str(self.protocol.label().to_string()),
            ),
            ("comm".to_string(), self.comm.to_json()),
            (
                "proto".to_string(),
                Json::Str(self.proto.label().to_string()),
            ),
            ("procs".to_string(), Json::Int(self.procs as u64)),
            (
                "scale".to_string(),
                Json::Str(scale_label(self.scale).to_string()),
            ),
            (
                "sc_block".to_string(),
                match self.sc_block {
                    Some(b) => Json::Int(b),
                    None => Json::Null,
                },
            ),
            (
                "homes".to_string(),
                Json::Str(homes_label(self.homes).to_string()),
            ),
        ];
        if self.has_faults() {
            fields.push((
                "fault_rate_ppm".to_string(),
                Json::Int(self.fault_rate_ppm as u64),
            ));
            fields.push(("fault_seed".to_string(), Json::Int(self.fault_seed)));
        }
        Json::Obj(fields)
    }

    /// Deserializes a cell from a result record.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell missing {key}"))
        };
        Ok(Cell {
            app: str_field("app")?.to_string(),
            protocol: protocol_from_label(str_field("protocol")?)?,
            comm: CommSpec::from_json(v.get("comm").ok_or("cell missing comm")?)?,
            proto: proto_preset_from_label(str_field("proto")?)?,
            procs: v
                .get("procs")
                .and_then(Json::as_u64)
                .ok_or("cell missing procs")? as usize,
            scale: scale_from_label(str_field("scale")?)?,
            sc_block: match v.get("sc_block") {
                Some(Json::Null) | None => None,
                Some(b) => Some(b.as_u64().ok_or("bad sc_block")?),
            },
            homes: homes_from_label(str_field("homes")?)?,
            // Absent in records written before fault injection existed.
            fault_rate_ppm: v.get("fault_rate_ppm").and_then(Json::as_u64).unwrap_or(0) as u32,
            fault_seed: v.get("fault_seed").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// Scale serialization label.
pub fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Bench => "bench",
        Scale::Full => "full",
    }
}

/// Parses a scale label (as accepted by `--scale`).
pub fn scale_from_label(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "bench" => Ok(Scale::Bench),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale {other:?} (test|bench|full)")),
    }
}

fn protocol_from_label(s: &str) -> Result<Protocol, String> {
    Protocol::from_label(s)
}

fn comm_preset_from_label(s: &str) -> Result<CommPreset, String> {
    CommPreset::from_label(s)
}

fn proto_preset_from_label(s: &str) -> Result<ProtoPreset, String> {
    ProtoPreset::from_label(s)
}

fn homes_label(h: HomePolicy) -> &'static str {
    match h {
        HomePolicy::RoundRobin => "rr",
        HomePolicy::FirstTouch => "first-touch",
    }
}

fn homes_from_label(s: &str) -> Result<HomePolicy, String> {
    match s {
        "rr" => Ok(HomePolicy::RoundRobin),
        "first-touch" => Ok(HomePolicy::FirstTouch),
        other => Err(format!("unknown home policy {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Cell {
        Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 16, Scale::Bench)
    }

    #[test]
    fn hash_is_stable_across_processes() {
        // Pinned value: changing the canonical form invalidates every
        // on-disk cache, which must be a deliberate (versioned) act.
        assert_eq!(cell().hash(), cell().hash());
        assert_eq!(cell().canonical(), "v1|FFT|HLRC|A|O|16|bench|-|rr");
    }

    #[test]
    fn hash_distinguishes_every_field() {
        let base = cell();
        let variants = [
            Cell {
                app: "Radix".into(),
                ..base.clone()
            },
            Cell {
                protocol: Protocol::Sc,
                ..base.clone()
            },
            Cell {
                comm: CommSpec::Preset(CommPreset::Best),
                ..base.clone()
            },
            Cell {
                proto: ProtoPreset::Best,
                ..base.clone()
            },
            Cell {
                procs: 8,
                ..base.clone()
            },
            Cell {
                scale: Scale::Test,
                ..base.clone()
            },
            Cell {
                homes: HomePolicy::FirstTouch,
                ..base.clone()
            },
            base.clone().with_comm_params(CommParams::achievable()),
        ];
        let mut hashes: Vec<String> = variants.iter().map(Cell::hash).collect();
        hashes.push(base.hash());
        let unique: std::collections::HashSet<&String> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len(), "collision among {hashes:?}");
    }

    #[test]
    fn sc_block_affects_sc_but_not_hlrc() {
        let sc = Cell {
            protocol: Protocol::Sc,
            ..cell()
        };
        assert_ne!(sc.hash(), sc.clone().with_sc_block(256).hash());
        assert_ne!(
            sc.clone().with_sc_block(64).hash(),
            sc.clone().with_sc_block(256).hash()
        );
        // HLRC ignores the SC granularity, so the cache must too.
        assert_eq!(cell().hash(), cell().with_sc_block(256).hash());
    }

    #[test]
    fn ideal_cells_normalize_layer_fields() {
        let a = Cell::new("FFT", Protocol::Ideal, LayerConfig::base(), 1, Scale::Test);
        let b = Cell::new(
            "FFT",
            Protocol::Ideal,
            LayerConfig::of(CommPreset::Best, ProtoPreset::Best),
            1,
            Scale::Test,
        );
        assert_eq!(a.hash(), b.hash());
        assert_eq!(Cell::baseline("FFT", Scale::Test).hash(), a.hash());
    }

    #[test]
    fn fault_fields_extend_the_hash_only_when_active() {
        let base = cell();
        // Zero rate: same canonical form, same hash, same JSON — every
        // pre-fault cache line stays valid.
        assert_eq!(base.clone().with_faults(0, 99).hash(), base.hash());
        assert_eq!(
            base.clone().with_faults(0, 99).to_json().render(),
            base.to_json().render()
        );
        // Nonzero rate: distinct hash, and rate/seed both matter.
        let faulty = base.clone().with_faults(10_000, 42);
        assert_eq!(
            faulty.canonical(),
            "v1|FFT|HLRC|A|O|16|bench|-|rr|f10000:42"
        );
        assert_ne!(faulty.hash(), base.hash());
        assert_ne!(faulty.hash(), base.clone().with_faults(20_000, 42).hash());
        assert_ne!(faulty.hash(), base.clone().with_faults(10_000, 43).hash());
        // The ideal machine never sends, so its cells ignore fault specs.
        let ideal = Cell::ideal("FFT", 1, Scale::Test);
        assert_eq!(ideal.clone().with_faults(10_000, 42).hash(), ideal.hash());
    }

    #[test]
    fn layer_config_faults_flow_into_the_cell() {
        use ssm_core::FaultSpec;
        let via_cfg = Cell::new(
            "FFT",
            Protocol::Hlrc,
            LayerConfig::base().with_faults(FaultSpec::at(10_000, 42)),
            16,
            Scale::Bench,
        );
        assert_eq!(via_cfg, cell().with_faults(10_000, 42));
        // A fault-free config builds the exact pre-fault cell identity.
        assert_eq!(
            Cell::new("FFT", Protocol::Hlrc, LayerConfig::base(), 16, Scale::Bench).hash(),
            cell().hash()
        );
    }

    #[test]
    fn faulty_cell_round_trips_through_json() {
        let faulty = cell().with_faults(10_000, 42);
        let text = faulty.to_json().render();
        let back = Cell::from_json(&Json::parse(&text).expect("parse")).expect("cell");
        assert_eq!(back, faulty, "{text}");
        assert_eq!(back.hash(), faulty.hash());
    }

    #[test]
    fn rdma_knobs_extend_the_hash_only_when_off_default() {
        // At the achievable defaults the custom canonical form (and JSON)
        // is byte-identical to the pre-RDMA schema.
        let base = cell().with_comm_params(CommParams::achievable());
        assert!(!base.canonical().contains("rdma"));
        assert!(!base.to_json().render().contains("rdma"));
        // Off-default values extend the canonical form and hence the hash.
        let mut params = CommParams::achievable();
        params.rdma_occupancy = 500;
        params.rdma_issue = 300;
        let tuned = cell().with_comm_params(params);
        assert!(tuned.canonical().ends_with(",rdma:500/300|O|16|bench|-|rr"));
        assert_ne!(tuned.hash(), base.hash());
        // And round-trip through JSON intact.
        let text = tuned.to_json().render();
        let back = Cell::from_json(&Json::parse(&text).expect("parse")).expect("cell");
        assert_eq!(back, tuned, "{text}");
        assert_eq!(back.hash(), tuned.hash());
    }

    #[test]
    fn json_round_trip_preset_and_custom() {
        let preset = cell();
        let mut params = CommParams::achievable();
        params.io_bus_rate = None;
        let custom = Cell {
            protocol: Protocol::Sc,
            sc_block: Some(1024),
            homes: HomePolicy::FirstTouch,
            ..cell()
        }
        .with_comm_params(params);
        for c in [preset, custom] {
            let text = c.to_json().render();
            let back = Cell::from_json(&Json::parse(&text).expect("parse")).expect("cell");
            assert_eq!(back, c, "{text}");
            assert_eq!(back.hash(), c.hash());
        }
    }
}
