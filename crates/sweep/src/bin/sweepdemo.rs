//! `sweepdemo` — a minimal, fast bench binary used by the shard
//! integration tests and the CI `shard-smoke` job.
//!
//! It enumerates a handful of test-scale cells (FFT and Radix baselines
//! plus HLRC/SC at the base layer configuration), runs them through the
//! standard [`Sweep`] pipeline — so `--shards`, `--shard`, and `--worker`
//! all work exactly as in the real figure/table binaries — and prints a
//! deterministic cycles table (no host timing on stdout).
//!
//! Test hook: when `SSM_SWEEPDEMO_FAIL_ONCE` names a path, a worker for
//! shard 0 exits with status 7 *before sweeping* if that path does not
//! exist yet (creating it first). The next launch of the same shard finds
//! the marker and proceeds — which is exactly the shard-retry scenario.

use ssm_core::{LayerConfig, Protocol};
use ssm_sweep::prelude::*;

fn main() {
    let cli = SweepCli::parse();

    if let Ok(marker) = std::env::var("SSM_SWEEPDEMO_FAIL_ONCE") {
        let first_shard = cli.worker && cli.shard.map(|s| s.index) == Some(0);
        if first_shard && !std::path::Path::new(&marker).exists() {
            std::fs::write(&marker, b"failed once\n").expect("write fail-once marker");
            eprintln!("[sweepdemo] injected worker failure (fail-once hook)");
            std::process::exit(7);
        }
    }

    let mut cells = Vec::new();
    for app in ["FFT", "Radix"] {
        cells.push(Cell::baseline(app, cli.scale));
        for protocol in [Protocol::Hlrc, Protocol::Sc] {
            cells.push(Cell::new(
                app,
                protocol,
                LayerConfig::base(),
                cli.procs,
                cli.scale,
            ));
        }
    }

    let run = Sweep::enumerate(&cells).configure(&cli).run();

    println!("sweepdemo ({})", cli.describe());
    for outcome in &run.outcomes {
        match &outcome.status {
            CellStatus::Done(rec) => {
                println!(
                    "{:<24} {:>12} cycles",
                    outcome.cell.label(),
                    rec.total_cycles
                );
            }
            other => println!("{:<24} {other:?}", outcome.cell.label()),
        }
    }
    if run.failed > 0 {
        std::process::exit(1);
    }
}
