//! Merging per-shard JSONL caches back into the main result cache.
//!
//! The merge is deterministic down to the byte: pre-existing lines of the
//! main cache are preserved verbatim in file order, and new records
//! harvested from the shard caches are appended in *canonical* form
//! ([`CellRecord::canonical`], `host_ms` zeroed) sorted by cell hash.
//! Running the same sweep under any shard count (including 1) therefore
//! produces an identical merged cache file.
//!
//! Two records for the same hash must agree on their canonical payload;
//! a disagreement means a hash collision or nondeterministic simulation
//! and aborts the merge — silently picking a winner would poison every
//! future cache hit.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::record::CellRecord;
use crate::store::CACHE_FILE;

/// What a completed merge did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Parseable records in the merged cache.
    pub total: usize,
    /// New records appended from the shard caches.
    pub added: usize,
    /// Shard records skipped because an identical record was already
    /// present (in the main cache or an earlier shard).
    pub duplicates: usize,
}

/// Why a merge refused to write.
#[derive(Debug)]
pub enum MergeError {
    /// Reading or writing a cache file failed.
    Io(std::io::Error),
    /// Two sources hold different results for the same cell hash.
    Conflict {
        /// The contested cell hash.
        hash: String,
        /// Display label of the conflicting cell.
        label: String,
        /// Which sources disagree and how.
        detail: String,
    },
}

impl From<std::io::Error> for MergeError {
    fn from(e: std::io::Error) -> Self {
        MergeError::Io(e)
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Io(e) => write!(f, "merge I/O error: {e}"),
            MergeError::Conflict {
                hash,
                label,
                detail,
            } => write!(f, "conflicting records for cell {label} ({hash}): {detail}"),
        }
    }
}

/// One source's winning record per hash, in the order hashes first appear.
/// Within a single cache file later lines win, matching
/// [`crate::ResultStore`]'s read semantics.
fn load_cache(path: &Path) -> std::io::Result<Vec<(String, CellRecord)>> {
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, CellRecord> = HashMap::new();
    if path.exists() {
        for line in BufReader::new(File::open(path)?).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Ok(rec) = Json::parse(&line).and_then(|j| CellRecord::from_json(&j)) {
                let hash = rec.cell.hash();
                if map.insert(hash.clone(), rec).is_none() {
                    order.push(hash);
                }
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|h| {
            let rec = map.remove(&h).expect("ordered hash present");
            (h, rec)
        })
        .collect())
}

/// Merges the shard caches under `shard_dirs` into `main_dir`'s cache.
///
/// Existing main-cache lines are kept byte-for-byte; new shard records are
/// appended canonically (host time zeroed) in hash order. The write is
/// atomic (temp file + rename), so a failed merge leaves the main cache
/// untouched.
pub fn merge_caches(main_dir: &Path, shard_dirs: &[PathBuf]) -> Result<MergeOutcome, MergeError> {
    let main_path = main_dir.join(CACHE_FILE);

    // Pre-existing main-cache lines, preserved verbatim.
    let mut raw_lines: Vec<String> = Vec::new();
    if main_path.exists() {
        for line in BufReader::new(File::open(&main_path)?).lines() {
            let line = line?;
            if !line.trim().is_empty() {
                raw_lines.push(line);
            }
        }
    }

    // Canonical payload per known hash, for conflict detection. Main-cache
    // records are canonicalized for comparison only — their stored bytes
    // (with real host times) stay as-is.
    let mut seen: HashMap<String, (String, String)> = HashMap::new(); // hash -> (source, canonical)
    for (hash, rec) in load_cache(&main_path)? {
        seen.insert(
            hash,
            ("main cache".to_string(), rec.canonical().to_json().render()),
        );
    }
    let mut total = seen.len();

    let mut added: Vec<(String, String)> = Vec::new(); // (hash, canonical line)
    let mut duplicates = 0usize;
    for dir in shard_dirs {
        let source = dir.display().to_string();
        for (hash, rec) in load_cache(&dir.join(CACHE_FILE))? {
            let canonical = rec.canonical().to_json().render();
            match seen.get(&hash) {
                Some((prior, existing)) if *existing == canonical => duplicates += 1,
                Some((prior, existing)) => {
                    return Err(MergeError::Conflict {
                        hash,
                        label: rec.cell.label(),
                        detail: conflict_detail(prior, existing, &source, &rec),
                    });
                }
                None => {
                    seen.insert(hash.clone(), (source.clone(), canonical.clone()));
                    added.push((hash, canonical));
                    total += 1;
                }
            }
        }
    }

    // New records in hash order: deterministic regardless of shard count
    // or completion order.
    added.sort();

    let tmp = main_path.with_extension("jsonl.tmp");
    std::fs::create_dir_all(main_dir)?;
    {
        let mut f = File::create(&tmp)?;
        for line in &raw_lines {
            writeln!(f, "{line}")?;
        }
        for (_, line) in &added {
            writeln!(f, "{line}")?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &main_path)?;

    Ok(MergeOutcome {
        total,
        added: added.len(),
        duplicates,
    })
}

/// Human-readable description of which fields disagree.
fn conflict_detail(prior: &str, existing: &str, source: &str, rec: &CellRecord) -> String {
    let diff = match Json::parse(existing)
        .ok()
        .map(|j| CellRecord::from_json(&j))
    {
        Some(Ok(old)) if old.total_cycles != rec.total_cycles => {
            format!("total_cycles {} != {}", old.total_cycles, rec.total_cycles)
        }
        Some(Ok(old)) if old.verified != rec.verified => {
            format!("verified {} != {}", old.verified, rec.verified)
        }
        _ => "payloads differ".to_string(),
    };
    format!("{prior} vs {source}: {diff} (hash collision or nondeterministic simulation)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use ssm_apps::catalog::Scale;
    use ssm_core::{LayerConfig, Protocol};
    use ssm_stats::{Counters, ProtoActivity};

    fn record(app: &str, procs: usize, cycles: u64, host_ms: u64) -> CellRecord {
        CellRecord {
            cell: Cell::new(app, Protocol::Hlrc, LayerConfig::base(), procs, Scale::Test),
            total_cycles: cycles,
            per_proc: vec![[1, 0, 0, 0, 0, 0]; procs],
            activity: ProtoActivity::default(),
            counters: Counters::default(),
            verified: true,
            verify_error: None,
            host_ms,
            attempts: 1,
            threads_spawned: 0,
            threads_reused: 0,
        }
    }

    fn write_cache(dir: &Path, recs: &[CellRecord]) {
        std::fs::create_dir_all(dir).expect("mkdir");
        let lines: String = recs.iter().map(|r| r.to_json().render() + "\n").collect();
        std::fs::write(dir.join(CACHE_FILE), lines).expect("write");
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ssm-sweep-merge-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn merge_is_byte_identical_across_shard_groupings() {
        let root = tmpdir("group");
        let recs: Vec<CellRecord> = (2..=5)
            .map(|p| record("FFT", p, 100 * p as u64, p as u64))
            .collect();

        // One shard holding everything vs. two shards splitting it.
        let one = root.join("one");
        write_cache(&one.join("s0"), &recs);
        let a = root.join("main-a");
        std::fs::create_dir_all(&a).expect("mkdir");
        merge_caches(&a, &[one.join("s0")]).expect("merge");

        let two = root.join("two");
        write_cache(&two.join("s0"), &recs[..2]);
        write_cache(&two.join("s1"), &recs[2..]);
        let b = root.join("main-b");
        std::fs::create_dir_all(&b).expect("mkdir");
        // Reversed shard order: output must not depend on harvest order.
        merge_caches(&b, &[two.join("s1"), two.join("s0")]).expect("merge");

        let bytes_a = std::fs::read(a.join(CACHE_FILE)).expect("read");
        let bytes_b = std::fs::read(b.join(CACHE_FILE)).expect("read");
        assert_eq!(bytes_a, bytes_b);
        // Canonical lines carry no host time.
        let text = String::from_utf8(bytes_a).expect("utf8");
        assert!(text.contains("\"host_ms\":0"));
        assert!(!text.contains("\"host_ms\":2"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn existing_main_lines_survive_verbatim_and_duplicates_collapse() {
        let root = tmpdir("verbatim");
        let main = root.join("main");
        // Main cache holds a record with a real (nonzero) host time.
        write_cache(&main, &[record("FFT", 2, 100, 42)]);
        let before = std::fs::read_to_string(main.join(CACHE_FILE)).expect("read");

        // Shard re-ran the same cell (host time differs, payload agrees)
        // and adds one new cell.
        let shard = root.join("s0");
        write_cache(
            &shard,
            &[record("FFT", 2, 100, 7), record("FFT", 4, 400, 7)],
        );

        let out = merge_caches(&main, &[shard]).expect("merge");
        assert_eq!(
            out,
            MergeOutcome {
                total: 2,
                added: 1,
                duplicates: 1
            }
        );
        let after = std::fs::read_to_string(main.join(CACHE_FILE)).expect("read");
        assert!(
            after.starts_with(&before),
            "main lines must keep their bytes"
        );
        assert_eq!(after.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn conflicting_payloads_abort_without_touching_the_cache() {
        let root = tmpdir("conflict");
        let main = root.join("main");
        write_cache(&main, &[record("FFT", 2, 100, 1)]);
        let before = std::fs::read(main.join(CACHE_FILE)).expect("read");

        let shard = root.join("s0");
        write_cache(&shard, &[record("FFT", 2, 999, 1)]); // same cell, different cycles

        match merge_caches(&main, &[shard]) {
            Err(MergeError::Conflict { label, detail, .. }) => {
                assert!(label.contains("FFT"), "{label}");
                assert!(detail.contains("total_cycles 100 != 999"), "{detail}");
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(std::fs::read(main.join(CACHE_FILE)).expect("read"), before);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_shard_caches_are_empty_not_errors() {
        let root = tmpdir("missing");
        let main = root.join("main");
        std::fs::create_dir_all(&main).expect("mkdir");
        let out = merge_caches(&main, &[root.join("no-such-shard")]).expect("merge");
        assert_eq!(
            out,
            MergeOutcome {
                total: 0,
                added: 0,
                duplicates: 0
            }
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
