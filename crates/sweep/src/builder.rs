//! The `Sweep` builder: the one front door to sweep execution.
//!
//! Every bench binary builds its cell enumeration, then runs it through
//! this builder — which dispatches to the in-process executor, a worker
//! slice, or the shard coordinator depending on how it was configured
//! (typically straight from the shared CLI via [`Sweep::configure`]):
//!
//! ```no_run
//! use ssm_sweep::prelude::*;
//! # let cells: Vec<Cell> = Vec::new();
//! let run = Sweep::enumerate(&cells)
//!     .jobs(4)
//!     .cache("results")
//!     .retries(1)
//!     .run();
//! # let _ = run;
//! ```

use std::path::PathBuf;
use std::time::Duration;

use crate::cell::Cell;
use crate::cli::SweepCli;
use crate::coordinator::run_coordinator;
use crate::exec::{run_local, SweepOpts, SweepRun};
use crate::shard::ShardSpec;

/// A configured sweep over an explicit cell enumeration.
///
/// Three execution modes, selected by the builder state:
///
/// * **local** (default) — run every cell in-process;
/// * **worker** ([`Sweep::worker`] + [`Sweep::shard`]) — run only this
///   shard's slice into the configured results directory, then exit the
///   process (never returns);
/// * **coordinator** ([`Sweep::shards`]) — partition the cells, re-invoke
///   the current binary once per shard as a subprocess, and merge the
///   shard caches into the main one.
#[derive(Debug)]
pub struct Sweep {
    cells: Vec<Cell>,
    opts: SweepOpts,
    shard: Option<ShardSpec>,
    worker: bool,
    shards: Option<usize>,
    shard_retries: u32,
    worker_cmd: Option<(PathBuf, Vec<String>)>,
}

impl Sweep {
    /// Starts a sweep over `cells` with default options (cache on under
    /// `results/`, all host cores, progress and summary enabled).
    pub fn enumerate(cells: &[Cell]) -> Self {
        Sweep {
            cells: cells.to_vec(),
            opts: SweepOpts::default(),
            shard: None,
            worker: false,
            shards: None,
            shard_retries: 2,
            worker_cmd: None,
        }
    }

    /// Applies everything the shared command line selected: executor
    /// options plus the shard/worker/coordinator mode flags.
    pub fn configure(mut self, cli: &SweepCli) -> Self {
        self.opts = cli.sweep_opts();
        self.shard = cli.shard;
        self.worker = cli.worker;
        self.shards = cli.shards;
        self.shard_retries = cli.shard_retries;
        self
    }

    /// Replaces the executor options wholesale (tests and embedders;
    /// binaries should prefer [`Sweep::configure`]).
    pub fn options(mut self, opts: SweepOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Host worker threads (cells in flight at once).
    pub fn jobs(mut self, n: usize) -> Self {
        self.opts.jobs = n.max(1);
        self
    }

    /// Enables the on-disk cache under `dir` (also the summary location).
    pub fn cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.opts.results_dir = dir.into();
        self.opts.cache = true;
        self
    }

    /// Disables the on-disk cache (always execute, never persist).
    pub fn no_cache(mut self) -> Self {
        self.opts.cache = false;
        self
    }

    /// Per-cell wall-time limit.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.opts.timeout = Some(limit);
        self
    }

    /// Extra attempts for cells that panic or time out.
    pub fn retries(mut self, k: u32) -> Self {
        self.opts.retries = k;
        self
    }

    /// Suppresses stderr progress.
    pub fn quiet(mut self) -> Self {
        self.opts.progress = false;
        self
    }

    /// Sets stderr progress explicitly.
    pub fn progress(mut self, on: bool) -> Self {
        self.opts.progress = on;
        self
    }

    /// Sets whether `bench_summary.json` is written after the run.
    pub fn summary(mut self, on: bool) -> Self {
        self.opts.summary = on;
        self
    }

    /// Restricts the sweep to shard `index` of `count` (the cells whose
    /// hash lands on this shard). Without [`Sweep::worker`] the slice
    /// runs like a normal local sweep.
    ///
    /// # Panics
    /// If `index >= count` or `count == 0`.
    pub fn shard(mut self, index: usize, count: usize) -> Self {
        self.shard = Some(ShardSpec::new(index, count).expect("valid shard"));
        self
    }

    /// Worker mode: run this shard's slice into the results directory,
    /// then exit the process. Requires [`Sweep::shard`]; forces the cache
    /// on (the cache *is* the worker's output channel).
    pub fn worker(mut self) -> Self {
        self.worker = true;
        self
    }

    /// Coordinator mode: split the sweep into `count` subprocess shards
    /// and merge their caches. Requires the cache.
    pub fn shards(mut self, count: usize) -> Self {
        self.shards = Some(count.max(1));
        self
    }

    /// Extra worker relaunches for shards that come back incomplete
    /// (default 2).
    pub fn shard_retries(mut self, k: u32) -> Self {
        self.shard_retries = k;
        self
    }

    /// Overrides the worker command line (defaults to re-invoking the
    /// current executable with the current arguments minus the
    /// coordinator flags). Tests use this because their `current_exe` is
    /// the test harness, not a bench binary.
    pub fn worker_command(mut self, exe: impl Into<PathBuf>, args: Vec<String>) -> Self {
        self.worker_cmd = Some((exe.into(), args));
        self
    }

    /// Runs the sweep in the configured mode.
    ///
    /// In worker mode this **never returns**: the process exits 0 when
    /// every owned cell completed, 1 otherwise, before the calling binary
    /// gets a chance to render anything.
    pub fn run(mut self) -> SweepRun {
        if self.worker {
            let spec = self
                .shard
                .expect("worker mode requires a shard (use --shard i/N)");
            self.opts.cache = true;
            self.opts.summary = true;
            let owned: Vec<Cell> = self
                .cells
                .iter()
                .filter(|c| spec.owns(c))
                .cloned()
                .collect();
            let run = run_local(&owned, &self.opts);
            std::process::exit(if run.failed == 0 { 0 } else { 1 });
        }
        if let Some(count) = self.shards {
            if !self.opts.cache {
                eprintln!("[ssm-sweep] fatal: --shards requires the cache (drop --no-cache)");
                std::process::exit(2);
            }
            return run_coordinator(
                &self.cells,
                &self.opts,
                count,
                self.shard_retries,
                self.worker_cmd,
            );
        }
        let cells = match self.shard {
            Some(spec) => self
                .cells
                .iter()
                .filter(|c| spec.owns(c))
                .cloned()
                .collect(),
            None => self.cells,
        };
        run_local(&cells, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssm_apps::catalog::Scale;

    fn cells() -> Vec<Cell> {
        (1..=4)
            .map(|p| Cell::ideal("FFT", p, Scale::Test))
            .collect()
    }

    #[test]
    fn builder_configures_the_executor() {
        let sweep = Sweep::enumerate(&cells())
            .jobs(3)
            .no_cache()
            .timeout(Duration::from_secs(9))
            .retries(2)
            .quiet()
            .summary(false);
        assert_eq!(sweep.opts.jobs, 3);
        assert!(!sweep.opts.cache);
        assert_eq!(sweep.opts.timeout, Some(Duration::from_secs(9)));
        assert_eq!(sweep.opts.retries, 2);
        assert!(!sweep.opts.progress);
        assert!(!sweep.opts.summary);
    }

    #[test]
    fn configure_copies_the_cli_mode_flags() {
        let mut cli = SweepCli::fixed(2, Scale::Test);
        cli.jobs = 2;
        cli.quiet = true;
        cli.shard = Some(ShardSpec::new(1, 3).expect("spec"));
        cli.worker = true;
        cli.shard_retries = 5;
        let sweep = Sweep::enumerate(&cells()).configure(&cli);
        assert_eq!(sweep.shard, Some(ShardSpec { index: 1, count: 3 }));
        assert!(sweep.worker);
        assert_eq!(sweep.shards, None);
        assert_eq!(sweep.shard_retries, 5);
        assert_eq!(sweep.opts.jobs, 2);
    }

    #[test]
    fn shard_slice_runs_only_owned_cells() {
        let all = cells();
        let run = Sweep::enumerate(&all)
            .no_cache()
            .quiet()
            .summary(false)
            .shard(0, 2)
            .run();
        let spec = ShardSpec::new(0, 2).expect("spec");
        let owned = all.iter().filter(|c| spec.owns(c)).count();
        assert_eq!(run.outcomes.len(), owned);
        assert!(run.outcomes.iter().all(|o| spec.owns(&o.cell)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_shard_panics() {
        let _ = Sweep::enumerate(&[]).shard(3, 3);
    }
}
