//! Node memory-hierarchy model: L1/L2 caches, a write buffer and the memory
//! bus — the per-node architecture of Figure 2 of the paper (a PentiumPro-
//! like node).
//!
//! The hierarchy is *timing-directed*: it never stores data, only tags and
//! dirty bits, and answers "how many cycles does this access stall the
//! processor?". Application data lives in the shared store owned by
//! `ssm-proto`; protocols call [`Hierarchy::touch_range`] to model the cache
//! pollution caused by twinning/diffing, which the paper simulates
//! explicitly ("cache pollution due to protocol processing is also
//! included", §3.1).
//!
//! Defaults (see [`MemConfig::pentium_pro_like`]):
//!
//! * L1: 8 KB, 2-way, 32 B lines, hit folded into the 1-IPC busy time;
//! * L2: 256 KB, 4-way, 32 B lines, 8-cycle hit;
//! * memory: 60-cycle latency plus 32 B over a 2 bytes/cycle memory bus;
//! * write buffer: 8 entries, retiring at the L2/memory (writes stall only
//!   when the buffer is full).

pub mod cache;

pub use cache::{Cache, CacheConfig};

use ssm_engine::{Cycles, Pipe};
use std::collections::VecDeque;

/// Configuration of a node's memory system.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// First-level cache geometry.
    pub l1: CacheConfig,
    /// Second-level cache geometry.
    pub l2: CacheConfig,
    /// Extra cycles for an L2 hit (beyond the pipelined L1 path).
    pub l2_hit_cycles: Cycles,
    /// DRAM access latency in cycles (before bus occupancy).
    pub mem_latency: Cycles,
    /// Memory-bus bandwidth numerator/denominator in bytes per cycles.
    pub bus_bytes: u64,
    /// Memory-bus bandwidth denominator (cycles per `bus_bytes`).
    pub bus_cycles: u64,
    /// Write-buffer depth (writes stall only when full).
    pub write_buffer: usize,
}

impl MemConfig {
    /// The paper's PentiumPro-like node (Appendix): 8 KB 2-way L1, 256 KB
    /// 4-way L2, 32 B lines everywhere, 60-cycle memory, 2 B/cycle bus,
    /// 8-entry write buffer.
    pub fn pentium_pro_like() -> Self {
        MemConfig {
            l1: CacheConfig {
                size: 8 << 10,
                line: 32,
                assoc: 2,
            },
            l2: CacheConfig {
                size: 256 << 10,
                line: 32,
                assoc: 4,
            },
            l2_hit_cycles: 8,
            mem_latency: 60,
            bus_bytes: 2,
            bus_cycles: 1,
            write_buffer: 8,
        }
    }

    /// A tiny configuration for unit tests (256 B L1, 1 KB L2).
    pub fn tiny() -> Self {
        MemConfig {
            l1: CacheConfig {
                size: 256,
                line: 32,
                assoc: 1,
            },
            l2: CacheConfig {
                size: 1024,
                line: 32,
                assoc: 2,
            },
            l2_hit_cycles: 8,
            mem_latency: 60,
            bus_bytes: 2,
            bus_cycles: 1,
            write_buffer: 2,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::pentium_pro_like()
    }
}

/// Hit/miss statistics for one hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Processor-issued accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit in L1.
    pub l1_hits: u64,
    /// Accesses that missed L1 but hit L2.
    pub l2_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
    /// Dirty-line writebacks to memory.
    pub writebacks: u64,
    /// Write-buffer full stalls.
    pub wb_stalls: u64,
}

/// One node's two-level cache hierarchy plus write buffer and memory bus.
///
/// # Example
///
/// ```rust
/// use ssm_mem::{Hierarchy, MemConfig};
/// let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
/// let cold = h.read(0, 0x1000);   // cold miss: memory latency + bus
/// assert!(cold > 60);
/// let warm = h.read(1000, 0x1000); // now cached: free (L1 hit)
/// assert_eq!(warm, 0);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    bus: Pipe,
    /// Retirement times of in-flight buffered writes.
    wb: VecDeque<Cycles>,
    stats: MemStats,
}

impl Hierarchy {
    /// Creates an empty (cold) hierarchy.
    pub fn new(cfg: MemConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            bus: Pipe::new(cfg.bus_bytes, cfg.bus_cycles),
            wb: VecDeque::new(),
            cfg,
            stats: MemStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Cycles a *fill* from memory takes at `now` (latency + bus occupancy,
    /// including queueing behind earlier transfers).
    fn mem_fill(&mut self, now: Cycles) -> Cycles {
        self.stats.mem_accesses += 1;
        let line = self.cfg.l2.line as u64;
        let done = self.bus.transfer(now + self.cfg.mem_latency, line);
        done - now
    }

    fn writeback(&mut self, now: Cycles) {
        self.stats.writebacks += 1;
        let line = self.cfg.l2.line as u64;
        // Writebacks occupy the bus but do not stall the processor.
        let _ = self.bus.transfer(now, line);
    }

    /// Models a processor *read* of the line containing `addr`; returns the
    /// stall cycles beyond the 1-IPC pipeline.
    pub fn read(&mut self, now: Cycles, addr: u64) -> Cycles {
        self.stats.accesses += 1;
        if self.l1.probe(addr, false) {
            self.stats.l1_hits += 1;
            return 0;
        }
        if self.l2.probe(addr, false) {
            self.stats.l2_hits += 1;
            self.fill_l1(now, addr, false);
            return self.cfg.l2_hit_cycles;
        }
        let stall = self.cfg.l2_hit_cycles + self.mem_fill(now);
        self.fill_l2(now, addr, false);
        self.fill_l1(now, addr, false);
        stall
    }

    /// Models a processor *write*; returns stall cycles. Writes retire
    /// through the write buffer, so they stall only when the buffer is full.
    pub fn write(&mut self, now: Cycles, addr: u64) -> Cycles {
        self.stats.accesses += 1;
        // Retire completed buffered writes.
        while let Some(&t) = self.wb.front() {
            if t <= now {
                self.wb.pop_front();
            } else {
                break;
            }
        }
        let mut stall = 0;
        let mut now = now;
        if self.wb.len() >= self.cfg.write_buffer {
            let t = self.wb.pop_front().expect("non-empty write buffer");
            self.stats.wb_stalls += 1;
            stall = t - now;
            now = t;
        }
        // Determine how long the write takes to retire (in the background).
        let retire = if self.l1.probe(addr, true) {
            self.stats.l1_hits += 1;
            now
        } else if self.l2.probe(addr, true) {
            self.stats.l2_hits += 1;
            self.fill_l1(now, addr, true);
            now + self.cfg.l2_hit_cycles
        } else {
            // Write-allocate: fetch the line, then write.
            let fill = self.mem_fill(now);
            self.fill_l2(now, addr, true);
            self.fill_l1(now, addr, true);
            now + self.cfg.l2_hit_cycles + fill
        };
        self.wb.push_back(retire);
        stall
    }

    /// Models protocol code streaming over `[addr, addr+len)` (twin/diff
    /// creation or application). Touches every line, polluting the caches,
    /// and returns the total stall cycles the protocol engine incurs.
    ///
    /// `write` selects whether the lines are dirtied.
    pub fn touch_range(&mut self, now: Cycles, addr: u64, len: u64, write: bool) -> Cycles {
        if len == 0 {
            return 0;
        }
        let line = self.cfg.l2.line as u64;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        let mut stall = 0;
        for l in first..=last {
            let a = l * line;
            stall += if write {
                self.write(now + stall, a)
            } else {
                self.read(now + stall, a)
            };
        }
        stall
    }

    /// Models protocol code *streaming* over `[addr, addr+len)` — bulk
    /// copies such as twin creation and diff creation/application. Unlike
    /// [`Hierarchy::touch_range`], misses pipeline: the caller pays the
    /// DRAM latency once plus bandwidth-limited bus occupancy for the
    /// missed lines (plus a small per-line L2 cost for hits), instead of
    /// the full miss latency per line. The caches are polluted exactly as
    /// with per-line access (fills + evictions), which is the effect the
    /// paper simulates for twinning/diffing.
    pub fn stream_range(&mut self, now: Cycles, addr: u64, len: u64, write: bool) -> Cycles {
        if len == 0 {
            return 0;
        }
        let line = self.cfg.l2.line as u64;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        let mut missed_lines = 0u64;
        let mut hit_lines = 0u64;
        for l in first..=last {
            let a = l * line;
            self.stats.accesses += 1;
            if self.l1.probe(a, write) {
                self.stats.l1_hits += 1;
                hit_lines += 1;
            } else if self.l2.probe(a, write) {
                self.stats.l2_hits += 1;
                self.fill_l1(now, a, write);
                hit_lines += 1;
            } else {
                self.stats.mem_accesses += 1;
                self.fill_l2(now, a, write);
                self.fill_l1(now, a, write);
                missed_lines += 1;
            }
        }
        let mut stall = 2 * hit_lines; // pipelined L2 throughput
        if missed_lines > 0 {
            let done = self
                .bus
                .transfer(now + self.cfg.mem_latency, missed_lines * line);
            stall += done - now;
        }
        stall
    }

    /// Drops every line of `[addr, addr+len)` from both caches without
    /// writing back (used when a page is invalidated by the protocol: its
    /// cached contents are stale).
    pub fn invalidate_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = self.cfg.l2.line as u64;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        for l in first..=last {
            self.l1.invalidate(l * line);
            self.l2.invalidate(l * line);
        }
    }

    fn fill_l1(&mut self, _now: Cycles, addr: u64, dirty: bool) {
        // L1 is write-through to L2 in this model: evicted dirty L1 lines
        // are already in L2, so L1 evictions are silent.
        let _ = self.l1.fill(addr, dirty);
    }

    fn fill_l2(&mut self, now: Cycles, addr: u64, dirty: bool) {
        if let Some(evicted_dirty) = self.l2.fill(addr, dirty) {
            if evicted_dirty {
                self.writeback(now);
            }
            // Inclusive hierarchy: an L2 eviction removes the line from L1.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_then_hits() {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        let cold = h.read(0, 4096);
        // 8 (L2 probe path) + 60 (memory) + 16 (32 B over 2 B/cycle).
        assert_eq!(cold, 8 + 60 + 16);
        assert_eq!(h.read(100, 4096), 0);
        assert_eq!(h.read(100, 4100), 0); // same 32 B line
        let s = h.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.l1_hits, 2);
        assert_eq!(s.mem_accesses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = MemConfig::tiny(); // L1: 256 B direct-mapped, 8 lines
        let mut h = Hierarchy::new(cfg);
        h.read(0, 0); // line 0
        h.read(200, 256); // maps to same L1 set (direct-mapped), evicts
        let stall = h.read(400, 0); // L1 miss, L2 hit
        assert_eq!(stall, 8);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn writes_use_buffer() {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        // Two cold writes to distinct lines: both buffered, no stall.
        assert_eq!(h.write(0, 0), 0);
        assert_eq!(h.write(1, 64), 0);
        assert_eq!(h.stats().wb_stalls, 0);
    }

    #[test]
    fn write_buffer_full_stalls() {
        let mut h = Hierarchy::new(MemConfig::tiny()); // depth 2
                                                       // Issue 3 cold writes at the same instant: the third must stall.
        h.write(0, 0);
        h.write(0, 64);
        let stall = h.write(0, 128);
        assert!(stall > 0);
        assert_eq!(h.stats().wb_stalls, 1);
    }

    #[test]
    fn touch_range_covers_all_lines() {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        let stall = h.touch_range(0, 0, 4096, false);
        assert!(stall > 0);
        assert_eq!(h.stats().mem_accesses, 4096 / 32);
        // A second pass hits (4 KB fits in the 256 KB L2 and 8 KB L1).
        let stall2 = h.touch_range(10_000, 0, 4096, false);
        assert_eq!(stall2, 0);
    }

    #[test]
    fn invalidate_range_forces_refetch() {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        h.read(0, 0);
        assert_eq!(h.read(100, 0), 0);
        h.invalidate_range(0, 32);
        assert!(h.read(200, 0) > 0);
    }

    #[test]
    fn touch_range_empty_is_free() {
        let mut h = Hierarchy::new(MemConfig::pentium_pro_like());
        assert_eq!(h.touch_range(0, 128, 0, true), 0);
        assert_eq!(h.stats().accesses, 0);
    }

    #[test]
    fn stream_is_much_cheaper_than_per_line_touch() {
        let mut a = Hierarchy::new(MemConfig::pentium_pro_like());
        let per_line = a.touch_range(0, 0, 4096, false);
        let mut b = Hierarchy::new(MemConfig::pentium_pro_like());
        let streamed = b.stream_range(0, 0, 4096, false);
        assert!(
            streamed * 3 < per_line,
            "stream {streamed} vs touch {per_line}"
        );
        // Both pollute identically: a second streamed pass hits.
        let warm = b.stream_range(10_000, 0, 4096, false);
        assert_eq!(warm, 2 * (4096 / 32));
        assert_eq!(b.stats().mem_accesses, 4096 / 32);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut h = Hierarchy::new(MemConfig::tiny()); // L2: 1 KB, 2-way, 32 B
                                                       // Dirty many distinct lines so L2 must evict dirty victims.
        for i in 0..128u64 {
            h.write(i * 1000, i * 32);
        }
        assert!(h.stats().writebacks > 0);
    }
}
