//! A set-associative, LRU, write-back cache directory (tags + dirty bits
//! only; the simulator is timing-directed and stores no data).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero terms, capacity not a
    /// multiple of `line * assoc`, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.size > 0 && self.line > 0 && self.assoc > 0);
        assert!(
            self.line.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.size / self.line;
        assert!(
            lines.is_multiple_of(self.assoc) && lines > 0,
            "capacity must be a whole number of sets"
        );
        lines / self.assoc
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
}

/// A set-associative LRU cache over 64-bit addresses.
///
/// # Example
///
/// ```rust
/// use ssm_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size: 128, line: 32, assoc: 2 });
/// assert!(!c.probe(0, false)); // cold
/// c.fill(0, false);
/// assert!(c.probe(0, false)); // warm
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s]` is ordered most-recently-used first.
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Creates a cold cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.sets();
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc); nsets],
            set_mask: nsets as u64 - 1,
            line_shift: cfg.line.trailing_zeros(),
            cfg,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.sets.len().trailing_zeros(),
        )
    }

    /// Looks up `addr`; on a hit, refreshes LRU order and (for writes) sets
    /// the dirty bit. Returns whether it hit.
    pub fn probe(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.valid && w.tag == tag) {
            let mut way = ways.remove(pos);
            way.dirty |= write;
            ways.insert(0, way);
            true
        } else {
            false
        }
    }

    /// Installs the line containing `addr` (MRU position). Returns
    /// `Some(evicted_dirty)` if a valid line was evicted, `None` otherwise.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<bool> {
        let (set, tag) = self.locate(addr);
        let assoc = self.cfg.assoc;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.valid && w.tag == tag) {
            // Already present (e.g. refill after a race): refresh.
            let mut way = ways.remove(pos);
            way.dirty |= dirty;
            ways.insert(0, way);
            return None;
        }
        let evicted = if ways.len() >= assoc {
            ways.pop().map(|w| w.dirty)
        } else {
            None
        };
        ways.insert(
            0,
            Way {
                tag,
                valid: true,
                dirty,
            },
        );
        evicted
    }

    /// Removes the line containing `addr` if present (no writeback: the
    /// contents are assumed stale). Returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.valid && w.tag == tag) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32 B lines = 256 B.
        Cache::new(CacheConfig {
            size: 256,
            line: 32,
            assoc: 2,
        })
    }

    #[test]
    fn sets_computation() {
        let cfg = CacheConfig {
            size: 8 << 10,
            line: 32,
            assoc: 2,
        };
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.probe(64, false));
        assert_eq!(c.fill(64, false), None);
        assert!(c.probe(64, false));
        assert!(c.probe(95, false)); // same line
        assert!(!c.probe(96, false)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        c.fill(0, false);
        c.fill(4 * 32, false);
        // Touch line 0 so line 4 becomes LRU.
        assert!(c.probe(0, false));
        let evicted = c.fill(8 * 32, false);
        assert_eq!(evicted, Some(false));
        assert!(c.probe(0, false)); // survived
        assert!(!c.probe(4 * 32, false)); // evicted
        assert!(c.probe(8 * 32, false));
    }

    #[test]
    fn dirty_bit_reported_on_eviction() {
        let mut c = small();
        c.fill(0, true);
        c.fill(4 * 32, false);
        let evicted = c.fill(8 * 32, false); // evicts line 0 (LRU, dirty)
        assert_eq!(evicted, Some(true));
    }

    #[test]
    fn write_probe_dirties() {
        let mut c = small();
        c.fill(0, false);
        assert!(c.probe(0, true)); // line 0 now MRU and dirty
        c.fill(4 * 32, false); // set: [4 (MRU), 0]
        let evicted = c.fill(8 * 32, false); // evicts line 0 (dirtied)
        assert_eq!(evicted, Some(true));
        let evicted = c.fill(12 * 32, false); // evicts line 4 (clean)
        assert_eq!(evicted, Some(false));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(0, true);
        assert!(c.invalidate(0));
        assert!(!c.probe(0, false));
        assert!(!c.invalidate(0));
    }

    #[test]
    fn refill_refreshes_not_duplicates() {
        let mut c = small();
        c.fill(0, false);
        c.fill(0, true); // refill same line
        c.fill(4 * 32, false);
        // Set 0 holds exactly 2 lines; a third fill must evict one.
        let e = c.fill(8 * 32, false);
        assert!(e.is_some());
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 100,
            line: 32,
            assoc: 2,
        });
    }
}
