//! Myrinet-like cluster network model with a VMMC-style fast messaging
//! library.
//!
//! Models the paper's communication layer (§3.2): each node owns a network
//! interface (NI) with its own send occupancy, and an I/O bus whose
//! bandwidth limits host↔network transfers. Links are fast and contention
//! in links/switches is *not* modelled (exactly as in the paper); contention
//! at the end-points — NI occupancy and I/O bus — is modelled in full.
//!
//! A message travels:
//!
//! 1. **host overhead** — the sending processor is busy placing the message
//!    in an NI buffer (charged by the caller on the sending CPU, because the
//!    CPU is a protocol-owned resource);
//! 2. **I/O bus (source)** — DMA from host memory into NI SRAM;
//! 3. **NI occupancy** — the (slow) NI processor prepares each packet;
//!    packets are up to [`CommParams::max_packet`] bytes;
//! 4. **link latency** — fixed small delay;
//! 5. **I/O bus (destination)** — DMA from the NI into host memory.
//!
//! Incoming *data* messages are deposited directly into host memory with no
//! handler or receive operation (VMMC behaviour, §3.2); *request* messages
//! additionally incur [`CommParams::msg_handling`] on the destination
//! processor, which the protocol layer charges when it dispatches the
//! handler.

use ssm_engine::{Cycles, Pipe, Resource};

/// Communication-layer cost parameters (the paper's Table 2).
///
/// All values in cycles of the 1-IPC 200 MHz processor. See DESIGN.md for
/// the OCR-approximation notes on the exact constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommParams {
    /// Host processor busy time per message send.
    pub host_overhead: Cycles,
    /// I/O bus bandwidth as an exact rational: `Some((bytes, cycles))`
    /// means `bytes` per `cycles`; `None` means infinite.
    pub io_bus_rate: Option<(u64, u64)>,
    /// NI processor occupancy per packet.
    pub ni_occupancy: Cycles,
    /// Cost from a message reaching the head of the incoming queue to its
    /// handler starting (polling model; charged once per request message).
    pub msg_handling: Cycles,
    /// Fixed link latency.
    pub link_latency: Cycles,
    /// Maximum packet size in bytes.
    pub max_packet: u64,
}

impl CommParams {
    /// The *achievable* set (paper's base system "A"): a PentiumPro cluster
    /// with Myrinet under VMMC.
    pub fn achievable() -> Self {
        CommParams {
            host_overhead: 600,
            io_bus_rate: Some((1, 2)), // 0.5 bytes/cycle ~ 100 MB/s
            ni_occupancy: 1000,
            msg_handling: 200,
            link_latency: 20,
            max_packet: 4096,
        }
    }

    /// The *best* set ("B"): all parameterized *time* costs zero. The I/O
    /// bus keeps its achievable bandwidth and the link its latency — the
    /// paper zeroes overheads/occupancy/handling only, which is exactly
    /// why the separate "better than best" (B+) point exists: B+ is where
    /// bandwidth finally improves too.
    pub fn best() -> Self {
        CommParams {
            host_overhead: 0,
            io_bus_rate: Some((1, 2)),
            ni_occupancy: 0,
            msg_handling: 0,
            link_latency: 20,
            max_packet: 4096,
        }
    }

    /// The *better-than-best* set ("B+"): like [`CommParams::best`] but the
    /// link is free too and the I/O bus moves 4 bytes/cycle — twice the
    /// memory-bus bandwidth (the paper sets an explicit rate here rather
    /// than infinite, to expose bandwidth-limited cases such as Radix).
    pub fn better_than_best() -> Self {
        CommParams {
            host_overhead: 0,
            io_bus_rate: Some((4, 1)),
            ni_occupancy: 0,
            msg_handling: 0,
            link_latency: 0,
            max_packet: 4096,
        }
    }

    /// The *halfway* set ("H"): every achievable cost halved (bandwidth
    /// doubled).
    pub fn halfway() -> Self {
        CommParams {
            host_overhead: 300,
            io_bus_rate: Some((1, 1)),
            ni_occupancy: 500,
            msg_handling: 100,
            link_latency: 20,
            max_packet: 4096,
        }
    }

    /// The *worse* set ("W"): every achievable cost doubled (bandwidth
    /// halved) — communication degrading relative to processor speed.
    pub fn worse() -> Self {
        CommParams {
            host_overhead: 1200,
            io_bus_rate: Some((1, 4)),
            ni_occupancy: 2000,
            msg_handling: 400,
            link_latency: 20,
            max_packet: 4096,
        }
    }
}

impl Default for CommParams {
    fn default() -> Self {
        CommParams::achievable()
    }
}

/// Aggregate traffic statistics for one node's NI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NiStats {
    /// Messages sent from this node.
    pub messages_sent: u64,
    /// Payload bytes sent from this node.
    pub bytes_sent: u64,
    /// Packets prepared by this node's NI.
    pub packets_sent: u64,
}

struct Endpoint {
    ni: Resource,
    io_bus: Pipe,
    stats: NiStats,
}

/// The cluster interconnect: one NI + I/O bus per node, free links.
///
/// # Example
///
/// ```rust
/// use ssm_net::{CommParams, Network};
/// let mut net = Network::new(4, CommParams::achievable());
/// // A 64-byte request from node 0 to node 1, leaving the host at t=0
/// // (host overhead is charged separately on the sending CPU).
/// let arrival = net.deliver(0, 0, 1, 64);
/// assert!(arrival > 0);
/// // On the "best" network only bus bandwidth and the link remain.
/// let mut fast = Network::new(4, CommParams::best());
/// assert_eq!(fast.deliver(0, 0, 1, 64), 128 + 20 + 128);
/// ```
pub struct Network {
    params: CommParams,
    nodes: Vec<Endpoint>,
}

impl Network {
    /// Creates a network of `nodes` endpoints with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `max_packet == 0`.
    pub fn new(nodes: usize, params: CommParams) -> Self {
        assert!(nodes >= 2, "a cluster needs at least two nodes");
        assert!(params.max_packet > 0, "packets must hold at least one byte");
        let mk = || Endpoint {
            ni: Resource::new(),
            io_bus: match params.io_bus_rate {
                Some((b, c)) => Pipe::new(b, c),
                None => Pipe::infinite(),
            },
            stats: NiStats::default(),
        };
        Network {
            nodes: (0..nodes).map(|_| mk()).collect(),
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CommParams {
        &self.params
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-node traffic statistics.
    pub fn stats(&self, node: usize) -> NiStats {
        self.nodes[node].stats
    }

    /// Moves a `bytes`-byte message from `src` to `dst`, with DMA out of
    /// host memory starting at `t` (i.e. *after* the host overhead, which
    /// the caller charges to the sending CPU). Returns the cycle at which
    /// the full message sits in `dst` host memory / at the head of its
    /// incoming queue.
    ///
    /// The message is segmented into packets of at most `max_packet` bytes;
    /// packets pipeline through the NI, link and destination I/O bus.
    /// Contention with other transfers at either endpoint is modelled by
    /// the FIFO resources.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (protocols service local operations without
    /// the network) or either index is out of range.
    pub fn deliver(&mut self, t: Cycles, src: usize, dst: usize, bytes: u64) -> Cycles {
        assert_ne!(src, dst, "local messages never enter the network");
        let bytes = bytes.max(1); // control messages still occupy a packet
        self.nodes[src].stats.messages_sent += 1;
        self.nodes[src].stats.bytes_sent += bytes;
        let mut remaining = bytes;
        let mut arrival = t;
        let mut src_ready = t;
        while remaining > 0 {
            let pkt = remaining.min(self.params.max_packet);
            remaining -= pkt;
            self.nodes[src].stats.packets_sent += 1;
            // DMA host -> NI over the source I/O bus.
            let t1 = self.nodes[src].io_bus.transfer(src_ready, pkt);
            // NI prepares the packet.
            let t2 = self.nodes[src].ni.acquire(t1, self.params.ni_occupancy);
            // Next packet can start DMA as soon as this one left the bus.
            src_ready = t1;
            // Wire.
            let t3 = t2 + self.params.link_latency;
            // DMA NI -> host at the destination.
            let t4 = self.nodes[dst].io_bus.transfer(t3, pkt);
            arrival = arrival.max(t4);
        }
        arrival
    }

    /// One-way zero-load latency of a `bytes` message (no contention), for
    /// reporting and sanity checks.
    pub fn zero_load_latency(&self, bytes: u64) -> Cycles {
        let bytes = bytes.max(1);
        let p = &self.params;
        let io = match p.io_bus_rate {
            None => 0,
            Some((b, c)) => (bytes.min(p.max_packet) * c).div_ceil(b),
        };
        // First packet: out-bus + occupancy + link + in-bus.
        io + p.ni_occupancy + p.link_latency + io
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let a = CommParams::achievable();
        let h = CommParams::halfway();
        let w = CommParams::worse();
        assert!(h.host_overhead < a.host_overhead);
        assert!(a.host_overhead < w.host_overhead);
        assert_eq!(CommParams::best().host_overhead, 0);
        assert_eq!(CommParams::better_than_best().link_latency, 0);
    }

    #[test]
    fn small_message_latency() {
        let mut net = Network::new(2, CommParams::achievable());
        let t = net.deliver(0, 0, 1, 64);
        // 128 (out I/O bus) + 1000 (NI) + 20 (link) + 128 (in I/O bus).
        assert_eq!(t, 128 + 1000 + 20 + 128);
        assert_eq!(net.zero_load_latency(64), t);
    }

    #[test]
    fn page_message_segments_into_packets() {
        let mut net = Network::new(2, CommParams::achievable());
        let before = net.stats(0);
        assert_eq!(before.packets_sent, 0);
        let _ = net.deliver(0, 0, 1, 8192); // two 4 KB packets
        let s = net.stats(0);
        assert_eq!(s.packets_sent, 2);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.bytes_sent, 8192);
    }

    #[test]
    fn packets_pipeline() {
        // With pipelining, an 8 KB message should take much less than twice
        // the single-packet time.
        let mut a = Network::new(2, CommParams::achievable());
        let one = a.deliver(0, 0, 1, 4096);
        let mut b = Network::new(2, CommParams::achievable());
        let two = b.deliver(0, 0, 1, 8192);
        assert!(two < 2 * one);
        assert!(two > one);
    }

    #[test]
    fn endpoint_contention_serializes() {
        let mut net = Network::new(3, CommParams::achievable());
        let first = net.deliver(0, 0, 1, 4096);
        // A second message from node 0 queues behind the first at the
        // source NI and I/O bus.
        let second = net.deliver(0, 0, 2, 4096);
        assert!(second > first);
        // Traffic between uninvolved endpoints is unaffected: node 2 to
        // node 0's *outbound* resources are idle, and a fresh network
        // delivers the same message at the same uncontended time.
        let mut fresh = Network::new(3, CommParams::achievable());
        let uncontended = fresh.deliver(0, 2, 0, 64);
        let cross = net.deliver(second, 2, 0, 64);
        assert_eq!(cross, second + uncontended);
    }

    #[test]
    fn best_network_is_bandwidth_limited_only() {
        let mut net = Network::new(2, CommParams::best());
        // Overheads are gone but the 0.5 B/cycle bus remains: a 64-byte
        // message costs two bus crossings plus the link.
        assert_eq!(net.deliver(0, 0, 1, 64), 128 + 20 + 128);
        // B+ removes the bandwidth limit too (4 B/cycle) and the link.
        let mut bp = Network::new(2, CommParams::better_than_best());
        assert_eq!(bp.deliver(0, 0, 1, 64), 16 + 16);
    }

    #[test]
    fn worse_is_slower_than_achievable() {
        let mut a = Network::new(2, CommParams::achievable());
        let mut w = Network::new(2, CommParams::worse());
        assert!(w.deliver(0, 0, 1, 4096) > a.deliver(0, 0, 1, 4096));
    }

    #[test]
    fn zero_byte_control_message_still_costs() {
        let mut net = Network::new(2, CommParams::achievable());
        assert!(net.deliver(0, 0, 1, 0) > 0);
    }

    #[test]
    #[should_panic(expected = "local messages")]
    fn rejects_self_send() {
        let mut net = Network::new(2, CommParams::achievable());
        let _ = net.deliver(0, 1, 1, 4);
    }
}
