//! Myrinet-like cluster network model with a VMMC-style fast messaging
//! library.
//!
//! Models the paper's communication layer (§3.2): each node owns a network
//! interface (NI) with its own send occupancy, and an I/O bus whose
//! bandwidth limits host↔network transfers. Links are fast and contention
//! in links/switches is *not* modelled (exactly as in the paper); contention
//! at the end-points — NI occupancy and I/O bus — is modelled in full.
//!
//! A message travels:
//!
//! 1. **host overhead** — the sending processor is busy placing the message
//!    in an NI buffer (charged by the caller on the sending CPU, because the
//!    CPU is a protocol-owned resource);
//! 2. **I/O bus (source)** — DMA from host memory into NI SRAM;
//! 3. **NI occupancy** — the (slow) NI processor prepares each packet;
//!    packets are up to [`CommParams::max_packet`] bytes;
//! 4. **link latency** — fixed small delay;
//! 5. **I/O bus (destination)** — DMA from the NI into host memory.
//!
//! Incoming *data* messages are deposited directly into host memory with no
//! handler or receive operation (VMMC behaviour, §3.2); *request* messages
//! additionally incur [`CommParams::msg_handling`] on the destination
//! processor, which the protocol layer charges when it dispatches the
//! handler.

use ssm_engine::{Cycles, Pipe, Resource};

/// Communication-layer cost parameters (the paper's Table 2).
///
/// All values in cycles of the 1-IPC 200 MHz processor. See DESIGN.md for
/// the OCR-approximation notes on the exact constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommParams {
    /// Host processor busy time per message send.
    pub host_overhead: Cycles,
    /// I/O bus bandwidth as an exact rational: `Some((bytes, cycles))`
    /// means `bytes` per `cycles`; `None` means infinite.
    pub io_bus_rate: Option<(u64, u64)>,
    /// NI processor occupancy per packet.
    pub ni_occupancy: Cycles,
    /// Cost from a message reaching the head of the incoming queue to its
    /// handler starting (polling model; charged once per request message).
    pub msg_handling: Cycles,
    /// Fixed link latency.
    pub link_latency: Cycles,
    /// Maximum packet size in bytes.
    pub max_packet: u64,
    /// NI processor occupancy to serve a one-sided (RDMA) read or write
    /// against host memory at the *target* node, with no host CPU
    /// involvement. Cheaper than [`CommParams::ni_occupancy`]: the NI only
    /// DMAs to/from a pre-translated address instead of running the full
    /// per-packet send path.
    pub rdma_occupancy: Cycles,
    /// Host processor busy time to post a one-sided descriptor at the
    /// *initiator* (fill in remote address + length, ring the doorbell).
    /// Cheaper than [`CommParams::host_overhead`]: no marshalling, no
    /// handler dispatch state.
    pub rdma_issue: Cycles,
}

impl CommParams {
    /// The *achievable* set (paper's base system "A"): a PentiumPro cluster
    /// with Myrinet under VMMC.
    pub fn achievable() -> Self {
        CommParams {
            host_overhead: 600,
            io_bus_rate: Some((1, 2)), // 0.5 bytes/cycle ~ 100 MB/s
            ni_occupancy: 1000,
            msg_handling: 200,
            link_latency: 20,
            max_packet: 4096,
            rdma_occupancy: 250,
            rdma_issue: 150,
        }
    }

    /// The *best* set ("B"): all parameterized *time* costs zero. The I/O
    /// bus keeps its achievable bandwidth and the link its latency — the
    /// paper zeroes overheads/occupancy/handling only, which is exactly
    /// why the separate "better than best" (B+) point exists: B+ is where
    /// bandwidth finally improves too.
    pub fn best() -> Self {
        CommParams {
            host_overhead: 0,
            io_bus_rate: Some((1, 2)),
            ni_occupancy: 0,
            msg_handling: 0,
            link_latency: 20,
            max_packet: 4096,
            rdma_occupancy: 0,
            rdma_issue: 0,
        }
    }

    /// The *better-than-best* set ("B+"): like [`CommParams::best`] but the
    /// link is free too and the I/O bus moves 4 bytes/cycle — twice the
    /// memory-bus bandwidth (the paper sets an explicit rate here rather
    /// than infinite, to expose bandwidth-limited cases such as Radix).
    pub fn better_than_best() -> Self {
        CommParams {
            host_overhead: 0,
            io_bus_rate: Some((4, 1)),
            ni_occupancy: 0,
            msg_handling: 0,
            link_latency: 0,
            max_packet: 4096,
            rdma_occupancy: 0,
            rdma_issue: 0,
        }
    }

    /// The *halfway* set ("H"): every achievable cost halved (bandwidth
    /// doubled).
    pub fn halfway() -> Self {
        CommParams {
            host_overhead: 300,
            io_bus_rate: Some((1, 1)),
            ni_occupancy: 500,
            msg_handling: 100,
            link_latency: 20,
            max_packet: 4096,
            rdma_occupancy: 125,
            rdma_issue: 75,
        }
    }

    /// The *worse* set ("W"): every achievable cost doubled (bandwidth
    /// halved) — communication degrading relative to processor speed.
    pub fn worse() -> Self {
        CommParams {
            host_overhead: 1200,
            io_bus_rate: Some((1, 4)),
            ni_occupancy: 2000,
            msg_handling: 400,
            link_latency: 20,
            max_packet: 4096,
            rdma_occupancy: 500,
            rdma_issue: 300,
        }
    }
}

impl Default for CommParams {
    fn default() -> Self {
        CommParams::achievable()
    }
}

/// Aggregate traffic statistics for one node's NI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NiStats {
    /// Messages sent from this node.
    pub messages_sent: u64,
    /// Payload bytes sent from this node.
    pub bytes_sent: u64,
    /// Packets prepared by this node's NI.
    pub packets_sent: u64,
}

/// Injected-fault counters for one node (faults are attributed to the
/// node whose *outgoing* message they hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Copies lost on the wire / at the receiving NI.
    pub drops: u64,
    /// Copies spuriously replayed by the NI.
    pub duplicates: u64,
    /// Copies hit by a bounded delay spike.
    pub delays: u64,
    /// Extra cycles added by delay spikes.
    pub delay_cycles: u64,
    /// Transient NI stalls suffered before a send.
    pub ni_stalls: u64,
    /// Cycles the NI was wedged by those stalls.
    pub stall_cycles: u64,
}

impl FaultStats {
    /// Total injected fault events.
    pub fn total(&self) -> u64 {
        self.drops + self.duplicates + self.delays + self.ni_stalls
    }
}

/// What the fault plan did to one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Delivered untouched.
    None,
    /// The copy is lost after leaving the source (never reaches `dst`).
    Drop,
    /// The NI replays the copy: two identical copies arrive.
    Duplicate,
    /// Arrival is late by the given bounded number of cycles.
    Delay(Cycles),
    /// The source NI is wedged for the given cycles before sending.
    NiStall(Cycles),
}

/// Per-transmission fault probabilities in parts-per-million, with the
/// magnitude bounds for the timed fault classes.
///
/// Rates are integers (not floats) so fault configurations hash and
/// compare exactly — the same discipline the sweep cell model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRates {
    /// Drop probability per transmission, ppm.
    pub drop_ppm: u32,
    /// Duplicate probability per transmission, ppm.
    pub dup_ppm: u32,
    /// Delay-spike probability per transmission, ppm.
    pub delay_ppm: u32,
    /// NI-stall probability per transmission, ppm.
    pub stall_ppm: u32,
    /// Largest delay spike, cycles (spikes draw uniformly from
    /// `1..=max_delay`).
    pub max_delay: Cycles,
    /// Largest NI stall, cycles (stalls draw uniformly from
    /// `1..=max_stall`).
    pub max_stall: Cycles,
}

/// Deterministic, seeded fault schedule consulted once per transmission.
///
/// The RNG is SplitMix64 — the same generator `ssm-apps` uses for
/// workload initialization — so a `(seed, rates)` pair fixes the entire
/// injected-fault schedule: every rerun of a (single-threaded,
/// deterministic) simulation draws the identical event sequence.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rates: FaultRates,
    state: u64,
}

impl FaultPlan {
    /// A plan injecting each fault class (drop, duplicate, delay spike,
    /// NI stall) at `rate_ppm` per transmission, with default magnitude
    /// bounds (delay spikes up to 8192 cycles, NI stalls up to 4096).
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm > 250_000` (the four classes together must
    /// fit in one probability draw).
    pub fn uniform(rate_ppm: u32, seed: u64) -> Self {
        FaultPlan::new(
            FaultRates {
                drop_ppm: rate_ppm,
                dup_ppm: rate_ppm,
                delay_ppm: rate_ppm,
                stall_ppm: rate_ppm,
                max_delay: 8192,
                max_stall: 4096,
            },
            seed,
        )
    }

    /// A plan with explicit per-class rates.
    ///
    /// # Panics
    ///
    /// Panics if the class rates sum past 1_000_000 ppm or a timed class
    /// has a zero magnitude bound.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        let total = rates.drop_ppm as u64
            + rates.dup_ppm as u64
            + rates.delay_ppm as u64
            + rates.stall_ppm as u64;
        assert!(total <= 1_000_000, "fault rates sum past 100%");
        assert!(rates.max_delay > 0 && rates.max_stall > 0, "zero bound");
        FaultPlan { rates, state: seed }
    }

    /// The configured rates and bounds.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// SplitMix64 (identical constants to `ssm_apps::common::Rng`).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws the fault event for the next transmission.
    pub fn next_event(&mut self) -> FaultEvent {
        let r = (self.next_u64() % 1_000_000) as u32;
        let mut edge = self.rates.drop_ppm;
        if r < edge {
            return FaultEvent::Drop;
        }
        edge += self.rates.dup_ppm;
        if r < edge {
            return FaultEvent::Duplicate;
        }
        edge += self.rates.delay_ppm;
        if r < edge {
            return FaultEvent::Delay(1 + self.next_u64() % self.rates.max_delay);
        }
        edge += self.rates.stall_ppm;
        if r < edge {
            return FaultEvent::NiStall(1 + self.next_u64() % self.rates.max_stall);
        }
        FaultEvent::None
    }
}

/// The observable outcome of one [`Network::transmit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// When the first surviving copy sits in `dst` host memory. For a
    /// dropped copy this is the cycle the loss is complete at the source
    /// (nothing arrives).
    pub arrival: Cycles,
    /// The copy was lost and never reaches the destination.
    pub dropped: bool,
    /// A second identical copy arrived (the reliability layer suppresses
    /// it by sequence number).
    pub duplicated: bool,
    /// Extra delay-spike cycles added to the arrival (0 = none).
    pub delay: Cycles,
    /// NI-stall cycles suffered before the send (0 = none).
    pub stall: Cycles,
}

struct Endpoint {
    ni: Resource,
    io_bus: Pipe,
    stats: NiStats,
    faults: FaultStats,
}

/// The cluster interconnect: one NI + I/O bus per node, free links.
///
/// # Example
///
/// ```rust
/// use ssm_net::{CommParams, Network};
/// let mut net = Network::new(4, CommParams::achievable());
/// // A 64-byte request from node 0 to node 1, leaving the host at t=0
/// // (host overhead is charged separately on the sending CPU).
/// let arrival = net.deliver(0, 0, 1, 64);
/// assert!(arrival > 0);
/// // On the "best" network only bus bandwidth and the link remain.
/// let mut fast = Network::new(4, CommParams::best());
/// assert_eq!(fast.deliver(0, 0, 1, 64), 128 + 20 + 128);
/// ```
pub struct Network {
    params: CommParams,
    nodes: Vec<Endpoint>,
    fault: Option<FaultPlan>,
}

impl Network {
    /// Creates a network of `nodes` endpoints with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `max_packet == 0`.
    pub fn new(nodes: usize, params: CommParams) -> Self {
        assert!(nodes >= 2, "a cluster needs at least two nodes");
        assert!(params.max_packet > 0, "packets must hold at least one byte");
        let mk = || Endpoint {
            ni: Resource::new(),
            io_bus: match params.io_bus_rate {
                Some((b, c)) => Pipe::new(b, c),
                None => Pipe::infinite(),
            },
            stats: NiStats::default(),
            faults: FaultStats::default(),
        };
        Network {
            nodes: (0..nodes).map(|_| mk()).collect(),
            params,
            fault: None,
        }
    }

    /// Installs a fault plan: from now on [`Network::transmit`] consults
    /// it once per copy. [`Network::deliver`] stays fault-free either way
    /// (the reliability layer decides which path a message takes).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Whether a fault plan is installed.
    pub fn has_fault_plan(&self) -> bool {
        self.fault.is_some()
    }

    /// Injected-fault statistics for `node`'s outgoing messages.
    pub fn fault_stats(&self, node: usize) -> FaultStats {
        self.nodes[node].faults
    }

    /// The configured parameters.
    pub fn params(&self) -> &CommParams {
        &self.params
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-node traffic statistics.
    pub fn stats(&self, node: usize) -> NiStats {
        self.nodes[node].stats
    }

    /// Moves a `bytes`-byte message from `src` to `dst`, with DMA out of
    /// host memory starting at `t` (i.e. *after* the host overhead, which
    /// the caller charges to the sending CPU). Returns the cycle at which
    /// the full message sits in `dst` host memory / at the head of its
    /// incoming queue.
    ///
    /// The message is segmented into packets of at most `max_packet` bytes;
    /// packets pipeline through the NI, link and destination I/O bus.
    /// Contention with other transfers at either endpoint is modelled by
    /// the FIFO resources.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (protocols service local operations without
    /// the network) or either index is out of range.
    pub fn deliver(&mut self, t: Cycles, src: usize, dst: usize, bytes: u64) -> Cycles {
        self.push(t, src, dst, bytes, true)
    }

    /// The shared transmission path: with `reaches_dst` false the copy is
    /// lost on the wire — it consumes every *source-side* resource exactly
    /// as a delivered copy would, but never crosses the destination I/O
    /// bus. Returns the arrival (or, for a lost copy, the cycle the last
    /// packet left the wire).
    fn push(&mut self, t: Cycles, src: usize, dst: usize, bytes: u64, reaches_dst: bool) -> Cycles {
        assert_ne!(src, dst, "local messages never enter the network");
        let bytes = bytes.max(1); // control messages still occupy a packet
        self.nodes[src].stats.messages_sent += 1;
        self.nodes[src].stats.bytes_sent += bytes;
        let mut remaining = bytes;
        let mut arrival = t;
        let mut src_ready = t;
        while remaining > 0 {
            let pkt = remaining.min(self.params.max_packet);
            remaining -= pkt;
            self.nodes[src].stats.packets_sent += 1;
            // DMA host -> NI over the source I/O bus.
            let t1 = self.nodes[src].io_bus.transfer(src_ready, pkt);
            // NI prepares the packet.
            let t2 = self.nodes[src].ni.acquire(t1, self.params.ni_occupancy);
            // Next packet can start DMA as soon as this one left the bus.
            src_ready = t1;
            // Wire.
            let t3 = t2 + self.params.link_latency;
            // DMA NI -> host at the destination.
            let t4 = if reaches_dst {
                self.nodes[dst].io_bus.transfer(t3, pkt)
            } else {
                t3
            };
            arrival = arrival.max(t4);
        }
        arrival
    }

    /// Moves one copy of a message like [`Network::deliver`], but consults
    /// the installed [`FaultPlan`] first (one event draw per call). With no
    /// plan installed this is exactly `deliver` — the zero-fault path pays
    /// nothing for the machinery.
    pub fn transmit(&mut self, t: Cycles, src: usize, dst: usize, bytes: u64) -> Transmission {
        let clean = Transmission {
            arrival: 0,
            dropped: false,
            duplicated: false,
            delay: 0,
            stall: 0,
        };
        let Some(event) = self.fault.as_mut().map(FaultPlan::next_event) else {
            return Transmission {
                arrival: self.deliver(t, src, dst, bytes),
                ..clean
            };
        };
        match event {
            FaultEvent::None => Transmission {
                arrival: self.deliver(t, src, dst, bytes),
                ..clean
            },
            FaultEvent::Drop => {
                self.nodes[src].faults.drops += 1;
                Transmission {
                    arrival: self.push(t, src, dst, bytes, false),
                    dropped: true,
                    ..clean
                }
            }
            FaultEvent::Duplicate => {
                self.nodes[src].faults.duplicates += 1;
                let first = self.deliver(t, src, dst, bytes);
                // The replayed copy re-enters the source pipeline right
                // behind the original; FIFO resources serialize it, so it
                // arrives second and is suppressed by sequence number.
                let _ = self.deliver(t, src, dst, bytes);
                Transmission {
                    arrival: first,
                    duplicated: true,
                    ..clean
                }
            }
            FaultEvent::Delay(d) => {
                self.nodes[src].faults.delays += 1;
                self.nodes[src].faults.delay_cycles += d;
                Transmission {
                    arrival: self.deliver(t, src, dst, bytes) + d,
                    delay: d,
                    ..clean
                }
            }
            FaultEvent::NiStall(s) => {
                self.nodes[src].faults.ni_stalls += 1;
                self.nodes[src].faults.stall_cycles += s;
                // The NI is wedged: occupy it so this send (and anything
                // queued behind it) waits the stall out.
                let _ = self.nodes[src].ni.acquire(t, s);
                Transmission {
                    arrival: self.deliver(t, src, dst, bytes),
                    stall: s,
                    ..clean
                }
            }
        }
    }

    /// Serves a one-sided (RDMA) operation at `node`'s NI: the NI reads or
    /// writes host memory directly, occupying the NI processor for
    /// [`CommParams::rdma_occupancy`] with *no host CPU involvement*.
    /// Returns the cycle the NI is done. One-sided service contends with
    /// ordinary sends on the same NI — the FIFO resource serializes both.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn rdma_serve(&mut self, t: Cycles, node: usize) -> Cycles {
        self.nodes[node].ni.acquire(t, self.params.rdma_occupancy)
    }

    /// One-way zero-load latency of a `bytes` message (no contention), for
    /// reporting and sanity checks.
    pub fn zero_load_latency(&self, bytes: u64) -> Cycles {
        let bytes = bytes.max(1);
        let p = &self.params;
        let io = match p.io_bus_rate {
            None => 0,
            Some((b, c)) => (bytes.min(p.max_packet) * c).div_ceil(b),
        };
        // First packet: out-bus + occupancy + link + in-bus.
        io + p.ni_occupancy + p.link_latency + io
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let a = CommParams::achievable();
        let h = CommParams::halfway();
        let w = CommParams::worse();
        assert!(h.host_overhead < a.host_overhead);
        assert!(a.host_overhead < w.host_overhead);
        assert_eq!(CommParams::best().host_overhead, 0);
        assert_eq!(CommParams::better_than_best().link_latency, 0);
        // The one-sided knobs scale with the rest of the preset, and are
        // always cheaper than the two-sided costs they bypass.
        assert!(h.rdma_occupancy < a.rdma_occupancy);
        assert!(a.rdma_occupancy < w.rdma_occupancy);
        assert_eq!(CommParams::best().rdma_occupancy, 0);
        assert_eq!(CommParams::better_than_best().rdma_issue, 0);
        for p in [a, h, w] {
            assert!(p.rdma_occupancy < p.ni_occupancy);
            assert!(p.rdma_issue < p.host_overhead);
        }
    }

    #[test]
    fn rdma_serve_occupies_the_ni() {
        let mut net = Network::new(2, CommParams::achievable());
        // Serving a one-sided op costs exactly the RDMA occupancy...
        assert_eq!(net.rdma_serve(0, 1), 250);
        // ...and contends FIFO with ordinary sends on the same NI: a send
        // issued behind the one-sided service queues at the NI (the source
        // bus DMA overlaps part of the wait, so the penalty is the
        // remaining occupancy, not the full 250).
        let mut fresh = Network::new(2, CommParams::achievable());
        let uncontended = fresh.deliver(0, 1, 0, 64);
        let contended = net.deliver(0, 1, 0, 64);
        assert_eq!(contended, uncontended + (250 - 128));
        // Other nodes' NIs are untouched.
        assert_eq!(net.rdma_serve(1000, 0), 1250);
    }

    #[test]
    fn small_message_latency() {
        let mut net = Network::new(2, CommParams::achievable());
        let t = net.deliver(0, 0, 1, 64);
        // 128 (out I/O bus) + 1000 (NI) + 20 (link) + 128 (in I/O bus).
        assert_eq!(t, 128 + 1000 + 20 + 128);
        assert_eq!(net.zero_load_latency(64), t);
    }

    #[test]
    fn page_message_segments_into_packets() {
        let mut net = Network::new(2, CommParams::achievable());
        let before = net.stats(0);
        assert_eq!(before.packets_sent, 0);
        let _ = net.deliver(0, 0, 1, 8192); // two 4 KB packets
        let s = net.stats(0);
        assert_eq!(s.packets_sent, 2);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.bytes_sent, 8192);
    }

    #[test]
    fn packets_pipeline() {
        // With pipelining, an 8 KB message should take much less than twice
        // the single-packet time.
        let mut a = Network::new(2, CommParams::achievable());
        let one = a.deliver(0, 0, 1, 4096);
        let mut b = Network::new(2, CommParams::achievable());
        let two = b.deliver(0, 0, 1, 8192);
        assert!(two < 2 * one);
        assert!(two > one);
    }

    #[test]
    fn endpoint_contention_serializes() {
        let mut net = Network::new(3, CommParams::achievable());
        let first = net.deliver(0, 0, 1, 4096);
        // A second message from node 0 queues behind the first at the
        // source NI and I/O bus.
        let second = net.deliver(0, 0, 2, 4096);
        assert!(second > first);
        // Traffic between uninvolved endpoints is unaffected: node 2 to
        // node 0's *outbound* resources are idle, and a fresh network
        // delivers the same message at the same uncontended time.
        let mut fresh = Network::new(3, CommParams::achievable());
        let uncontended = fresh.deliver(0, 2, 0, 64);
        let cross = net.deliver(second, 2, 0, 64);
        assert_eq!(cross, second + uncontended);
    }

    #[test]
    fn best_network_is_bandwidth_limited_only() {
        let mut net = Network::new(2, CommParams::best());
        // Overheads are gone but the 0.5 B/cycle bus remains: a 64-byte
        // message costs two bus crossings plus the link.
        assert_eq!(net.deliver(0, 0, 1, 64), 128 + 20 + 128);
        // B+ removes the bandwidth limit too (4 B/cycle) and the link.
        let mut bp = Network::new(2, CommParams::better_than_best());
        assert_eq!(bp.deliver(0, 0, 1, 64), 16 + 16);
    }

    #[test]
    fn worse_is_slower_than_achievable() {
        let mut a = Network::new(2, CommParams::achievable());
        let mut w = Network::new(2, CommParams::worse());
        assert!(w.deliver(0, 0, 1, 4096) > a.deliver(0, 0, 1, 4096));
    }

    #[test]
    fn zero_byte_control_message_still_costs() {
        let mut net = Network::new(2, CommParams::achievable());
        assert!(net.deliver(0, 0, 1, 0) > 0);
    }

    #[test]
    #[should_panic(expected = "local messages")]
    fn rejects_self_send() {
        let mut net = Network::new(2, CommParams::achievable());
        let _ = net.deliver(0, 1, 1, 4);
    }

    #[test]
    fn ni_stats_accumulate_across_deliver_calls() {
        let mut net = Network::new(3, CommParams::achievable());
        let mut t = 0;
        for dst in [1, 2, 1] {
            t = net.deliver(t, 0, dst, 4096);
        }
        let _ = net.deliver(t, 1, 0, 8192);
        let s0 = net.stats(0);
        assert_eq!(s0.messages_sent, 3);
        assert_eq!(s0.bytes_sent, 3 * 4096);
        assert_eq!(s0.packets_sent, 3);
        let s1 = net.stats(1);
        assert_eq!(s1.messages_sent, 1);
        assert_eq!(s1.bytes_sent, 8192);
        assert_eq!(s1.packets_sent, 2);
        assert_eq!(net.stats(2), NiStats::default());
    }

    #[test]
    fn fault_plan_schedule_is_deterministic() {
        // Same (seed, rate) -> the identical injected-fault schedule.
        let mut a = FaultPlan::uniform(100_000, 42);
        let mut b = FaultPlan::uniform(100_000, 42);
        let schedule: Vec<FaultEvent> = (0..512).map(|_| a.next_event()).collect();
        assert!(schedule.iter().any(|e| *e != FaultEvent::None));
        for (i, want) in schedule.iter().enumerate() {
            assert_eq!(b.next_event(), *want, "draw {i}");
        }
        // A different seed diverges.
        let mut c = FaultPlan::uniform(100_000, 43);
        let other: Vec<FaultEvent> = (0..512).map(|_| c.next_event()).collect();
        assert_ne!(schedule, other);
    }

    #[test]
    fn transmit_without_plan_is_exactly_deliver() {
        let mut plain = Network::new(2, CommParams::achievable());
        let mut wired = Network::new(2, CommParams::achievable());
        let mut t = 0;
        for bytes in [64, 4096, 8192] {
            let want = plain.deliver(t, 0, 1, bytes);
            let tx = wired.transmit(t, 0, 1, bytes);
            assert_eq!(tx.arrival, want);
            assert!(!tx.dropped && !tx.duplicated);
            assert_eq!((tx.delay, tx.stall), (0, 0));
            t = want;
        }
        assert_eq!(plain.stats(0), wired.stats(0));
        assert_eq!(wired.fault_stats(0), FaultStats::default());
    }

    #[test]
    fn fault_stats_accumulate_across_transmissions() {
        let mut net = Network::new(2, CommParams::achievable());
        net.set_fault_plan(FaultPlan::uniform(200_000, 7));
        let mut t = 0;
        let mut dropped = 0u64;
        let mut duplicated = 0u64;
        for _ in 0..256 {
            let tx = net.transmit(t, 0, 1, 64);
            dropped += tx.dropped as u64;
            duplicated += tx.duplicated as u64;
            t = tx.arrival.max(t) + 1;
        }
        let fs = net.fault_stats(0);
        // At 20% per class over 256 draws every class fires w.h.p., and
        // the counters must match the per-transmission observations.
        assert_eq!(fs.drops, dropped);
        assert_eq!(fs.duplicates, duplicated);
        assert!(fs.drops > 0 && fs.duplicates > 0);
        assert!(fs.delays > 0 && fs.ni_stalls > 0);
        assert!(fs.delay_cycles >= fs.delays && fs.delay_cycles <= fs.delays * 8192);
        assert!(fs.stall_cycles >= fs.ni_stalls && fs.stall_cycles <= fs.ni_stalls * 4096);
        assert_eq!(
            fs.total(),
            fs.drops + fs.duplicates + fs.delays + fs.ni_stalls
        );
        assert_eq!(net.fault_stats(1), FaultStats::default());
    }

    #[test]
    fn dropped_copy_consumes_source_but_not_destination() {
        // A lost copy must still occupy the source bus + NI (the sender
        // can't tell until the timeout) while leaving dst untouched.
        let mut net = Network::new(3, CommParams::achievable());
        net.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 1_000_000,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            1,
        ));
        let tx = net.transmit(0, 0, 1, 4096);
        assert!(tx.dropped);
        assert_eq!(net.stats(0).packets_sent, 1);
        // Node 1 (the drop's destination) never saw the lost copy: a clean
        // message into it from an idle third node lands at the fresh time.
        let mut fresh = Network::new(3, CommParams::achievable());
        assert_eq!(net.deliver(0, 2, 1, 64), fresh.deliver(0, 2, 1, 64));
    }

    #[test]
    fn duplicate_sends_two_copies() {
        let mut net = Network::new(2, CommParams::achievable());
        net.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 0,
                dup_ppm: 1_000_000,
                delay_ppm: 0,
                stall_ppm: 0,
                max_delay: 1,
                max_stall: 1,
            },
            1,
        ));
        let tx = net.transmit(0, 0, 1, 64);
        assert!(tx.duplicated && !tx.dropped);
        assert_eq!(net.stats(0).messages_sent, 2);
        // The original arrives at the clean time; the replay queues behind.
        let mut clean = Network::new(2, CommParams::achievable());
        assert_eq!(tx.arrival, clean.deliver(0, 0, 1, 64));
    }

    #[test]
    fn ni_stall_delays_the_send() {
        let mut net = Network::new(2, CommParams::achievable());
        net.set_fault_plan(FaultPlan::new(
            FaultRates {
                drop_ppm: 0,
                dup_ppm: 0,
                delay_ppm: 0,
                stall_ppm: 1_000_000,
                max_delay: 1,
                max_stall: 1000,
            },
            1,
        ));
        let tx = net.transmit(0, 0, 1, 64);
        assert!(tx.stall > 0);
        assert_eq!(net.fault_stats(0).stall_cycles, tx.stall);
        // The wedged NI can only push the send later, never earlier (a
        // stall shorter than the source-bus DMA hides behind it).
        let mut clean = Network::new(2, CommParams::achievable());
        assert!(tx.arrival >= clean.deliver(0, 0, 1, 64));
    }

    #[test]
    #[should_panic(expected = "sum past 100%")]
    fn rejects_rates_past_unity() {
        let _ = FaultPlan::uniform(300_000, 0);
    }
}
