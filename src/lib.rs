//! `ssm` — a full reproduction of *"Limits to the Performance of Software
//! Shared Memory: A Layered Approach"* (Singh, Bilas, Jiang, Zhou — HPCA
//! 1999) as a Rust library.
//!
//! The paper decomposes software shared memory on clusters into three
//! layers — application, protocol and communication — and studies how end
//! application performance responds to varying the *cost parameters* of each
//! layer individually and together, for two protocol families:
//!
//! * **HLRC** — page-based shared virtual memory under home-based lazy
//!   release consistency ([`hlrc`]),
//! * **SC** — fine/variable-grained sequentially-consistent software DSM
//!   with (assumed free) hardware access control ([`sc`]).
//!
//! This crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`engine`] | `ssm-engine` | discrete-event core + execution-driven threads |
//! | [`mem`] | `ssm-mem` | node memory hierarchy (L1/L2/write buffer/bus) |
//! | [`net`] | `ssm-net` | Myrinet-like cluster network + fast messaging |
//! | [`proto`] | `ssm-proto` | DSM substrate: address space, sync, cost model |
//! | [`hlrc`] | `ssm-hlrc` | the HLRC SVM protocol |
//! | [`sc`] | `ssm-sc` | the fine-grained SC protocol |
//! | [`core`] | `ssm-core` | simulation builder, layer presets, reports |
//! | [`apps`] | `ssm-apps` | SPLASH-2-style application suite |
//! | [`stats`] | `ssm-stats` | time breakdowns and table formatting |
//!
//! # Quickstart
//!
//! ```rust
//! use ssm::core::{CommPreset, ProtoPreset, Protocol, SimBuilder};
//! use ssm::apps::{fft::Fft, Workload};
//!
//! // Run a small FFT on 4 processors under HLRC at the paper's base (AO)
//! // configuration and print the speedup-relevant totals.
//! let app = Fft::new(256);
//! let result = SimBuilder::new(Protocol::Hlrc)
//!     .procs(4)
//!     .comm(CommPreset::Achievable.params())
//!     .proto(ProtoPreset::Original.costs())
//!     .run(&app);
//! assert!(result.total_cycles > 0);
//! ```

pub use ssm_apps as apps;
pub use ssm_core as core;
pub use ssm_engine as engine;
pub use ssm_hlrc as hlrc;
pub use ssm_mem as mem;
pub use ssm_net as net;
pub use ssm_proto as proto;
pub use ssm_sc as sc;
pub use ssm_stats as stats;
