//! A tour of every protocol in the workspace on one lock-heavy workload:
//! IDEAL, HLRC, AURC (automatic update), SC (sequential consistency),
//! SC-delayed (eager release consistency) and RDMA (one-sided,
//! synchronization-aware coherence).
//!
//! ```text
//! cargo run --release --example protocols_tour
//! ```

use ssm::apps::water_nsq::WaterNsq;
use ssm::core::{sequential_baseline, Protocol, SimBuilder};
use ssm::stats::Table;

fn main() {
    let nprocs = 8;
    let seq = sequential_baseline(&WaterNsq::new(64, 2)).total_cycles;
    println!(
        "Water-Nsquared (64 molecules) on {nprocs} processors, base (AO) system.\n\
         Sequential: {seq} cycles.\n"
    );
    let mut t = Table::new(vec![
        "protocol", "speedup", "msgs", "diffs", "updates", "twins",
    ]);
    for proto in [
        Protocol::Ideal,
        Protocol::Hlrc,
        Protocol::Aurc,
        Protocol::Sc,
        Protocol::ScDelayed,
        Protocol::Rdma,
    ] {
        let w = WaterNsq::new(64, 2);
        let r = SimBuilder::new(proto)
            .procs(nprocs)
            .run(&w)
            .expect_verified();
        t.row(vec![
            r.protocol.clone(),
            format!("{:.2}", r.speedup(seq)),
            r.counters.messages.to_string(),
            r.counters.diffs.to_string(),
            r.counters.auto_updates.to_string(),
            r.counters.twins.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "AURC trades diffs/twins for per-store update messages; SC-delayed\n\
         trades per-write ownership for release-time flushes; RDMA serves\n\
         home memory from the NI one-sided and hands dirty protected lines\n\
         over with the lock — the protocol design space the paper's §4.3\n\
         and footnotes sketch, extended to the disaggregated-memory point."
    );
}
