//! Application-layer restructuring: run each original/restructured pair
//! and show what restructuring buys under page-based SVM (the paper §4.2).
//!
//! ```text
//! cargo run --release --example restructuring
//! ```

use ssm::apps::catalog::{by_name, Scale};
use ssm::core::{sequential_baseline, Protocol, SimBuilder};
use ssm::stats::Table;

fn main() {
    let nprocs = 8;
    println!("Original vs restructured under HLRC, base (AO) system, {nprocs} processors\n");
    let mut table = Table::new(vec![
        "application",
        "orig speedup",
        "rest speedup",
        "orig locks",
        "rest locks",
        "orig msgs",
        "rest msgs",
    ]);
    for (orig, rest) in [
        ("Ocean-Contiguous", "Ocean-rowwise"),
        ("Radix", "Radix-Local"),
        ("Barnes-original", "Barnes-Spatial"),
        ("Volrend", "Volrend-rest"),
    ] {
        let run = |name: &str| {
            let spec = by_name(name).expect("known app");
            let w = spec.build(Scale::Test);
            let seq = sequential_baseline(w.as_ref()).total_cycles;
            let r = SimBuilder::new(Protocol::Hlrc)
                .procs(nprocs)
                .run(w.as_ref())
                .expect_verified();
            (
                r.speedup(seq),
                r.counters.lock_acquires,
                r.counters.messages,
            )
        };
        let (so, lo, mo) = run(orig);
        let (sr, lr, mr) = run(rest);
        table.row(vec![
            orig.to_string(),
            format!("{so:.2}"),
            format!("{sr:.2}"),
            lo.to_string(),
            lr.to_string(),
            mo.to_string(),
            mr.to_string(),
        ]);
    }
    println!("{table}");
    println!("(Test-scale inputs; run the ssm-bench figure3 binary for the full data.)");
}
