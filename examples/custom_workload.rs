//! Writing your own workload against the `ssm` programming model: a
//! producer/consumer pipeline with a shared queue protected by a lock —
//! then watching how each protocol prices it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use std::cell::RefCell;

use ssm::core::{Protocol, SimBuilder};
use ssm::proto::{Proc, SharedVec, ThreadBody, Workload, World};
use ssm::stats::{Bucket, Table};

/// Processor 0 produces `items` values; everyone else consumes them from a
/// shared lock-protected queue and accumulates a checksum.
struct Pipeline {
    items: usize,
    state: RefCell<Option<SharedVec<u64>>>,
}

impl Workload for Pipeline {
    fn name(&self) -> String {
        format!("pipeline({})", self.items)
    }

    fn mem_bytes(&self) -> usize {
        1 << 20
    }

    fn spawn(&self, world: &mut World, nprocs: usize) -> Vec<ThreadBody> {
        // Layout: [head, tail, sum, item0, item1, ...]
        let q = world.alloc_vec::<u64>(self.items + 3);
        let lock = world.alloc_lock();
        let done = world.alloc_barrier();
        *self.state.borrow_mut() = Some(q.clone());
        let items = self.items;
        (0..nprocs)
            .map(|pid| {
                let q = q.clone();
                let body: ThreadBody = Box::new(move |p: &Proc<'_>| {
                    if pid == 0 {
                        for i in 0..items {
                            p.compute(200); // produce
                            p.with_lock(lock, || {
                                let tail = q.get(p, 1);
                                q.set(p, 3 + tail as usize, (i * i) as u64);
                                q.set(p, 1, tail + 1);
                            });
                        }
                    } else {
                        loop {
                            let mut got = None;
                            p.with_lock(lock, || {
                                let head = q.get(p, 0);
                                let tail = q.get(p, 1);
                                if head < tail {
                                    got = Some(q.get(p, 3 + head as usize));
                                    q.set(p, 0, head + 1);
                                } else if tail as usize == items {
                                    got = None; // drained
                                } else {
                                    got = Some(u64::MAX); // retry marker
                                }
                            });
                            match got {
                                None => break,
                                Some(u64::MAX) => p.compute(50), // back off
                                Some(v) => {
                                    p.compute(400); // consume
                                    p.with_lock(lock, || {
                                        let s = q.get(p, 2);
                                        q.set(p, 2, s + v);
                                    });
                                }
                            }
                        }
                    }
                    p.barrier(done);
                });
                body
            })
            .collect()
    }

    fn verify(&self) -> Result<(), String> {
        let guard = self.state.borrow();
        let q = guard.as_ref().ok_or("not spawned")?;
        let want: u64 = (0..self.items as u64).map(|i| i * i).sum();
        let got = q.get_direct(2);
        if got == want {
            Ok(())
        } else {
            Err(format!("checksum {got}, want {want}"))
        }
    }
}

fn main() {
    println!("A custom lock-based pipeline under each protocol (4 processors):\n");
    let mut table = Table::new(vec!["protocol", "cycles", "lock-wait%", "proto%"]);
    for proto in [Protocol::Ideal, Protocol::Sc, Protocol::Hlrc] {
        let w = Pipeline {
            items: 64,
            state: RefCell::new(None),
        };
        let r = SimBuilder::new(proto).procs(4).run(&w).expect_verified();
        let b = r.avg_breakdown();
        table.row(vec![
            r.protocol.clone(),
            r.total_cycles.to_string(),
            format!("{:.0}%", 100.0 * b.fraction(Bucket::LockWait)),
            format!("{:.0}%", 100.0 * b.fraction(Bucket::Protocol)),
        ]);
    }
    println!("{table}");
    println!(
        "Critical sections that touch shared pages are dilated under HLRC\n\
         (page faults and diffs inside the section) — the serialization\n\
         effect the paper identifies as SVM's key lock problem."
    );
}
