//! Quickstart: run one application under both software-DSM protocols on
//! the paper's base system and print speedups and time breakdowns.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssm::apps::fft::Fft;
use ssm::core::{sequential_baseline, Protocol, SimBuilder};
use ssm::stats::{Bucket, Table};

fn main() {
    let nprocs = 8;
    println!("FFT on {nprocs} simulated processors, base (AO) system\n");

    // The paper measures every speedup against the best sequential
    // version: one processor with no protocol or communication.
    let seq = sequential_baseline(&Fft::new(4096)).total_cycles;
    println!("sequential time: {seq} cycles");

    let mut table = Table::new(vec![
        "protocol", "cycles", "speedup", "busy%", "data%", "proto%",
    ]);
    for (proto, block) in [
        (Protocol::Hlrc, 64),
        (Protocol::Sc, 4096),
        (Protocol::Ideal, 64),
    ] {
        let app = Fft::new(4096);
        let r = SimBuilder::new(proto)
            .procs(nprocs)
            .sc_block(block)
            .run(&app)
            .expect_verified();
        let b = r.avg_breakdown();
        table.row(vec![
            r.protocol.clone(),
            r.total_cycles.to_string(),
            format!("{:.2}", r.speedup(seq)),
            format!("{:.0}%", 100.0 * b.fraction(Bucket::Busy)),
            format!("{:.0}%", 100.0 * b.fraction(Bucket::DataWait)),
            format!("{:.0}%", 100.0 * b.fraction(Bucket::Protocol)),
        ]);
    }
    println!("\n{table}");
    println!("(SC runs at its best granularity for FFT: 4 KB blocks.)");
}
