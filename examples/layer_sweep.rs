//! Layer sweep: the paper's central experiment in miniature. Takes one
//! irregular application (Water-Nsquared) and sweeps the communication-
//! and protocol-layer cost presets independently, printing the speedup
//! grid — the data behind the "synergy between layers" conclusion (§4.5).
//!
//! ```text
//! cargo run --release --example layer_sweep
//! ```

use ssm::apps::water_nsq::WaterNsq;
use ssm::core::{sequential_baseline, CommPreset, ProtoPreset, Protocol, SimBuilder};
use ssm::stats::Table;

fn main() {
    let nprocs = 8;
    let make = || WaterNsq::new(32, 2);
    let seq = sequential_baseline(&make()).total_cycles;
    println!(
        "Water-Nsquared, HLRC, {nprocs} processors — speedup for every\n\
         (communication x protocol) preset combination:\n"
    );

    let mut table = Table::new(vec!["comm \\ proto", "O", "H", "B"]);
    for comm in [
        CommPreset::Worse,
        CommPreset::Achievable,
        CommPreset::Halfway,
        CommPreset::Best,
        CommPreset::BetterThanBest,
    ] {
        let mut cells = vec![comm.label().to_string()];
        for proto in [
            ProtoPreset::Original,
            ProtoPreset::Halfway,
            ProtoPreset::Best,
        ] {
            let r = SimBuilder::new(Protocol::Hlrc)
                .procs(nprocs)
                .comm(comm.params())
                .proto(proto.costs())
                .run(&make())
                .expect_verified();
            cells.push(format!("{:.2}", r.speedup(seq)));
        }
        table.row(cells);
    }
    println!("{table}");
    println!(
        "Read along a row: improving protocol costs matters more once the\n\
         communication layer is already good — the paper's synergy effect."
    );
}
